//! Integration tests for the figure builders at reduced scale: every
//! builder produces well-formed series with the expected axes, labels,
//! and paper-shaped relationships.

use essat_harness::executor::SweepExecutor;
use essat_harness::figures;
use essat_harness::scale::Scale;

#[test]
fn fig5_builder_shape() {
    let fig = figures::fig5_rank_profile(&mut SweepExecutor::new(), Scale::Quick, 7);
    assert_eq!(fig.id, "fig5");
    assert_eq!(fig.series.len(), 3, "three ESSAT protocols");
    for s in &fig.series {
        assert!(!s.points.is_empty(), "{} is empty", s.label);
        // Ranks start at 0 (leaves).
        assert_eq!(s.points[0].x, 0.0);
        for p in &s.points {
            assert!((0.0..=100.0).contains(&p.y), "{}: duty {}", s.label, p.y);
        }
    }
    // NTS grows from leaf to top rank.
    let nts = fig.series("NTS-SS").expect("NTS series");
    let first = nts.points.first().unwrap().y;
    let last = nts.points.last().unwrap().y;
    assert!(
        last > first,
        "NTS rank profile must grow: {first} -> {last}"
    );
}

#[test]
fn fig8_builder_shape() {
    let data = figures::fig8_sleep_hist(&mut SweepExecutor::new(), Scale::Quick, 11);
    assert_eq!(data.histogram.id, "fig8");
    assert_eq!(data.histogram.series.len(), 3);
    for s in &data.histogram.series {
        assert_eq!(s.points.len(), 8, "25 ms bins up to 200 ms");
        assert_eq!(s.points[0].x, 25.0);
        assert_eq!(s.points[7].x, 200.0);
        let total: f64 = s.points.iter().map(|p| p.y).sum();
        assert!(total > 0.0, "{} recorded no sleep intervals", s.label);
    }
    // The paper's ordering of short-sleep fractions: DTS > NTS.
    let get = |label: &str| {
        data.below_2_5ms_pct
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .expect("protocol present")
    };
    assert!(
        get("DTS-SS") > get("NTS-SS"),
        "DTS {} should have more short sleeps than NTS {}",
        get("DTS-SS"),
        get("NTS-SS")
    );
}

#[test]
fn lifetime_builder_shape() {
    let fig = figures::lifetime(&mut SweepExecutor::new(), Scale::Quick, 23);
    assert_eq!(fig.id, "lifetime");
    assert_eq!(fig.series.len(), 2, "first death + partition");
    let first_death = &fig.series[0];
    let partition = &fig.series[1];
    assert_eq!(first_death.points.len(), figures::SCENARIO_PROTOCOLS.len());
    for (fd, pt) in first_death.points.iter().zip(&partition.points) {
        assert_eq!(fd.x, pt.x);
        assert!(fd.y > 0.0 && fd.y <= 50.0, "quick runs last 50 s");
        assert!(
            pt.y >= fd.y,
            "partition cannot precede the first death: {} vs {}",
            pt.y,
            fd.y
        );
    }
    // SPAN keeps a backbone always on: under energy_drain it must lose
    // its first node before the sleepers do.
    let span_i = figures::SCENARIO_PROTOCOLS
        .iter()
        .position(|p| p.label() == "SPAN")
        .unwrap();
    let dts_i = figures::SCENARIO_PROTOCOLS
        .iter()
        .position(|p| p.label() == "DTS-SS")
        .unwrap();
    assert!(
        first_death.points[span_i].y < first_death.points[dts_i].y,
        "SPAN ({}) must die before DTS-SS ({})",
        first_death.points[span_i].y,
        first_death.points[dts_i].y
    );
}

#[test]
fn robustness_builder_shape() {
    let fig = figures::robustness(&mut SweepExecutor::new(), Scale::Quick, 29);
    assert_eq!(fig.id, "robustness");
    assert_eq!(fig.series.len(), figures::SCENARIO_PROTOCOLS.len());
    for s in &fig.series {
        assert_eq!(s.points.len(), figures::ROBUSTNESS_PRESETS.len());
        for p in &s.points {
            assert!(
                (0.0..=100.0).contains(&p.y),
                "{}: delivery {}%",
                s.label,
                p.y
            );
        }
        // Bursty links (index 1) must cost delivery vs steady (index 0).
        assert!(
            s.points[1].y <= s.points[0].y + 1e-9,
            "{}: bursty ({}) above steady ({})",
            s.label,
            s.points[1].y,
            s.points[0].y
        );
    }
}

#[test]
fn self_healing_builder_shape() {
    let data = figures::self_healing(&mut SweepExecutor::new(), Scale::Quick, 2024);
    assert_eq!(data.delivery.id, "self_healing_delivery");
    assert_eq!(data.in_partition.id, "self_healing_in_partition");
    assert_eq!(data.time_to_partition.id, "self_healing_time_to_partition");
    let mean = |fig: &essat_harness::table::FigureData, label: &str| {
        let s = fig
            .series(label)
            .unwrap_or_else(|| panic!("{label} series"));
        assert_eq!(s.points.len(), 8, "{label}: one point per protocol");
        s.points.iter().map(|p| p.y).sum::<f64>() / s.points.len() as f64
    };
    for preset in ["churn", "bursty_links"] {
        let on = format!("{preset}/repair");
        let off = format!("{preset}/legacy");
        // The headline claim: repair must not cost delivery under any
        // preset, and must buy it back under bursty links.
        let d_on = mean(&data.delivery, &on);
        let d_off = mean(&data.delivery, &off);
        assert!(
            d_on >= d_off - 1e-9,
            "{preset}: repair delivery {d_on}% below legacy {d_off}%"
        );
        // Time in partition can only shrink when episodes heal.
        let p_on = mean(&data.in_partition, &on);
        let p_off = mean(&data.in_partition, &off);
        assert!(
            p_on <= p_off + 1e-9,
            "{preset}: repair in-partition {p_on}s above legacy {p_off}s"
        );
        // Right-censored time-to-partition: repair keeps the root
        // reachable at least as long, protocol by protocol.
        let ttp_on = &data.time_to_partition.series(&on).unwrap().points;
        let ttp_off = &data.time_to_partition.series(&off).unwrap().points;
        for (a, b) in ttp_on.iter().zip(ttp_off.iter()) {
            assert!(
                a.y >= b.y - 1e-9,
                "{preset}: repair partitions earlier ({} vs {})",
                a.y,
                b.y
            );
        }
    }
    // Under bursty links the gap is the figure's point: repair must
    // strictly beat legacy on mean delivery.
    assert!(
        mean(&data.delivery, "bursty_links/repair") > mean(&data.delivery, "bursty_links/legacy"),
        "repair should strictly improve bursty-link delivery"
    );
}

#[test]
fn fig2_builder_shape() {
    let fig = figures::fig2_deadline(&mut SweepExecutor::new(), Scale::Quick, 5);
    assert_eq!(fig.id, "fig2");
    assert_eq!(fig.series.len(), 2, "duty + latency");
    let duty = &fig.series[0];
    let lat = &fig.series[1];
    assert_eq!(duty.points.len(), lat.points.len());
    // Latency grows monotonically-ish with the deadline past the knee:
    // the last point must exceed the first.
    assert!(
        lat.points.last().unwrap().y > lat.points.first().unwrap().y,
        "latency must grow with the deadline"
    );
    // Tight deadlines cost more energy than the loosest one.
    assert!(
        duty.points.first().unwrap().y > duty.points.last().unwrap().y * 0.8,
        "tight deadlines shouldn't be cheaper"
    );
}
