//! # essat-harness — regenerating the paper's figures
//!
//! Ready-made experiments for every figure of the ESSAT paper's
//! evaluation (§5), plus the headline comparison table from the
//! abstract. Each builder returns structured [`table::FigureData`]
//! (series of `(x, mean, 90% CI)`), renderable as an aligned text table
//! or CSV; the `essat-figures` binary drives them from the command line:
//!
//! ```text
//! essat-figures all            # full paper scale (minutes of CPU)
//! essat-figures fig3 --quick   # reduced scale, seconds
//! ```
//!
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record produced by these builders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod figures;
pub mod scale;
pub mod table;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::executor::{
        ExecutorStats, JobFailure, JobProfile, SweepCell, SweepExecutor, SweepOutcome,
        SyncPolicyFactory, WorkerStats,
    };
    pub use crate::figures::{
        drift, fig2_deadline, fig5_rank_profile, fig8_sleep_hist, fig9_tbe, headline, lifetime,
        query_sweep, rate_sweep, robustness, DriftData, Fig8Data, Headline, QuerySweepData,
        RateSweepData, DUTY_PROTOCOLS, LATENCY_PROTOCOLS, ROBUSTNESS_PRESETS, SCENARIO_PROTOCOLS,
    };
    pub use crate::scale::Scale;
    pub use crate::table::{FigureData, Point, Series};
}
