//! Figure data containers and plain-text / CSV rendering.
//!
//! Each reproduced figure is a set of labelled series over a shared
//! x-axis. The harness renders them as aligned text tables (what the
//! binary prints) and CSV (for plotting).

use std::fmt::Write as _;

/// One data point: x, mean y, and the 90% CI half-width over runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sweep coordinate.
    pub x: f64,
    /// Mean over runs.
    pub y: f64,
    /// 90% confidence half-width (0 for single runs).
    pub ci: f64,
}

/// A labelled series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (protocol name, parameter value…).
    pub label: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64, ci: f64) {
        self.points.push(Point { x, y, ci });
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }
}

/// A reproduced figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier, e.g. `"fig3"`.
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The shared x coordinates (from the first series).
    pub fn xs(&self) -> Vec<f64> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default()
    }

    /// Renders an aligned text table: one row per x, one column pair
    /// (mean ± ci) per series.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " | {:>18}", s.label);
        }
        let _ = writeln!(out);
        let width = 12 + self.series.len() * 21;
        let _ = writeln!(out, "{}", "-".repeat(width));
        for (i, x) in self.xs().iter().enumerate() {
            let _ = write!(out, "{x:>12.3}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, " | {:>10.4} ±{:>6.3}", p.y, p.ci);
                    }
                    None => {
                        let _ = write!(out, " | {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "({} vs {})", self.y_label, self.x_label);
        out
    }

    /// Renders CSV: `x,<label> mean,<label> ci,...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{} mean,{} ci90", s.label, s.label);
        }
        let _ = writeln!(out);
        for (i, x) in self.xs().iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, ",{},{}", p.y, p.ci);
                    }
                    None => {
                        let _ = write!(out, ",,");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut fig = FigureData::new("figX", "test figure", "rate", "duty");
        let mut a = Series::new("A");
        a.push(1.0, 10.0, 0.5);
        a.push(2.0, 20.0, 0.25);
        let mut b = Series::new("B");
        b.push(1.0, 11.0, 0.0);
        b.push(2.0, 21.0, 0.0);
        fig.series.push(a);
        fig.series.push(b);
        fig
    }

    #[test]
    fn table_contains_all_values() {
        let t = sample().render_table();
        assert!(t.contains("figX"));
        assert!(t.contains("A"));
        assert!(t.contains("B"));
        assert!(t.contains("10.0000"));
        assert!(t.contains("21.0000"));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "rate,A mean,A ci90,B mean,B ci90");
        assert_eq!(lines.next().unwrap(), "1,10,0.5,11,0");
        assert_eq!(lines.next().unwrap(), "2,20,0.25,21,0");
    }

    #[test]
    fn series_lookup() {
        let fig = sample();
        assert_eq!(fig.series("A").unwrap().y_at(2.0), Some(20.0));
        assert_eq!(fig.series("A").unwrap().y_at(9.0), None);
        assert!(fig.series("C").is_none());
        assert_eq!(fig.xs(), vec![1.0, 2.0]);
    }

    #[test]
    fn empty_figure_renders() {
        let fig = FigureData::new("e", "empty", "x", "y");
        assert!(fig.render_table().contains("empty"));
        assert!(fig.xs().is_empty());
    }
}
