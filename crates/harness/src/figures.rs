//! One builder per figure of the paper's evaluation (§5).
//!
//! | builder | paper figure | series |
//! |---------|--------------|--------|
//! | [`fig2_deadline`] | Fig. 2 | STS-SS duty cycle & query latency vs deadline |
//! | [`rate_sweep`] | Figs. 3 & 6 | duty / latency vs base rate, all protocols |
//! | [`query_sweep`] | Figs. 4 & 7 | duty / latency vs queries per class |
//! | [`fig5_rank_profile`] | Fig. 5 | duty cycle vs routing-tree rank |
//! | [`fig8_sleep_hist`] | Fig. 8 | sleep-interval histogram at `t_BE = 0` |
//! | [`fig9_tbe`] | Fig. 9 | DTS-SS duty vs rate for `t_BE` ∈ {0, 2.5, 10, 40} ms |
//! | [`headline`] | abstract / §5 | DTS-SS vs SPAN / PSM / SYNC reduction ranges |
//! | [`lifetime`] | beyond the paper | network lifetime (first death / partition) under `energy_drain` |
//! | [`robustness`] | beyond the paper | delivery & latency across the scenario presets |
//! | [`drift`] | beyond the paper | delivery & missed-round rate vs clock skew/drift |
//! | [`self_healing`] | beyond the paper | repair on/off under churn & bursty links, all protocols |
//!
//! Figures 3+6 and 4+7 share their underlying simulations (duty cycle
//! and latency come from the same runs), which halves the sweep cost.
//!
//! Every figure is split into a **plan** half (`*_cells`, enumerating
//! its sweep grid as [`SweepCell`]s) and an **assemble** half (`*_from`,
//! a deterministic walk of the per-cell results in cell order). The
//! one-shot builders (`rate_sweep` etc.) wire the two through a single
//! [`SweepExecutor::run`] call for callers that want one figure; the
//! `essat-figures` binary instead concatenates the plans of *all*
//! requested figures and executes them as **one** flat job list, so the
//! whole invocation drains across every core with no per-figure or
//! per-point barrier.

use essat_net::radio::RadioParams;
use essat_scenario::presets;
use essat_scenario::spec::Scenario;
use essat_sim::stats::{Confidence, OnlineStats};
use essat_sim::time::SimDuration;
use essat_wsn::config::{Protocol, RepairConfig, WorkloadSpec};
use essat_wsn::metrics::RunResult;

use crate::executor::{SweepCell, SweepExecutor};
use crate::scale::Scale;
use crate::table::{FigureData, Series};

/// Protocols plotted in Figures 3 and 4 (SYNC is fixed at 20% and only
/// appears in the latency figures, as in the paper).
pub const DUTY_PROTOCOLS: [Protocol; 5] = [
    Protocol::DtsSs,
    Protocol::StsSs,
    Protocol::NtsSs,
    Protocol::Psm,
    Protocol::Span,
];

/// Protocols plotted in Figures 6 and 7.
pub const LATENCY_PROTOCOLS: [Protocol; 6] = [
    Protocol::DtsSs,
    Protocol::StsSs,
    Protocol::NtsSs,
    Protocol::Psm,
    Protocol::Span,
    Protocol::Sync,
];

fn stat_over_runs(results: &[RunResult], f: impl Fn(&RunResult) -> f64) -> (f64, f64) {
    let s: OnlineStats = results.iter().map(f).collect();
    (s.mean(), s.ci_halfwidth(Confidence::P90))
}

/// Figures 3 and 6 from one shared sweep, plus the DTS phase-update
/// overhead series the paper reports in §4.2.3.
#[derive(Debug, Clone)]
pub struct RateSweepData {
    /// Figure 3: average duty cycle (%) vs base rate (Hz).
    pub duty: FigureData,
    /// Figure 6: average query latency (s) vs base rate (Hz).
    pub latency: FigureData,
    /// DTS phase-update overhead (bits per data report) vs base rate.
    pub dts_overhead_bits: Series,
}

/// The base-rate sweep's job plan: every (rate, protocol) cell.
pub fn rate_sweep_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for rate in scale.rate_sweep() {
        for protocol in LATENCY_PROTOCOLS {
            let cfg = scale.config(protocol, WorkloadSpec::paper(rate), seed);
            cells.push(SweepCell::new(cfg, scale.runs()));
        }
    }
    cells
}

/// Runs the base-rate sweep (one query per class, rates 1–5 Hz).
pub fn rate_sweep(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> RateSweepData {
    let grid = exec.run(&rate_sweep_cells(scale, seed));
    rate_sweep_from(&grid, scale)
}

/// Assembles Figures 3 & 6 from the results of [`rate_sweep_cells`]
/// (same order).
pub fn rate_sweep_from(grid: &[Vec<RunResult>], scale: Scale) -> RateSweepData {
    let mut duty = FigureData::new(
        "fig3",
        "Average duty cycle for three query classes when varying base rate",
        "rate_hz",
        "duty cycle (%)",
    );
    let mut latency = FigureData::new(
        "fig6",
        "Query latency for three query classes when varying base rate",
        "rate_hz",
        "latency (s)",
    );
    let mut overhead = Series::new("DTS-SS");
    for p in DUTY_PROTOCOLS {
        duty.series.push(Series::new(p.label()));
    }
    for p in LATENCY_PROTOCOLS {
        latency.series.push(Series::new(p.label()));
    }
    let rates = scale.rate_sweep();
    let mut cell = grid.iter();
    for &rate in &rates {
        for protocol in LATENCY_PROTOCOLS {
            let results = cell.next().expect("one cell per (rate, protocol)");
            if results.is_empty() {
                continue;
            }
            let (lat, lat_ci) = stat_over_runs(results, RunResult::avg_latency_s);
            latency
                .series
                .iter_mut()
                .find(|s| s.label == protocol.label())
                .expect("series exists")
                .push(rate, lat, lat_ci);
            if protocol != Protocol::Sync {
                let (d, d_ci) = stat_over_runs(results, RunResult::avg_duty_cycle_pct);
                duty.series
                    .iter_mut()
                    .find(|s| s.label == protocol.label())
                    .expect("series exists")
                    .push(rate, d, d_ci);
            }
            if protocol == Protocol::DtsSs {
                let (o, o_ci) = stat_over_runs(results, RunResult::phase_overhead_bits_per_report);
                overhead.push(rate, o, o_ci);
            }
        }
    }
    RateSweepData {
        duty,
        latency,
        dts_overhead_bits: overhead,
    }
}

/// Figures 4 and 7 from one shared sweep.
#[derive(Debug, Clone)]
pub struct QuerySweepData {
    /// Figure 4: average duty cycle (%) vs queries per class.
    pub duty: FigureData,
    /// Figure 7: average query latency (s) vs queries per class.
    pub latency: FigureData,
}

/// The query-count sweep's job plan: every (qpc, protocol) cell.
pub fn query_sweep_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for qpc in scale.queries_sweep() {
        let workload = WorkloadSpec::paper(0.2).with_queries_per_class(qpc);
        for protocol in LATENCY_PROTOCOLS {
            let cfg = scale.config(protocol, workload.clone(), seed);
            cells.push(SweepCell::new(cfg, scale.runs()));
        }
    }
    cells
}

/// Runs the query-count sweep (base rate fixed at 0.2 Hz).
pub fn query_sweep(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> QuerySweepData {
    let grid = exec.run(&query_sweep_cells(scale, seed));
    query_sweep_from(&grid, scale)
}

/// Assembles Figures 4 & 7 from the results of [`query_sweep_cells`]
/// (same order).
pub fn query_sweep_from(grid: &[Vec<RunResult>], scale: Scale) -> QuerySweepData {
    let mut duty = FigureData::new(
        "fig4",
        "Average duty cycle for three query classes when varying number of queries per class",
        "queries_per_class",
        "duty cycle (%)",
    );
    let mut latency = FigureData::new(
        "fig7",
        "Query latency for three query classes when varying the number of queries per class",
        "queries_per_class",
        "latency (s)",
    );
    for p in DUTY_PROTOCOLS {
        duty.series.push(Series::new(p.label()));
    }
    for p in LATENCY_PROTOCOLS {
        latency.series.push(Series::new(p.label()));
    }
    let qpcs = scale.queries_sweep();
    let mut cell = grid.iter();
    for &qpc in &qpcs {
        for protocol in LATENCY_PROTOCOLS {
            let results = cell.next().expect("one cell per (qpc, protocol)");
            if results.is_empty() {
                continue;
            }
            let (lat, lat_ci) = stat_over_runs(results, RunResult::avg_latency_s);
            latency
                .series
                .iter_mut()
                .find(|s| s.label == protocol.label())
                .expect("series exists")
                .push(qpc as f64, lat, lat_ci);
            if protocol != Protocol::Sync {
                let (d, d_ci) = stat_over_runs(results, RunResult::avg_duty_cycle_pct);
                duty.series
                    .iter_mut()
                    .find(|s| s.label == protocol.label())
                    .expect("series exists")
                    .push(qpc as f64, d, d_ci);
            }
        }
    }
    QuerySweepData { duty, latency }
}

/// Figure 2: the STS-SS deadline sweep — duty cycle and query latency as
/// the query deadline `D` (and with it the local deadline `l = D/M`)
/// grows. The paper's knee sits where `l` crosses `T_agg`.
pub fn fig2_deadline(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> FigureData {
    let grid = exec.run(&fig2_deadline_cells(scale, seed));
    fig2_deadline_from(&grid, scale)
}

/// Figure 2's job plan: one STS-SS cell per deadline.
pub fn fig2_deadline_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    scale
        .deadline_sweep()
        .iter()
        .map(|&d| {
            let workload = WorkloadSpec::paper(5.0).with_deadline(SimDuration::from_secs_f64(d));
            SweepCell::new(scale.config(Protocol::StsSs, workload, seed), scale.runs())
        })
        .collect()
}

/// Assembles Figure 2 from the results of [`fig2_deadline_cells`].
pub fn fig2_deadline_from(grid: &[Vec<RunResult>], scale: Scale) -> FigureData {
    let mut fig = FigureData::new(
        "fig2",
        "Impact of query deadline on duty cycle and query latency of STS-SS",
        "deadline_s",
        "duty (%) / latency (s)",
    );
    let mut duty = Series::new("Duty Cycle (%)");
    let mut lat = Series::new("Query latency (s)");
    let deadlines = scale.deadline_sweep();
    for (&d, results) in deadlines.iter().zip(grid) {
        if results.is_empty() {
            continue;
        }
        let (dy, dy_ci) = stat_over_runs(results, RunResult::avg_duty_cycle_pct);
        let (ly, ly_ci) = stat_over_runs(results, RunResult::avg_latency_s);
        duty.push(d, dy, dy_ci);
        lat.push(d, ly, ly_ci);
    }
    fig.series.push(duty);
    fig.series.push(lat);
    fig
}

/// Figure 5: distribution of duty cycles across routing-tree ranks for
/// the three ESSAT protocols (a single "typical run" at 5 Hz, as in the
/// paper). NTS-SS grows linearly with rank; STS-SS and DTS-SS stay flat.
pub fn fig5_rank_profile(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> FigureData {
    let grid = exec.run(&fig5_rank_profile_cells(scale, seed));
    fig5_rank_profile_from(&grid)
}

/// Figure 5's job plan: one single-run cell per ESSAT protocol.
pub fn fig5_rank_profile_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    Protocol::essat_set()
        .iter()
        .map(|&p| SweepCell::new(scale.config(p, WorkloadSpec::paper(5.0), seed), 1))
        .collect()
}

/// Assembles Figure 5 from the results of [`fig5_rank_profile_cells`].
pub fn fig5_rank_profile_from(grid: &[Vec<RunResult>]) -> FigureData {
    let mut fig = FigureData::new(
        "fig5",
        "Distribution of duty cycles at different ranks",
        "rank",
        "duty cycle (%)",
    );
    let protocols = Protocol::essat_set();
    for (protocol, results) in protocols.iter().zip(grid) {
        let Some(result) = results.first() else {
            continue;
        };
        let mut series = Series::new(protocol.label());
        for (rank, stats) in result.duty_by_rank() {
            series.push(
                rank as f64,
                stats.mean(),
                stats.ci_halfwidth(Confidence::P90),
            );
        }
        fig.series.push(series);
    }
    fig
}

/// Figure 8 output: the histogram plus the paper's headline fractions.
#[derive(Debug, Clone)]
pub struct Fig8Data {
    /// Counts of sleep intervals per 25 ms bin (upper edges on x).
    pub histogram: FigureData,
    /// Fraction of sleep intervals shorter than 2.5 ms per protocol
    /// (the paper reports NTS 0.40%, STS 0.85%, DTS 6.33%).
    pub below_2_5ms_pct: Vec<(String, f64)>,
}

/// Figure 8: histogram of sleep-interval lengths with `t_BE = 0`
/// (instant radio transitions), three queries at 5 Hz.
pub fn fig8_sleep_hist(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> Fig8Data {
    let grid = exec.run(&fig8_sleep_hist_cells(scale, seed));
    fig8_sleep_hist_from(&grid)
}

/// Figure 8's job plan: one instant-radio cell per ESSAT protocol.
pub fn fig8_sleep_hist_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    Protocol::essat_set()
        .iter()
        .map(|&p| {
            let cfg = scale
                .config(p, WorkloadSpec::paper(5.0), seed)
                .with_radio(RadioParams::instant());
            SweepCell::new(cfg, scale.runs())
        })
        .collect()
}

/// Assembles Figure 8 from the results of [`fig8_sleep_hist_cells`].
pub fn fig8_sleep_hist_from(grid: &[Vec<RunResult>]) -> Fig8Data {
    let mut fig = FigureData::new(
        "fig8",
        "Histogram of sleep intervals (t_BE = 0); bins of 25 ms",
        "sleep_len_upper_ms",
        "count",
    );
    let mut below = Vec::new();
    let protocols = Protocol::essat_set();
    for (protocol, results) in protocols.iter().zip(grid) {
        if results.is_empty() {
            continue;
        }
        let mut series = Series::new(protocol.label());
        // Re-bin the fine histograms (0.5 ms) into the paper's 25 ms
        // bins up to 200 ms; counts are averaged over runs.
        let coarse_bins = 8;
        let fine_per_coarse = 50;
        for cb in 0..coarse_bins {
            let mut total = 0u64;
            for r in results {
                for fb in 0..fine_per_coarse {
                    let idx = cb * fine_per_coarse + fb;
                    if idx < r.sleep_intervals.bins() {
                        total += r.sleep_intervals.bin_count(idx);
                    }
                }
            }
            let upper_ms = (cb as f64 + 1.0) * 25.0;
            series.push(upper_ms, total as f64 / results.len() as f64, 0.0);
        }
        fig.series.push(series);
        let frac: OnlineStats = results
            .iter()
            .map(|r| 100.0 * r.sleep_intervals.fraction_below(0.0025))
            .collect();
        below.push((protocol.label().to_string(), frac.mean()));
    }
    Fig8Data {
        histogram: fig,
        below_2_5ms_pct: below,
    }
}

/// Figure 9: DTS-SS duty cycle vs base rate for break-even times of
/// 0 / 2.5 / 10 / 40 ms (MICA2 average, MICA2 worst case, ZebraNet).
///
/// Note: the paper's caption says "STS-SS" but the body text and legend
/// describe DTS-SS; we follow the text.
pub fn fig9_tbe(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> FigureData {
    let grid = exec.run(&fig9_tbe_cells(scale, seed));
    fig9_tbe_from(&grid, scale)
}

/// Figure 9's job plan: every (break-even time, rate) cell.
pub fn fig9_tbe_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for tbe_ms in scale.tbe_sweep_ms() {
        let radio = if tbe_ms == 0.0 {
            RadioParams::instant()
        } else {
            RadioParams::with_break_even(SimDuration::from_secs_f64(tbe_ms / 1000.0))
        };
        for rate in scale.rate_sweep() {
            let cfg = scale
                .config(Protocol::DtsSs, WorkloadSpec::paper(rate), seed)
                .with_radio(radio);
            cells.push(SweepCell::new(cfg, scale.runs()));
        }
    }
    cells
}

/// Assembles Figure 9 from the results of [`fig9_tbe_cells`].
pub fn fig9_tbe_from(grid: &[Vec<RunResult>], scale: Scale) -> FigureData {
    let mut fig = FigureData::new(
        "fig9",
        "Impact of break-even time on DTS-SS duty cycle",
        "rate_hz",
        "duty cycle (%)",
    );
    let tbes = scale.tbe_sweep_ms();
    let rates = scale.rate_sweep();
    let mut cell = grid.iter();
    for &tbe_ms in &tbes {
        let mut series = Series::new(format!("TBE={tbe_ms}ms"));
        for &rate in &rates {
            let results = cell.next().expect("one cell per (tbe, rate)");
            if results.is_empty() {
                continue;
            }
            let (d, ci) = stat_over_runs(results, RunResult::avg_duty_cycle_pct);
            series.push(rate, d, ci);
        }
        fig.series.push(series);
    }
    fig
}

/// Protocols compared in the scenario figures (the paper's full set).
pub const SCENARIO_PROTOCOLS: [Protocol; 6] = LATENCY_PROTOCOLS;

/// Presets plotted by the `robustness` figure, in x-axis order.
pub const ROBUSTNESS_PRESETS: [&str; 4] = ["steady", "bursty_links", "diurnal", "churn"];

/// Network-lifetime figure: for every protocol under the
/// `energy_drain` preset, the time to the first node death and the time
/// to root partition (right-censored at the run end when the network
/// survives). The x axis indexes [`SCENARIO_PROTOCOLS`].
pub fn lifetime(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> FigureData {
    let grid = exec.run(&lifetime_cells(scale, seed));
    lifetime_from(&grid)
}

/// The lifetime figure's job plan: one `energy_drain` cell per protocol.
pub fn lifetime_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    SCENARIO_PROTOCOLS
        .iter()
        .map(|&p| {
            let mut cfg = scale.config(p, WorkloadSpec::paper(1.0), seed);
            cfg.scenario = Some(Scenario::Spec(presets::energy_drain(cfg.duration)));
            SweepCell::new(cfg, scale.runs())
        })
        .collect()
}

/// Assembles the lifetime figure from the results of
/// [`lifetime_cells`] (same order).
pub fn lifetime_from(grid: &[Vec<RunResult>]) -> FigureData {
    let mut fig = FigureData::new(
        "lifetime",
        "Network lifetime under the energy_drain scenario (censored at run end)",
        "protocol_index",
        "time (s)",
    );
    let mut first_death = Series::new("time to first death (s)");
    let mut partition = Series::new("time to root partition (s)");
    for (i, results) in grid.iter().enumerate() {
        if results.is_empty() {
            continue;
        }
        let (fd, fd_ci) = stat_over_runs(results, |r| {
            r.lifetime
                .time_to_first_death(r.measured_until)
                .as_secs_f64()
        });
        let (pt, pt_ci) = stat_over_runs(results, |r| {
            r.lifetime.time_to_partition(r.measured_until).as_secs_f64()
        });
        first_death.push(i as f64, fd, fd_ci);
        partition.push(i as f64, pt, pt_ci);
    }
    fig.series.push(first_death);
    fig.series.push(partition);
    fig
}

/// Robustness figure: delivery ratio per protocol across the scenario
/// presets (`steady`, `bursty_links`, `diurnal`, `churn`). The x axis
/// indexes [`ROBUSTNESS_PRESETS`].
pub fn robustness(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> FigureData {
    let grid = exec.run(&robustness_cells(scale, seed));
    robustness_from(&grid)
}

/// The robustness figure's job plan: every (preset, protocol) cell.
/// Pinned to the legacy maintenance path (repair disabled): this figure
/// characterises the raw protocols under stress — deadline-budgeted
/// redispatch would compensate the injected faults (bursty-link cells
/// can even beat steady ones) and blur exactly the degradation it
/// plots. The `self_healing` figure is where the repair layer's effect
/// is measured, on-vs-off.
pub fn robustness_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for preset in ROBUSTNESS_PRESETS {
        for protocol in SCENARIO_PROTOCOLS {
            let mut cfg = scale
                .config(protocol, WorkloadSpec::paper(1.0), seed)
                .with_repair(RepairConfig::disabled());
            let spec = presets::by_name(preset, cfg.duration).expect("known preset");
            cfg.scenario = Some(Scenario::Spec(spec));
            cells.push(SweepCell::new(cfg, scale.runs()));
        }
    }
    cells
}

/// Assembles the robustness figure from the results of
/// [`robustness_cells`] (same order).
pub fn robustness_from(grid: &[Vec<RunResult>]) -> FigureData {
    let mut fig = FigureData::new(
        "robustness",
        "Delivery ratio (%) across scenario presets (steady / bursty_links / diurnal / churn)",
        "preset_index",
        "delivery ratio (%)",
    );
    for p in SCENARIO_PROTOCOLS {
        fig.series.push(Series::new(p.label()));
    }
    let mut cell = grid.iter();
    for (xi, _) in ROBUSTNESS_PRESETS.iter().enumerate() {
        for protocol in SCENARIO_PROTOCOLS {
            let results = cell.next().expect("one cell per (preset, protocol)");
            if results.is_empty() {
                continue;
            }
            let (d, ci) = stat_over_runs(results, |r| 100.0 * r.delivery_ratio());
            fig.series
                .iter_mut()
                .find(|s| s.label == protocol.label())
                .expect("series exists")
                .push(xi as f64, d, ci);
        }
    }
    fig
}

/// Presets stressed by the `self_healing` figure, in series order.
pub const SELF_HEALING_PRESETS: [&str; 2] = ["churn", "bursty_links"];

/// The two arms compared by the `self_healing` figure, in cell order.
pub const SELF_HEALING_ARMS: [&str; 2] = ["repair", "legacy"];

/// Self-healing figure output: the repair layer on-vs-off under faults.
#[derive(Debug, Clone)]
pub struct SelfHealingData {
    /// Delivery ratio (%) per protocol; one series per (preset, arm).
    pub delivery: FigureData,
    /// Time spent partitioned (s) per protocol; one series per
    /// (preset, arm). Episodes still open at run end are counted.
    pub in_partition: FigureData,
    /// Time to root partition (s, right-censored at run end) per
    /// protocol; one series per (preset, arm). Repair pushing a run to
    /// the censoring bound means the partition never happened.
    pub time_to_partition: FigureData,
    /// Repair-arm activity per protocol: repairs performed, orphaned
    /// node·time, and mean detection-to-repair latency; one series per
    /// (preset, metric).
    pub activity: FigureData,
}

/// Self-healing figure: every protocol under the `churn` and
/// `bursty_links` presets, with the repair layer enabled vs the legacy
/// maintenance path. The x axis indexes [`Protocol::all`].
pub fn self_healing(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> SelfHealingData {
    let grid = exec.run(&self_healing_cells(scale, seed));
    self_healing_from(&grid)
}

/// The self-healing figure's job plan: every (preset, protocol, arm)
/// cell, arms ordered per [`SELF_HEALING_ARMS`].
pub fn self_healing_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for preset in SELF_HEALING_PRESETS {
        for protocol in Protocol::all() {
            for arm in SELF_HEALING_ARMS {
                let mut cfg = scale.config(protocol, WorkloadSpec::paper(1.0), seed);
                if arm == "legacy" {
                    cfg = cfg.with_repair(RepairConfig::disabled());
                }
                let spec = presets::by_name(preset, cfg.duration).expect("known preset");
                cfg.scenario = Some(Scenario::Spec(spec));
                cells.push(SweepCell::new(cfg, scale.runs()));
            }
        }
    }
    cells
}

/// Assembles the self-healing figure from the results of
/// [`self_healing_cells`] (same order).
pub fn self_healing_from(grid: &[Vec<RunResult>]) -> SelfHealingData {
    let mut delivery = FigureData::new(
        "self_healing_delivery",
        "Delivery ratio (%) with the repair layer on (repair) vs off (legacy)",
        "protocol_index",
        "delivery ratio (%)",
    );
    let mut in_partition = FigureData::new(
        "self_healing_in_partition",
        "Time spent partitioned (s), repair vs legacy (open episodes counted)",
        "protocol_index",
        "time in partition (s)",
    );
    let mut time_to_partition = FigureData::new(
        "self_healing_time_to_partition",
        "Time to root partition (s, right-censored at run end), repair vs legacy",
        "protocol_index",
        "time to partition (s)",
    );
    let mut activity = FigureData::new(
        "self_healing_activity",
        "Repair-arm activity: repairs, orphaned node-seconds, mean repair latency",
        "protocol_index",
        "count / seconds",
    );
    for preset in SELF_HEALING_PRESETS {
        for arm in SELF_HEALING_ARMS {
            let label = format!("{preset}/{arm}");
            delivery.series.push(Series::new(&label));
            in_partition.series.push(Series::new(&label));
            time_to_partition.series.push(Series::new(&label));
        }
        activity
            .series
            .push(Series::new(format!("{preset} repairs")));
        activity
            .series
            .push(Series::new(format!("{preset} orphan node-s")));
        activity
            .series
            .push(Series::new(format!("{preset} repair latency (s)")));
    }
    let mut cell = grid.iter();
    for (pi, _preset) in SELF_HEALING_PRESETS.iter().enumerate() {
        for (xi, _) in Protocol::all().iter().enumerate() {
            for (ai, arm) in SELF_HEALING_ARMS.iter().enumerate() {
                let results = cell.next().expect("one cell per (preset, protocol, arm)");
                if results.is_empty() {
                    continue;
                }
                let si = pi * SELF_HEALING_ARMS.len() + ai;
                let (d, d_ci) = stat_over_runs(results, |r| 100.0 * r.delivery_ratio());
                delivery.series[si].push(xi as f64, d, d_ci);
                let (t, t_ci) = stat_over_runs(results, RunResult::time_in_partition_s);
                in_partition.series[si].push(xi as f64, t, t_ci);
                let (p, p_ci) = stat_over_runs(results, |r| {
                    r.lifetime.time_to_partition(r.measured_until).as_secs_f64()
                });
                time_to_partition.series[si].push(xi as f64, p, p_ci);
                if *arm == "repair" {
                    let base = pi * 3;
                    let (n, n_ci) = stat_over_runs(results, |r| r.repairs as f64);
                    activity.series[base].push(xi as f64, n, n_ci);
                    let (o, o_ci) = stat_over_runs(results, RunResult::orphan_node_seconds);
                    activity.series[base + 1].push(xi as f64, o, o_ci);
                    let (l, l_ci) = stat_over_runs(results, RunResult::mean_reparent_latency_s);
                    activity.series[base + 2].push(xi as f64, l, l_ci);
                }
            }
        }
    }
    SelfHealingData {
        delivery,
        in_partition,
        time_to_partition,
        activity,
    }
}

/// Drift figure output: behaviour under clock faults.
#[derive(Debug, Clone)]
pub struct DriftData {
    /// Delivery ratio (%) vs clock-skew magnitude (ppm), all protocols.
    pub delivery: FigureData,
    /// Missed-round rate (%) vs clock-skew magnitude (ppm).
    pub missed: FigureData,
}

/// Drift figure: every protocol under the `clock_drift` preset across
/// skew magnitudes, with the adaptive guard time scaled to match. The
/// zero-ppm point runs fault-free (no scenario, no guard) as control.
pub fn drift(exec: &mut SweepExecutor, scale: Scale, seed: u64) -> DriftData {
    let grid = exec.run(&drift_cells(scale, seed));
    drift_from(&grid, scale)
}

/// The drift figure's job plan: every (skew ppm, protocol) cell.
pub fn drift_cells(scale: Scale, seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for ppm in scale.drift_sweep_ppm() {
        for protocol in Protocol::all() {
            let mut cfg = scale.config(protocol, WorkloadSpec::paper(1.0), seed);
            if ppm > 0 {
                cfg.scenario = Some(Scenario::Spec(presets::clock_drift(ppm)));
                cfg = cfg.with_clock_guard(SimDuration::from_millis(1), ppm);
            }
            cells.push(SweepCell::new(cfg, scale.runs()));
        }
    }
    cells
}

/// Assembles the drift figure from the results of [`drift_cells`]
/// (same order). Cells whose every repetition failed are skipped, so a
/// partial sweep still yields a figure.
pub fn drift_from(grid: &[Vec<RunResult>], scale: Scale) -> DriftData {
    let mut delivery = FigureData::new(
        "drift_delivery",
        "Delivery ratio under clock skew + drift (guard time scaled to skew)",
        "skew_ppm",
        "delivery ratio (%)",
    );
    let mut missed = FigureData::new(
        "drift_missed",
        "Missed-round rate under clock skew + drift (guard time scaled to skew)",
        "skew_ppm",
        "missed-round rate (%)",
    );
    for p in Protocol::all() {
        delivery.series.push(Series::new(p.label()));
        missed.series.push(Series::new(p.label()));
    }
    let ppms = scale.drift_sweep_ppm();
    let mut cell = grid.iter();
    for &ppm in &ppms {
        for protocol in Protocol::all() {
            let results = cell.next().expect("one cell per (ppm, protocol)");
            if results.is_empty() {
                continue;
            }
            let (d, d_ci) = stat_over_runs(results, |r| 100.0 * r.delivery_ratio());
            delivery
                .series
                .iter_mut()
                .find(|s| s.label == protocol.label())
                .expect("series exists")
                .push(ppm as f64, d, d_ci);
            let (m, m_ci) = stat_over_runs(results, |r| 100.0 * r.missed_round_rate());
            missed
                .series
                .iter_mut()
                .find(|s| s.label == protocol.label())
                .expect("series exists")
                .push(ppm as f64, m, m_ci);
        }
    }
    DriftData { delivery, missed }
}

/// The paper's headline claims, computed from the shared sweeps.
#[derive(Debug, Clone)]
pub struct Headline {
    /// DTS-SS duty reduction vs SPAN, (min%, max%) over all sweep points
    /// (the paper reports 38–87%).
    pub duty_vs_span_pct: (f64, f64),
    /// DTS-SS latency reduction vs PSM, (min%, max%).
    pub latency_vs_psm_pct: (f64, f64),
    /// DTS-SS latency reduction vs SYNC, (min%, max%)
    /// (together with PSM the paper reports 36–98%).
    pub latency_vs_sync_pct: (f64, f64),
}

impl Headline {
    /// Renders the comparison as text.
    pub fn render(&self) -> String {
        format!(
            "== headline — DTS-SS vs baselines (reduction ranges over all sweep points)\n\
             duty cycle vs SPAN : {:5.1}% .. {:5.1}%   (paper: 38% .. 87%)\n\
             latency vs PSM     : {:5.1}% .. {:5.1}%   (paper: 36% .. 98%, PSM+SYNC combined)\n\
             latency vs SYNC    : {:5.1}% .. {:5.1}%\n",
            self.duty_vs_span_pct.0,
            self.duty_vs_span_pct.1,
            self.latency_vs_psm_pct.0,
            self.latency_vs_psm_pct.1,
            self.latency_vs_sync_pct.0,
            self.latency_vs_sync_pct.1,
        )
    }
}

/// Computes the headline reduction ranges from the two sweeps.
pub fn headline(rate: &RateSweepData, query: &QuerySweepData) -> Headline {
    let reduction = |a: f64, b: f64| (1.0 - a / b) * 100.0;
    let mut duty_span: Vec<f64> = Vec::new();
    for (duty_fig, _) in [(&rate.duty, 0), (&query.duty, 0)] {
        let dts = duty_fig.series("DTS-SS").expect("DTS series");
        let span = duty_fig.series("SPAN").expect("SPAN series");
        for p in &dts.points {
            if let Some(s) = span.y_at(p.x) {
                duty_span.push(reduction(p.y, s));
            }
        }
    }
    let mut lat_psm = Vec::new();
    let mut lat_sync = Vec::new();
    for lat_fig in [&rate.latency, &query.latency] {
        let dts = lat_fig.series("DTS-SS").expect("DTS series");
        let psm = lat_fig.series("PSM").expect("PSM series");
        let sync = lat_fig.series("SYNC").expect("SYNC series");
        for p in &dts.points {
            if let Some(v) = psm.y_at(p.x) {
                lat_psm.push(reduction(p.y, v));
            }
            if let Some(v) = sync.y_at(p.x) {
                lat_sync.push(reduction(p.y, v));
            }
        }
    }
    let range = |v: &[f64]| {
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    Headline {
        duty_vs_span_pct: range(&duty_span),
        latency_vs_psm_pct: range(&lat_psm),
        latency_vs_sync_pct: range(&lat_sync),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Point;

    fn fig_with(label: &str, pts: &[(f64, f64)]) -> Series {
        Series {
            label: label.into(),
            points: pts.iter().map(|&(x, y)| Point { x, y, ci: 0.0 }).collect(),
        }
    }

    #[test]
    fn headline_ranges_from_synthetic_data() {
        let mk_duty = |id: &str| {
            let mut f = FigureData::new(id, "t", "x", "y");
            f.series
                .push(fig_with("DTS-SS", &[(1.0, 10.0), (2.0, 20.0)]));
            f.series.push(fig_with("SPAN", &[(1.0, 40.0), (2.0, 40.0)]));
            f
        };
        let mk_lat = |id: &str| {
            let mut f = FigureData::new(id, "t", "x", "y");
            f.series.push(fig_with("DTS-SS", &[(1.0, 0.1)]));
            f.series.push(fig_with("PSM", &[(1.0, 1.0)]));
            f.series.push(fig_with("SYNC", &[(1.0, 0.5)]));
            f
        };
        let rate = RateSweepData {
            duty: mk_duty("fig3"),
            latency: mk_lat("fig6"),
            dts_overhead_bits: Series::new("DTS-SS"),
        };
        let query = QuerySweepData {
            duty: mk_duty("fig4"),
            latency: mk_lat("fig7"),
        };
        let h = headline(&rate, &query);
        assert!((h.duty_vs_span_pct.0 - 50.0).abs() < 1e-9);
        assert!((h.duty_vs_span_pct.1 - 75.0).abs() < 1e-9);
        assert!((h.latency_vs_psm_pct.0 - 90.0).abs() < 1e-9);
        assert!((h.latency_vs_sync_pct.0 - 80.0).abs() < 1e-9);
        assert!(h.render().contains("38%"));
    }
}
