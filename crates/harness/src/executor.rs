//! The parallel sweep executor: one flat, deterministic job list over
//! all cores.
//!
//! The paper's evaluation is a grid — figures × sweep points × protocols
//! × repetitions — of fully independent simulation runs. The old harness
//! parallelised only the 2–5 repetitions of one data point at a time
//! (`runner::run_many`), so a nine-point six-protocol sweep executed as
//! 54 sequential barriers, each leaving most cores idle. The executor
//! instead flattens **every** `(cell, repetition)` tuple into a single
//! job list and lets a pool of workers self-schedule off one shared
//! atomic cursor: an idle worker always steals the next unclaimed job,
//! whatever figure it belongs to, so the grid drains with no barriers at
//! all.
//!
//! Determinism: each job is a pure function of its `ExperimentConfig`
//! (seed included), and results land in pre-assigned slots indexed by
//! job id — the assembled output is byte-identical whatever the thread
//! count or interleaving (see `tests/determinism.rs`).
//!
//! The executor also aggregates the run statistics —
//! wall-clock, events processed, events/second, peak event-queue depth —
//! that the `essat-figures` binary writes to `BENCH_harness.json`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use essat_wsn::config::{ExperimentConfig, Protocol};
use essat_wsn::metrics::RunResult;
use essat_wsn::sim::{BuildCache, World, WorldScratch};

/// One sweep cell: a configuration to repeat `runs` times with derived
/// seeds (`seed, seed+1, …` — the paper's repetition protocol).
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Base configuration (its `seed` is the first repetition's seed).
    pub cfg: ExperimentConfig,
    /// Number of repetitions.
    pub runs: u32,
}

impl SweepCell {
    /// A cell with the standard repetition count for its scale.
    pub fn new(cfg: ExperimentConfig, runs: u32) -> Self {
        assert!(runs > 0, "a sweep cell needs at least one run");
        SweepCell { cfg, runs }
    }
}

/// Aggregate statistics over everything an executor has run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutorStats {
    /// Simulation runs completed.
    pub jobs: u64,
    /// Total simulation events processed.
    pub events: u64,
    /// Largest pending-event set seen in any run.
    pub peak_queue_depth: u64,
    /// Wall-clock time spent inside [`SweepExecutor::run`].
    pub wall: Duration,
}

impl ExecutorStats {
    /// Events per wall-clock second (0 if nothing ran).
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// Renders the stats as a `BENCH_harness.json` document.
    pub fn to_json(&self, threads: usize) -> String {
        format!(
            "{{\n  \"threads\": {threads},\n  \"jobs\": {},\n  \"events\": {},\n  \
             \"wall_clock_s\": {:.3},\n  \"events_per_sec\": {:.0},\n  \
             \"peak_queue_depth\": {}\n}}\n",
            self.jobs,
            self.events,
            self.wall.as_secs_f64(),
            self.events_per_sec(),
            self.peak_queue_depth,
        )
    }
}

/// Work-stealing executor over sweep grids. Reusable: statistics
/// accumulate across [`SweepExecutor::run`] calls.
#[derive(Debug)]
pub struct SweepExecutor {
    threads: usize,
    stats: ExecutorStats,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepExecutor {
    /// An executor over all available cores.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// An executor with an explicit worker count (1 = serial reference
    /// executor; the determinism tests compare it against the parallel
    /// one).
    pub fn with_threads(threads: usize) -> Self {
        SweepExecutor {
            threads: threads.max(1),
            stats: ExecutorStats::default(),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ExecutorStats {
        self.stats
    }

    /// Runs every `(cell, repetition)` job across the worker pool and
    /// returns, per cell, its repetition results ordered by seed.
    pub fn run(&mut self, cells: &[SweepCell]) -> Vec<Vec<RunResult>> {
        let t0 = Instant::now();
        // Flatten the grid into one deterministic job list.
        let mut jobs: Vec<(usize, ExperimentConfig)> = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            for rep in 0..cell.runs {
                let mut cfg = cell.cfg.clone();
                cfg.seed = cell.cfg.seed.wrapping_add(rep as u64);
                jobs.push((ci, cfg));
            }
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(jobs.len()).max(1);
        // Shared immutable build cache: every job at the same
        // (topology, seed) sweep point — all protocols, all repetitions
        // with the same derived seed — reuses one topology + routing
        // tree + channel adjacency instead of rebuilding them per job.
        let cache = BuildCache::new();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Worker-local scratch: the event-queue slab, channel
                    // buffer pools and action buffers warmed by one job
                    // are recycled into the next.
                    let mut scratch = WorldScratch::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((_, cfg)) = jobs.get(i) else {
                            break;
                        };
                        let result = World::run_pooled(
                            cfg,
                            &Protocol::build_policy,
                            Some(&cache),
                            &mut scratch,
                        );
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });
        // Deterministic assembly: slot order == job order == cell order.
        let mut out: Vec<Vec<RunResult>> = cells
            .iter()
            .map(|c| Vec::with_capacity(c.runs as usize))
            .collect();
        for ((ci, _), slot) in jobs.iter().zip(slots) {
            let r = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot");
            self.stats.jobs += 1;
            self.stats.events += r.events_processed;
            self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(r.peak_queue_depth);
            out[*ci].push(r);
        }
        self.stats.wall += t0.elapsed();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_sim::time::SimDuration;
    use essat_wsn::config::{Protocol, WorkloadSpec};

    fn tiny(seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(Protocol::NtsSs, WorkloadSpec::paper(1.0), seed);
        cfg.nodes = 12;
        cfg.area_side = 220.0;
        cfg.duration = SimDuration::from_secs(6);
        cfg
    }

    #[test]
    fn results_ordered_by_cell_and_seed() {
        let cells = vec![SweepCell::new(tiny(10), 2), SweepCell::new(tiny(50), 3)];
        let mut ex = SweepExecutor::with_threads(4);
        let out = ex.run(&cells);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[1].len(), 3);
        assert_eq!(out[0][0].seed, 10);
        assert_eq!(out[0][1].seed, 11);
        assert_eq!(
            out[1].iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![50, 51, 52]
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let cells = vec![SweepCell::new(tiny(7), 3), SweepCell::new(tiny(8), 2)];
        let serial = SweepExecutor::with_threads(1).run(&cells);
        let parallel = SweepExecutor::with_threads(8).run(&cells);
        for (s_cell, p_cell) in serial.iter().zip(&parallel) {
            for (s, p) in s_cell.iter().zip(p_cell) {
                assert_eq!(s.seed, p.seed);
                assert_eq!(s.events_processed, p.events_processed);
                assert_eq!(s.avg_duty_cycle_pct(), p.avg_duty_cycle_pct());
                assert_eq!(s.avg_latency_s(), p.avg_latency_s());
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut ex = SweepExecutor::with_threads(2);
        ex.run(&[SweepCell::new(tiny(1), 1)]);
        let first = ex.stats();
        assert_eq!(first.jobs, 1);
        assert!(first.events > 0);
        assert!(first.peak_queue_depth > 0);
        ex.run(&[SweepCell::new(tiny(2), 2)]);
        let second = ex.stats();
        assert_eq!(second.jobs, 3);
        assert!(second.events > first.events);
        let json = second.to_json(2);
        assert!(json.contains("\"jobs\": 3"));
        assert!(json.contains("events_per_sec"));
    }
}
