//! The parallel sweep executor: one flat, deterministic job list over
//! all cores.
//!
//! The paper's evaluation is a grid — figures × sweep points × protocols
//! × repetitions — of fully independent simulation runs. The old harness
//! parallelised only the 2–5 repetitions of one data point at a time
//! (`runner::run_many`), so a nine-point six-protocol sweep executed as
//! 54 sequential barriers, each leaving most cores idle. The executor
//! instead flattens **every** `(cell, repetition)` tuple into a single
//! job list and lets a pool of workers self-schedule off one shared
//! atomic cursor: an idle worker always steals the next unclaimed job,
//! whatever figure it belongs to, so the grid drains with no barriers at
//! all.
//!
//! Determinism: each job is a pure function of its `ExperimentConfig`
//! (seed included), and results land in pre-assigned slots indexed by
//! job id — the assembled output is byte-identical whatever the thread
//! count or interleaving (see `tests/determinism.rs`).
//!
//! The executor also aggregates the run statistics —
//! wall-clock, events processed, events/second, peak event-queue depth —
//! that the `essat-figures` binary writes to `BENCH_harness.json`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use essat_net::ids::NodeId;
use essat_obs::json::escape;
use essat_obs::perfetto::PerfettoBuilder;
use essat_obs::profile::RunTimings;
use essat_wsn::config::{ExperimentConfig, Protocol};
use essat_wsn::metrics::RunResult;
use essat_wsn::payload::Payload;
use essat_wsn::protocol::{PolicyEnv, PowerPolicy};
use essat_wsn::sim::{BuildCache, World, WorldScratch};

/// A thread-safe per-node policy constructor — the executor's variant
/// of [`essat_wsn::protocol::PolicyFactory`] (workers on several
/// threads consult it concurrently, hence the extra `Sync` bound).
pub type SyncPolicyFactory<'f> =
    dyn Fn(&ExperimentConfig, NodeId, &PolicyEnv<'_>) -> Box<dyn PowerPolicy<Payload>> + Sync + 'f;

/// One sweep cell: a configuration to repeat `runs` times with derived
/// seeds (`seed, seed+1, …` — the paper's repetition protocol).
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Base configuration (its `seed` is the first repetition's seed).
    pub cfg: ExperimentConfig,
    /// Number of repetitions.
    pub runs: u32,
}

impl SweepCell {
    /// A cell with the standard repetition count for its scale.
    pub fn new(cfg: ExperimentConfig, runs: u32) -> Self {
        assert!(runs > 0, "a sweep cell needs at least one run");
        SweepCell { cfg, runs }
    }
}

/// One worker thread's share of a sweep: how many jobs it claimed and
/// how long it spent executing them (claim to result). The difference
/// between `busy` and the executor wall clock is the worker's idle
/// tail — the utilization figure in `BENCH_harness.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Jobs this worker completed (including failed ones).
    pub jobs: u64,
    /// Wall-clock spent executing jobs.
    pub busy: Duration,
}

/// Identifies *what* a bench record measured: the figure set, scale,
/// job count, and a hash of every job's full configuration.
///
/// `BENCH_harness.json` embeds this so the CI bench gate only compares
/// `events_per_sec` between records that measured the same work. The
/// committed record once changed workloads silently — a new figure grew
/// the job set 173 → 221 and the recorded throughput "dropped" 5.22M →
/// 4.59M events/s with no code regression at all — so a raw number
/// comparison can both mask real regressions and false-trip on
/// workload growth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Figure keys, in planning order.
    pub figures: Vec<String>,
    /// `quick` or `paper`.
    pub scale: String,
    /// Base seed the sweep was planned with.
    pub seed: u64,
    /// Total simulation runs (cells × repetitions).
    pub jobs: u32,
    /// FNV-1a 64 over the canonical rendering of every cell's
    /// configuration and repetition count, in job order.
    pub config_hash: u64,
}

impl Workload {
    /// Builds the descriptor for a planned job list.
    pub fn new(figures: &[&str], scale: &str, seed: u64, cells: &[SweepCell]) -> Workload {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for c in cells {
            for b in format!("{:?}*{}", c.cfg, c.runs).bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        Workload {
            figures: figures.iter().map(|f| f.to_string()).collect(),
            scale: scale.to_string(),
            seed,
            jobs: cells.iter().map(|c| c.runs).sum(),
            config_hash: h,
        }
    }

    /// Renders the descriptor as the `workload` JSON object.
    ///
    /// The hash is hex-encoded: a u64 does not survive a round-trip
    /// through JSON readers that parse numbers as doubles.
    pub fn to_json(&self) -> String {
        let figs = self
            .figures
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"figures\": [{figs}], \"scale\": \"{}\", \"seed\": {}, \"jobs\": {}, \
             \"config_hash\": \"{:016x}\"}}",
            self.scale, self.seed, self.jobs, self.config_hash
        )
    }
}

/// Aggregate statistics over everything an executor has run.
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Simulation runs completed.
    pub jobs: u64,
    /// Total simulation events processed.
    pub events: u64,
    /// Largest pending-event set seen in any run.
    pub peak_queue_depth: u64,
    /// Wall-clock time spent inside [`SweepExecutor::run`].
    pub wall: Duration,
    /// Per-phase simulation timings summed over all successful jobs
    /// (CPU time, so with N workers the sum can exceed `wall`).
    pub timings: RunTimings,
    /// Per-worker utilization, indexed by worker id. Accumulates
    /// across runs; a later run with fewer jobs than workers leaves
    /// the surplus workers' entries untouched.
    pub workers: Vec<WorkerStats>,
}

impl ExecutorStats {
    /// Events per wall-clock second (0 if nothing ran).
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }

    /// Renders the stats as a `BENCH_harness.json` document.
    ///
    /// The original keys (`threads` … `peak_queue_depth`) are stable —
    /// CI's bench gate reads `events_per_sec` from the committed
    /// baseline — with the profiling extension appended: per-phase
    /// CPU-time totals and the per-worker utilization array.
    pub fn to_json(&self, threads: usize) -> String {
        self.to_json_with(threads, None)
    }

    /// [`ExecutorStats::to_json`] with an embedded [`Workload`]
    /// descriptor, so the record states what it measured and the bench
    /// gate can refuse to compare across different job sets.
    pub fn to_json_with(&self, threads: usize, workload: Option<&Workload>) -> String {
        let mut workers = String::from("[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                workers.push_str(", ");
            }
            workers.push_str(&format!(
                "{{\"jobs\": {}, \"busy_s\": {:.3}}}",
                w.jobs,
                w.busy.as_secs_f64()
            ));
        }
        workers.push(']');
        let workload = match workload {
            Some(w) => format!("  \"workload\": {},\n", w.to_json()),
            None => String::new(),
        };
        format!(
            "{{\n{workload}  \"threads\": {threads},\n  \"jobs\": {},\n  \"events\": {},\n  \
             \"wall_clock_s\": {:.3},\n  \"events_per_sec\": {:.0},\n  \
             \"peak_queue_depth\": {},\n  \"build_s\": {:.3},\n  \"run_s\": {:.3},\n  \
             \"finalize_s\": {:.3},\n  \"workers\": {workers}\n}}\n",
            self.jobs,
            self.events,
            self.wall.as_secs_f64(),
            self.events_per_sec(),
            self.peak_queue_depth,
            self.timings.build.as_secs_f64(),
            self.timings.run.as_secs_f64(),
            self.timings.finalize.as_secs_f64(),
        )
    }
}

/// One job's wall-clock profile: where it ran, when it started
/// (relative to its [`SweepExecutor::run`] call), and how long each
/// phase took. Pure measurement — nondeterministic by nature, never
/// fed back into any simulation.
#[derive(Debug, Clone, Copy)]
pub struct JobProfile {
    /// Index into the `cells` slice passed to the run.
    pub cell: usize,
    /// Repetition index within the cell.
    pub rep: u32,
    /// Worker thread that ran the job.
    pub worker: usize,
    /// Job start, as an offset from the start of the executor run.
    pub start: Duration,
    /// Claim-to-result wall-clock (includes panic isolation overhead).
    pub wall: Duration,
    /// Per-phase simulation timings of the successful attempt.
    pub timings: RunTimings,
}

/// One job that did not produce a result: which cell and repetition,
/// how it died, and whether the retry was spent. The sweep keeps
/// going — every other `(protocol, point, rep)` still completes — and
/// the failure surfaces here instead of aborting the grid.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Index into the `cells` slice passed to the run.
    pub cell: usize,
    /// Repetition index within the cell.
    pub rep: u32,
    /// Protocol label of the failed job's configuration.
    pub protocol: String,
    /// The repetition's derived seed.
    pub seed: u64,
    /// Panic message, or the budget-exhaustion note.
    pub reason: String,
    /// True if the job was retried once (panics are retried on a fresh
    /// scratch; deterministic budget exhaustion is not — it would fail
    /// identically).
    pub retried: bool,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} rep {} ({}, seed {}){}: {}",
            self.cell,
            self.rep,
            self.protocol,
            self.seed,
            if self.retried { ", after retry" } else { "" },
            self.reason
        )
    }
}

/// What a checked sweep produced: per-cell results (failed repetitions
/// simply absent, so a cell may hold fewer runs than requested — or
/// none) plus the structured failure list, ordered by job.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per cell, the completed repetition results ordered by seed.
    pub results: Vec<Vec<RunResult>>,
    /// Every job that produced no result.
    pub failures: Vec<JobFailure>,
}

impl SweepOutcome {
    /// A human-readable failure report, `None` when everything ran.
    pub fn failure_summary(&self) -> Option<String> {
        if self.failures.is_empty() {
            return None;
        }
        let mut s = format!("{} sweep job(s) failed:\n", self.failures.len());
        for f in &self.failures {
            s.push_str("  ");
            s.push_str(&f.to_string());
            s.push('\n');
        }
        Some(s)
    }

    /// The failure list as a machine-readable JSON document
    /// (`{"failures": [...]}`; the array is empty when everything ran).
    pub fn failures_json(&self) -> String {
        let mut s = String::from("{\n  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"cell\": {}, \"rep\": {}, \"protocol\": \"{}\", \"seed\": {}, \
                 \"reason\": \"{}\", \"retried\": {}}}",
                f.cell,
                f.rep,
                escape(&f.protocol),
                f.seed,
                escape(&f.reason),
                f.retried
            ));
        }
        if !self.failures.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Work-stealing executor over sweep grids. Reusable: statistics
/// accumulate across [`SweepExecutor::run`] calls.
#[derive(Debug)]
pub struct SweepExecutor {
    threads: usize,
    stats: ExecutorStats,
    event_budget: Option<u64>,
    profiles: Vec<JobProfile>,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepExecutor {
    /// An executor over all available cores.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// An executor with an explicit worker count (1 = serial reference
    /// executor; the determinism tests compare it against the parallel
    /// one).
    pub fn with_threads(threads: usize) -> Self {
        SweepExecutor {
            threads: threads.max(1),
            stats: ExecutorStats::default(),
            event_budget: None,
            profiles: Vec::new(),
        }
    }

    /// Caps every job at `budget` processed events. A job that has not
    /// reached its configured duration by then is abandoned and
    /// reported as a [`JobFailure`] — a deterministic runaway guard
    /// (event counts, unlike wall clocks, are identical across
    /// machines, thread counts, and replays).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        assert!(budget > 0, "an event budget of zero would fail every job");
        self.event_budget = Some(budget);
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ExecutorStats {
        self.stats.clone()
    }

    /// Per-job wall-clock profiles accumulated so far, ordered by job
    /// (cell, then repetition) within each run.
    pub fn profiles(&self) -> &[JobProfile] {
        &self.profiles
    }

    /// Renders the accumulated job profiles as a Chrome/Perfetto
    /// trace-event document: one process (`pid` 1, "essat executor"),
    /// one thread track per worker, one complete event per job. Loads
    /// directly in `ui.perfetto.dev`; timestamps are wall-clock offsets
    /// from the start of the (latest) executor run.
    pub fn profile_perfetto(&self) -> String {
        let mut b = PerfettoBuilder::new();
        b.process_name(1, "essat executor");
        let workers = self
            .profiles
            .iter()
            .map(|p| p.worker + 1)
            .max()
            .unwrap_or(0);
        for w in 0..workers {
            b.thread_name(1, w as u32, &format!("worker {w}"));
        }
        for p in &self.profiles {
            b.complete(
                1,
                p.worker as u32,
                &format!("cell {} rep {}", p.cell, p.rep),
                p.start.as_nanos() as u64,
                p.wall.as_nanos() as u64,
            );
        }
        b.finish()
    }

    /// Runs every `(cell, repetition)` job across the worker pool and
    /// returns, per cell, its repetition results ordered by seed.
    ///
    /// # Panics
    ///
    /// Panics with the aggregated failure report if any job failed —
    /// the strict entry point for callers that treat a failed job as a
    /// bug. Figure builders use [`SweepExecutor::run_checked`] and emit
    /// partial results instead.
    pub fn run(&mut self, cells: &[SweepCell]) -> Vec<Vec<RunResult>> {
        let out = self.run_checked(cells);
        if let Some(report) = out.failure_summary() {
            panic!("{report}");
        }
        out.results
    }

    /// [`SweepExecutor::run`] with panic isolation: each job runs under
    /// `catch_unwind` (with one retry on a fresh scratch) and an
    /// optional deterministic event budget; jobs that still fail become
    /// [`JobFailure`] records while the rest of the grid completes.
    pub fn run_checked(&mut self, cells: &[SweepCell]) -> SweepOutcome {
        self.run_checked_with(cells, &Protocol::build_policy)
    }

    /// [`SweepExecutor::run_checked`] over a custom policy factory —
    /// the out-of-tree-policy seam, panic-isolated: a factory (or
    /// policy) that panics takes down its own job, not the sweep.
    pub fn run_checked_with(
        &mut self,
        cells: &[SweepCell],
        factory: &SyncPolicyFactory<'_>,
    ) -> SweepOutcome {
        let t0 = Instant::now();
        // Flatten the grid into one deterministic job list.
        let mut jobs: Vec<(usize, u32, ExperimentConfig)> = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            for rep in 0..cell.runs {
                let mut cfg = cell.cfg.clone();
                cfg.seed = cell.cfg.seed.wrapping_add(rep as u64);
                jobs.push((ci, rep, cfg));
            }
        }
        let cursor = AtomicUsize::new(0);
        type Slot = Mutex<Option<(Result<RunResult, JobFailure>, JobProfile)>>;
        let slots: Vec<Slot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(jobs.len()).max(1);
        let budget = self.event_budget;
        // Shared immutable build cache: every job at the same
        // (topology, seed) sweep point — all protocols, all repetitions
        // with the same derived seed — reuses one topology + routing
        // tree + channel adjacency instead of rebuilding them per job.
        let cache = BuildCache::new();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (jobs, cursor, slots, cache) = (&jobs, &cursor, &slots, &cache);
                scope.spawn(move || {
                    // Worker-local scratch: the event-queue slab, channel
                    // buffer pools and action buffers warmed by one job
                    // are recycled into the next.
                    let mut scratch = WorldScratch::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((ci, rep, cfg)) = jobs.get(i) else {
                            break;
                        };
                        let start = t0.elapsed();
                        let claimed = Instant::now();
                        let mut timings = RunTimings::default();
                        let outcome = Self::run_job(
                            cfg,
                            factory,
                            cache,
                            &mut scratch,
                            budget,
                            *ci,
                            *rep,
                            &mut timings,
                        );
                        let profile = JobProfile {
                            cell: *ci,
                            rep: *rep,
                            worker: w,
                            start,
                            wall: claimed.elapsed(),
                            timings,
                        };
                        *slots[i].lock().expect("result slot poisoned") = Some((outcome, profile));
                    }
                });
            }
        });
        // Deterministic assembly: slot order == job order == cell order.
        let mut results: Vec<Vec<RunResult>> = cells
            .iter()
            .map(|c| Vec::with_capacity(c.runs as usize))
            .collect();
        let mut failures = Vec::new();
        if self.stats.workers.len() < workers {
            self.stats.workers.resize(workers, WorkerStats::default());
        }
        for ((ci, _, _), slot) in jobs.iter().zip(slots) {
            let (outcome, profile) = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot");
            let ws = &mut self.stats.workers[profile.worker];
            ws.jobs += 1;
            ws.busy += profile.wall;
            match outcome {
                Ok(r) => {
                    self.stats.jobs += 1;
                    self.stats.events += r.events_processed;
                    self.stats.peak_queue_depth =
                        self.stats.peak_queue_depth.max(r.peak_queue_depth);
                    self.stats.timings.accumulate(&profile.timings);
                    results[*ci].push(r);
                }
                Err(f) => failures.push(f),
            }
            self.profiles.push(profile);
        }
        self.stats.wall += t0.elapsed();
        SweepOutcome { results, failures }
    }

    /// One panic-isolated job: run, retry once on panic (with a fresh
    /// scratch — a panic can leave the recycled buffers inconsistent),
    /// and turn whatever is left into a structured failure. `timings`
    /// receives the per-phase wall-clock of the last attempt.
    #[allow(clippy::too_many_arguments)]
    fn run_job(
        cfg: &ExperimentConfig,
        factory: &SyncPolicyFactory<'_>,
        cache: &BuildCache,
        scratch: &mut WorldScratch,
        budget: Option<u64>,
        cell: usize,
        rep: u32,
        timings: &mut RunTimings,
    ) -> Result<RunResult, JobFailure> {
        let fail = |reason: String, retried: bool| JobFailure {
            cell,
            rep,
            protocol: cfg.protocol.to_string(),
            seed: cfg.seed,
            reason,
            retried,
        };
        let budget_reason = || {
            format!(
                "event budget exhausted ({} events) before the configured duration",
                budget.unwrap_or(0)
            )
        };
        let attempt = |scratch: &mut WorldScratch, timings: &mut RunTimings| {
            *timings = RunTimings::default();
            catch_unwind(AssertUnwindSafe(|| {
                World::run_pooled_timed(
                    cfg,
                    &|c, n, e| factory(c, n, e),
                    Some(cache),
                    scratch,
                    budget,
                    timings,
                )
            }))
        };
        match attempt(scratch, timings) {
            Ok(Some(r)) => Ok(r),
            // Budget exhaustion is deterministic: a retry would burn
            // the same events to the same end. Fail immediately.
            Ok(None) => Err(fail(budget_reason(), false)),
            Err(payload) => {
                let first = panic_message(payload);
                *scratch = WorldScratch::new();
                match attempt(scratch, timings) {
                    Ok(Some(r)) => Ok(r),
                    Ok(None) => Err(fail(budget_reason(), true)),
                    Err(payload2) => {
                        *scratch = WorldScratch::new();
                        let second = panic_message(payload2);
                        let reason = if first == second {
                            format!("panicked twice: {second}")
                        } else {
                            format!("panicked: {first}; then on retry: {second}")
                        };
                        Err(fail(reason, true))
                    }
                }
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_sim::time::SimDuration;
    use essat_wsn::config::{Protocol, WorkloadSpec};

    fn tiny(seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(Protocol::NtsSs, WorkloadSpec::paper(1.0), seed);
        cfg.nodes = 12;
        cfg.area_side = 220.0;
        cfg.duration = SimDuration::from_secs(6);
        cfg
    }

    #[test]
    fn results_ordered_by_cell_and_seed() {
        let cells = vec![SweepCell::new(tiny(10), 2), SweepCell::new(tiny(50), 3)];
        let mut ex = SweepExecutor::with_threads(4);
        let out = ex.run(&cells);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[1].len(), 3);
        assert_eq!(out[0][0].seed, 10);
        assert_eq!(out[0][1].seed, 11);
        assert_eq!(
            out[1].iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![50, 51, 52]
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let cells = vec![SweepCell::new(tiny(7), 3), SweepCell::new(tiny(8), 2)];
        let serial = SweepExecutor::with_threads(1).run(&cells);
        let parallel = SweepExecutor::with_threads(8).run(&cells);
        for (s_cell, p_cell) in serial.iter().zip(&parallel) {
            for (s, p) in s_cell.iter().zip(p_cell) {
                assert_eq!(s.seed, p.seed);
                assert_eq!(s.events_processed, p.events_processed);
                assert_eq!(s.avg_duty_cycle_pct(), p.avg_duty_cycle_pct());
                assert_eq!(s.avg_latency_s(), p.avg_latency_s());
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut ex = SweepExecutor::with_threads(2);
        ex.run(&[SweepCell::new(tiny(1), 1)]);
        let first = ex.stats();
        assert_eq!(first.jobs, 1);
        assert!(first.events > 0);
        assert!(first.peak_queue_depth > 0);
        ex.run(&[SweepCell::new(tiny(2), 2)]);
        let second = ex.stats();
        assert_eq!(second.jobs, 3);
        assert!(second.events > first.events);
        let json = second.to_json(2);
        assert!(json.contains("\"jobs\": 3"));
        assert!(json.contains("events_per_sec"));
    }
}
