//! Experiment scale: the paper's full setup versus a fast CI/bench
//! configuration.

use essat_wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};

/// How big to run each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's §5 setup: 80 nodes, 200 s runs, 5 repetitions, full
    /// sweep grids. Regenerating every figure takes tens of minutes of
    /// CPU.
    Paper,
    /// Reduced: 40 nodes, 50 s runs, 2 repetitions, thinned sweep grids.
    /// Preserves every qualitative shape at a fraction of the cost.
    Quick,
}

impl Scale {
    /// Repetitions per data point (the paper averages 5 runs).
    pub fn runs(self) -> u32 {
        match self {
            Scale::Paper => 5,
            Scale::Quick => 2,
        }
    }

    /// The base-rate sweep of Figures 3 and 6 (hertz).
    pub fn rate_sweep(self) -> Vec<f64> {
        match self {
            Scale::Paper => vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
            Scale::Quick => vec![1.0, 3.0, 5.0],
        }
    }

    /// The queries-per-class sweep of Figures 4 and 7.
    pub fn queries_sweep(self) -> Vec<u32> {
        match self {
            Scale::Paper => (1..=10).collect(),
            Scale::Quick => vec![1, 5, 10],
        }
    }

    /// The deadline sweep of Figure 2 (seconds).
    pub fn deadline_sweep(self) -> Vec<f64> {
        match self {
            Scale::Paper => vec![0.02, 0.04, 0.08, 0.12, 0.2, 0.3, 0.4, 0.6, 0.8],
            Scale::Quick => vec![0.02, 0.12, 0.4, 0.8],
        }
    }

    /// The break-even-time sweep of Figure 9 (milliseconds).
    pub fn tbe_sweep_ms(self) -> Vec<f64> {
        vec![0.0, 2.5, 10.0, 40.0]
    }

    /// The clock-skew sweep of the `drift` figure (parts per million).
    /// Zero is the fault-free control; the top points are far beyond
    /// crystal reality (~50 ppm) to expose degradation shape.
    pub fn drift_sweep_ppm(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![0, 100, 500, 1000, 5000],
            Scale::Quick => vec![0, 200, 5000],
        }
    }

    /// Builds the base configuration for a protocol and workload at this
    /// scale.
    pub fn config(self, protocol: Protocol, workload: WorkloadSpec, seed: u64) -> ExperimentConfig {
        match self {
            Scale::Paper => ExperimentConfig::paper(protocol, workload, seed),
            Scale::Quick => ExperimentConfig::quick(protocol, workload, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper() {
        let cfg = Scale::Paper.config(Protocol::DtsSs, WorkloadSpec::paper(5.0), 1);
        assert_eq!(cfg.nodes, 80);
        assert_eq!(Scale::Paper.runs(), 5);
        assert_eq!(Scale::Paper.queries_sweep().len(), 10);
    }

    #[test]
    fn quick_scale_is_thinner() {
        assert!(Scale::Quick.rate_sweep().len() < Scale::Paper.rate_sweep().len());
        assert!(Scale::Quick.runs() < Scale::Paper.runs());
        let cfg = Scale::Quick.config(Protocol::Sync, WorkloadSpec::paper(1.0), 1);
        assert!(cfg.nodes < 80);
    }

    #[test]
    fn sweeps_cover_paper_ranges() {
        let rates = Scale::Paper.rate_sweep();
        assert_eq!(*rates.first().unwrap(), 1.0);
        assert_eq!(*rates.last().unwrap(), 5.0);
        let tbe = Scale::Paper.tbe_sweep_ms();
        assert_eq!(tbe, vec![0.0, 2.5, 10.0, 40.0]);
    }
}
