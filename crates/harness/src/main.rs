//! `essat-figures` — regenerate the paper's figures from the command
//! line.
//!
//! ```text
//! essat-figures [FIGURES|all] [--quick] [--seed N] [--csv DIR]
//!
//! FIGURES   any of: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 headline overhead
//! --quick   reduced scale (40 nodes, 50 s, 2 runs) instead of paper scale
//! --seed N  master seed (default 2024)
//! --csv DIR also write each figure as CSV into DIR
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;

use essat_harness::figures::{self, QuerySweepData, RateSweepData};
use essat_harness::scale::Scale;
use essat_harness::table::FigureData;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut scale = Scale::Paper;
    let mut seed = 2024u64;
    let mut csv_dir: Option<PathBuf> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--csv needs a directory")),
                ));
            }
            "all" => {
                for f in [
                    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                    "headline", "overhead",
                ] {
                    wanted.insert(f.to_string());
                }
            }
            name if name.starts_with("fig") || name == "headline" || name == "overhead" => {
                wanted.insert(name.to_string());
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if wanted.is_empty() {
        usage("no figures requested");
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    eprintln!(
        "# scale: {:?}, seed: {seed}, figures: {:?}",
        scale,
        wanted.iter().collect::<Vec<_>>()
    );

    // Shared sweeps.
    let needs_rate = ["fig3", "fig6", "headline", "overhead"]
        .iter()
        .any(|f| wanted.contains(*f));
    let needs_query = ["fig4", "fig7", "headline"]
        .iter()
        .any(|f| wanted.contains(*f));
    let rate: Option<RateSweepData> = needs_rate.then(|| {
        eprintln!("# running base-rate sweep (figs 3 & 6)…");
        figures::rate_sweep(scale, seed)
    });
    let query: Option<QuerySweepData> = needs_query.then(|| {
        eprintln!("# running query-count sweep (figs 4 & 7)…");
        figures::query_sweep(scale, seed)
    });

    let emit = |fig: &FigureData| {
        println!("{}", fig.render_table());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", fig.id));
            std::fs::write(&path, fig.to_csv()).expect("write csv");
            eprintln!("# wrote {}", path.display());
        }
    };

    if wanted.contains("fig2") {
        eprintln!("# running fig2 deadline sweep…");
        emit(&figures::fig2_deadline(scale, seed));
    }
    if wanted.contains("fig3") {
        emit(&rate.as_ref().expect("computed").duty);
    }
    if wanted.contains("fig4") {
        emit(&query.as_ref().expect("computed").duty);
    }
    if wanted.contains("fig5") {
        eprintln!("# running fig5 rank profile…");
        emit(&figures::fig5_rank_profile(scale, seed));
    }
    if wanted.contains("fig6") {
        emit(&rate.as_ref().expect("computed").latency);
    }
    if wanted.contains("fig7") {
        emit(&query.as_ref().expect("computed").latency);
    }
    if wanted.contains("fig8") {
        eprintln!("# running fig8 sleep-interval histogram…");
        let data = figures::fig8_sleep_hist(scale, seed);
        emit(&data.histogram);
        println!("fraction of sleep intervals < 2.5 ms (paper: NTS 0.40%, STS 0.85%, DTS 6.33%):");
        for (label, pct) in &data.below_2_5ms_pct {
            println!("  {label:>8}: {pct:5.2}%");
        }
        println!();
    }
    if wanted.contains("fig9") {
        eprintln!("# running fig9 break-even sweep…");
        emit(&figures::fig9_tbe(scale, seed));
    }
    if wanted.contains("overhead") {
        let series = &rate.as_ref().expect("computed").dts_overhead_bits;
        println!("== overhead — DTS phase-update overhead (paper: < 1 bit per data report)");
        for p in &series.points {
            println!("  base rate {:3.1} Hz: {:6.4} bits/report", p.x, p.y);
        }
        println!();
    }
    if wanted.contains("headline") {
        let h = figures::headline(
            rate.as_ref().expect("computed"),
            query.as_ref().expect("computed"),
        );
        println!("{}", h.render());
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: essat-figures [fig2..fig9|headline|overhead|all]… [--quick] [--seed N] [--csv DIR]"
    );
    std::process::exit(2);
}
