//! `essat-figures` — regenerate the paper's figures from the command
//! line.
//!
//! ```text
//! essat-figures [FIGURES|all] [--scale quick|paper] [--seed N]
//!               [--csv DIR] [--threads N] [--bench-json PATH]
//!
//! FIGURES      any of: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              headline overhead lifetime robustness drift
//!              (default: all)
//! --scale S    quick (40 nodes, 50 s, 2 runs) or paper (80 nodes,
//!              200 s, 5 runs; the default). --quick is shorthand for
//!              --scale quick.
//! --seed N     master seed (default 2024)
//! --csv DIR    also write each figure as CSV into DIR
//! --threads N  worker threads (default: all cores)
//! --bench-json PATH  where to write the run's performance record
//!              (default: BENCH_harness.json in the working directory)
//! ```
//!
//! All requested figures share one [`SweepExecutor`]: the whole
//! `(figure, sweep point, protocol, repetition)` grid drains across all
//! cores with no per-point barrier, and the executor's aggregate
//! statistics (wall-clock, events/second, peak event-queue depth) are
//! written to `BENCH_harness.json` so the performance trajectory is
//! tracked run over run.

use std::collections::BTreeSet;
use std::path::PathBuf;

use essat_harness::executor::SweepExecutor;
use essat_harness::figures::{self, QuerySweepData, RateSweepData};
use essat_harness::scale::Scale;
use essat_harness::table::FigureData;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut scale = Scale::Paper;
    let mut seed = 2024u64;
    let mut csv_dir: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut bench_json = PathBuf::from("BENCH_harness.json");

    let all_figures = [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "headline",
        "overhead",
        "lifetime",
        "robustness",
        "drift",
    ];
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("paper") => Scale::Paper,
                    other => usage(&format!("--scale needs quick|paper, got {other:?}")),
                };
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs a number")),
                );
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--csv needs a directory")),
                ));
            }
            "--bench-json" => {
                bench_json = PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--bench-json needs a path")),
                );
            }
            "all" => {
                for f in all_figures {
                    wanted.insert(f.to_string());
                }
            }
            name if all_figures.contains(&name) => {
                wanted.insert(name.to_string());
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if wanted.is_empty() {
        // Quickstart default: regenerate everything.
        for f in all_figures {
            wanted.insert(f.to_string());
        }
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let mut exec = match threads {
        Some(n) => SweepExecutor::with_threads(n),
        None => SweepExecutor::new(),
    };
    eprintln!(
        "# scale: {:?}, seed: {seed}, threads: {}, figures: {:?}",
        scale,
        exec.threads(),
        wanted.iter().collect::<Vec<_>>()
    );

    // Plan every requested figure up front and execute the whole
    // invocation as ONE flat job list — no per-figure barrier: an idle
    // worker takes the next unclaimed job whatever figure it belongs to.
    let needs_rate = ["fig3", "fig6", "headline", "overhead"]
        .iter()
        .any(|f| wanted.contains(*f));
    let needs_query = ["fig4", "fig7", "headline"]
        .iter()
        .any(|f| wanted.contains(*f));
    let mut cells = Vec::new();
    let mut spans: Vec<(&str, usize, usize)> = Vec::new();
    let mut plan = |key: &'static str, mut figure_cells: Vec<_>, cells: &mut Vec<_>| {
        spans.push((key, cells.len(), figure_cells.len()));
        cells.append(&mut figure_cells);
    };
    if needs_rate {
        plan("rate", figures::rate_sweep_cells(scale, seed), &mut cells);
    }
    if needs_query {
        plan("query", figures::query_sweep_cells(scale, seed), &mut cells);
    }
    if wanted.contains("fig2") {
        plan(
            "fig2",
            figures::fig2_deadline_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("fig5") {
        plan(
            "fig5",
            figures::fig5_rank_profile_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("fig8") {
        plan(
            "fig8",
            figures::fig8_sleep_hist_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("fig9") {
        plan("fig9", figures::fig9_tbe_cells(scale, seed), &mut cells);
    }
    if wanted.contains("lifetime") {
        plan("lifetime", figures::lifetime_cells(scale, seed), &mut cells);
    }
    if wanted.contains("robustness") {
        plan(
            "robustness",
            figures::robustness_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("drift") {
        plan("drift", figures::drift_cells(scale, seed), &mut cells);
    }
    let total_jobs: u32 = cells
        .iter()
        .map(|c: &essat_harness::executor::SweepCell| c.runs)
        .sum();
    eprintln!(
        "# executing {} simulation runs ({} sweep cells) as one job list…",
        total_jobs,
        cells.len()
    );
    // Panic-isolated execution: a failing job (a policy panic or an
    // exhausted event budget) becomes a failure report while every
    // other cell completes, and the figures below render from whatever
    // repetitions survived.
    let outcome = exec.run_checked(&cells);
    if let Some(report) = outcome.failure_summary() {
        eprintln!("{report}");
    }
    let grid = outcome.results;
    let slice = |key: &str| {
        spans
            .iter()
            .find(|(k, _, _)| *k == key)
            .map(|&(_, start, len)| &grid[start..start + len])
    };

    let rate: Option<RateSweepData> = slice("rate").map(|g| figures::rate_sweep_from(g, scale));
    let query: Option<QuerySweepData> = slice("query").map(|g| figures::query_sweep_from(g, scale));

    let emit = |fig: &FigureData| {
        println!("{}", fig.render_table());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", fig.id));
            std::fs::write(&path, fig.to_csv()).expect("write csv");
            eprintln!("# wrote {}", path.display());
        }
    };

    if wanted.contains("fig2") {
        emit(&figures::fig2_deadline_from(
            slice("fig2").expect("planned"),
            scale,
        ));
    }
    if wanted.contains("fig3") {
        emit(&rate.as_ref().expect("computed").duty);
    }
    if wanted.contains("fig4") {
        emit(&query.as_ref().expect("computed").duty);
    }
    if wanted.contains("fig5") {
        emit(&figures::fig5_rank_profile_from(
            slice("fig5").expect("planned"),
        ));
    }
    if wanted.contains("fig6") {
        emit(&rate.as_ref().expect("computed").latency);
    }
    if wanted.contains("fig7") {
        emit(&query.as_ref().expect("computed").latency);
    }
    if wanted.contains("fig8") {
        let data = figures::fig8_sleep_hist_from(slice("fig8").expect("planned"));
        emit(&data.histogram);
        println!("fraction of sleep intervals < 2.5 ms (paper: NTS 0.40%, STS 0.85%, DTS 6.33%):");
        for (label, pct) in &data.below_2_5ms_pct {
            println!("  {label:>8}: {pct:5.2}%");
        }
        println!();
    }
    if wanted.contains("fig9") {
        emit(&figures::fig9_tbe_from(
            slice("fig9").expect("planned"),
            scale,
        ));
    }
    if wanted.contains("lifetime") {
        emit(&figures::lifetime_from(slice("lifetime").expect("planned")));
        println!("protocol_index legend (energy_drain preset):");
        for (i, p) in figures::SCENARIO_PROTOCOLS.iter().enumerate() {
            println!("  {i}: {p}");
        }
        println!();
    }
    if wanted.contains("robustness") {
        emit(&figures::robustness_from(
            slice("robustness").expect("planned"),
        ));
        println!("preset_index legend:");
        for (i, name) in figures::ROBUSTNESS_PRESETS.iter().enumerate() {
            println!("  {i}: {name}");
        }
        println!();
    }
    if wanted.contains("drift") {
        let data = figures::drift_from(slice("drift").expect("planned"), scale);
        emit(&data.delivery);
        emit(&data.missed);
    }
    if wanted.contains("overhead") {
        let series = &rate.as_ref().expect("computed").dts_overhead_bits;
        println!("== overhead — DTS phase-update overhead (paper: < 1 bit per data report)");
        for p in &series.points {
            println!("  base rate {:3.1} Hz: {:6.4} bits/report", p.x, p.y);
        }
        println!();
    }
    if wanted.contains("headline") {
        let h = figures::headline(
            rate.as_ref().expect("computed"),
            query.as_ref().expect("computed"),
        );
        println!("{}", h.render());
    }

    // Performance record: one JSON document per invocation.
    let stats = exec.stats();
    let json = stats.to_json(exec.threads());
    match std::fs::write(&bench_json, &json) {
        Ok(()) => eprintln!(
            "# {}: {} runs, {:.1}s wall, {:.0} events/s, peak queue {}",
            bench_json.display(),
            stats.jobs,
            stats.wall.as_secs_f64(),
            stats.events_per_sec(),
            stats.peak_queue_depth
        ),
        Err(e) => eprintln!("# could not write {}: {e}", bench_json.display()),
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: essat-figures [fig2..fig9|headline|overhead|lifetime|robustness|drift|all]… \
         [--scale quick|paper] [--seed N] [--csv DIR] [--threads N] [--bench-json PATH]"
    );
    std::process::exit(2);
}
