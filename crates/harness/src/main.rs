//! `essat-figures` — regenerate the paper's figures from the command
//! line.
//!
//! ```text
//! essat-figures [FIGURES|all] [--scale quick|paper] [--seed N]
//!               [--csv DIR] [--threads N] [--bench-json PATH]
//!               [--figure NAME] [--list-figures] [--trace PATH]
//!               [--sample PERIOD] [--profile PATH]
//!               [--failures-json PATH]
//!
//! FIGURES      any of: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              headline overhead lifetime robustness drift
//!              self_healing (default: all)
//! --figure NAME      select a figure by name (same as the bare name;
//!              unknown names list the valid set)
//! --list-figures     print the valid figure names and exit
//! --scale S    quick (40 nodes, 50 s, 2 runs) or paper (80 nodes,
//!              200 s, 5 runs; the default). --quick is shorthand for
//!              --scale quick.
//! --seed N     master seed (default 2024)
//! --csv DIR    also write each figure as CSV into DIR
//! --threads N  worker threads (default: all cores)
//! --bench-json PATH  where to write the run's performance record
//!              (default: BENCH_harness.json in the working directory)
//! --trace PATH       run the first planned cell once more with the
//!              timeline tracer attached and write the per-node trace:
//!              Chrome/Perfetto JSON, or compact JSONL if PATH ends in
//!              .jsonl. Load the JSON at https://ui.perfetto.dev.
//! --sample PERIOD    same side-run with the time-series sampler at
//!              PERIOD seconds of sim time per row set; the CSV goes to
//!              samples.csv (inside --csv DIR when given)
//! --profile PATH     write the executor's wall-clock job profile as a
//!              Perfetto trace (one track per worker)
//! --failures-json PATH  machine-readable failed-job report, written
//!              only when jobs failed (default: FAILURES_harness.json)
//! ```
//!
//! All requested figures share one [`SweepExecutor`]: the whole
//! `(figure, sweep point, protocol, repetition)` grid drains across all
//! cores with no per-point barrier, and the executor's aggregate
//! statistics (wall-clock, events/second, peak event-queue depth) are
//! written to `BENCH_harness.json` so the performance trajectory is
//! tracked run over run.

use std::collections::BTreeSet;
use std::path::PathBuf;

use essat_harness::executor::SweepExecutor;
use essat_harness::figures::{self, QuerySweepData, RateSweepData};
use essat_harness::scale::Scale;
use essat_harness::table::FigureData;
use essat_obs::sample::TimeSeriesSampler;
use essat_obs::trace::TimelineTracer;
use essat_obs::Fanout;
use essat_sim::time::SimDuration;
use essat_wsn::runner::run_probed;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut scale = Scale::Paper;
    let mut seed = 2024u64;
    let mut csv_dir: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut bench_json = PathBuf::from("BENCH_harness.json");
    let mut failures_json = PathBuf::from("FAILURES_harness.json");
    let mut trace_path: Option<PathBuf> = None;
    let mut sample_period: Option<f64> = None;
    let mut profile_path: Option<PathBuf> = None;

    let all_figures = [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "headline",
        "overhead",
        "lifetime",
        "robustness",
        "drift",
        "self_healing",
    ];
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("paper") => Scale::Paper,
                    other => usage(&format!("--scale needs quick|paper, got {other:?}")),
                };
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs a number")),
                );
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--csv needs a directory")),
                ));
            }
            "--bench-json" => {
                bench_json = PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--bench-json needs a path")),
                );
            }
            "--failures-json" => {
                failures_json = PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--failures-json needs a path")),
                );
            }
            "--trace" => {
                trace_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--trace needs a path")),
                ));
            }
            "--sample" => {
                let p: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sample needs a period in seconds"));
                if p <= 0.0 || !p.is_finite() {
                    usage("--sample needs a positive period in seconds");
                }
                sample_period = Some(p);
            }
            "--profile" => {
                profile_path = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--profile needs a path")),
                ));
            }
            "--list-figures" => {
                for f in all_figures {
                    println!("{f}");
                }
                return;
            }
            "--figure" => {
                let name = it
                    .next()
                    .unwrap_or_else(|| usage("--figure needs a figure name"));
                if !all_figures.contains(&name.as_str()) {
                    unknown_figure(name, &all_figures);
                }
                wanted.insert(name.clone());
            }
            "all" => {
                for f in all_figures {
                    wanted.insert(f.to_string());
                }
            }
            name if all_figures.contains(&name) => {
                wanted.insert(name.to_string());
            }
            other if !other.starts_with('-') => unknown_figure(other, &all_figures),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if wanted.is_empty() {
        // Quickstart default: regenerate everything.
        for f in all_figures {
            wanted.insert(f.to_string());
        }
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    let mut exec = match threads {
        Some(n) => SweepExecutor::with_threads(n),
        None => SweepExecutor::new(),
    };
    eprintln!(
        "# scale: {:?}, seed: {seed}, threads: {}, figures: {:?}",
        scale,
        exec.threads(),
        wanted.iter().collect::<Vec<_>>()
    );

    // Plan every requested figure up front and execute the whole
    // invocation as ONE flat job list — no per-figure barrier: an idle
    // worker takes the next unclaimed job whatever figure it belongs to.
    let needs_rate = ["fig3", "fig6", "headline", "overhead"]
        .iter()
        .any(|f| wanted.contains(*f));
    let needs_query = ["fig4", "fig7", "headline"]
        .iter()
        .any(|f| wanted.contains(*f));
    let mut cells = Vec::new();
    let mut spans: Vec<(&str, usize, usize)> = Vec::new();
    let mut plan = |key: &'static str, mut figure_cells: Vec<_>, cells: &mut Vec<_>| {
        spans.push((key, cells.len(), figure_cells.len()));
        cells.append(&mut figure_cells);
    };
    if needs_rate {
        plan("rate", figures::rate_sweep_cells(scale, seed), &mut cells);
    }
    if needs_query {
        plan("query", figures::query_sweep_cells(scale, seed), &mut cells);
    }
    if wanted.contains("fig2") {
        plan(
            "fig2",
            figures::fig2_deadline_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("fig5") {
        plan(
            "fig5",
            figures::fig5_rank_profile_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("fig8") {
        plan(
            "fig8",
            figures::fig8_sleep_hist_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("fig9") {
        plan("fig9", figures::fig9_tbe_cells(scale, seed), &mut cells);
    }
    if wanted.contains("lifetime") {
        plan("lifetime", figures::lifetime_cells(scale, seed), &mut cells);
    }
    if wanted.contains("robustness") {
        plan(
            "robustness",
            figures::robustness_cells(scale, seed),
            &mut cells,
        );
    }
    if wanted.contains("drift") {
        plan("drift", figures::drift_cells(scale, seed), &mut cells);
    }
    if wanted.contains("self_healing") {
        plan(
            "self_healing",
            figures::self_healing_cells(scale, seed),
            &mut cells,
        );
    }
    let total_jobs: u32 = cells
        .iter()
        .map(|c: &essat_harness::executor::SweepCell| c.runs)
        .sum();
    eprintln!(
        "# executing {} simulation runs ({} sweep cells) as one job list…",
        total_jobs,
        cells.len()
    );
    // Panic-isolated execution: a failing job (a policy panic or an
    // exhausted event budget) becomes a failure report while every
    // other cell completes, and the figures below render from whatever
    // repetitions survived.
    let outcome = exec.run_checked(&cells);
    if let Some(report) = outcome.failure_summary() {
        eprintln!("{report}");
        match std::fs::write(&failures_json, outcome.failures_json()) {
            Ok(()) => eprintln!("# wrote {}", failures_json.display()),
            Err(e) => eprintln!("# could not write {}: {e}", failures_json.display()),
        }
    }
    let grid = outcome.results;
    let slice = |key: &str| {
        spans
            .iter()
            .find(|(k, _, _)| *k == key)
            .map(|&(_, start, len)| &grid[start..start + len])
    };

    let rate: Option<RateSweepData> = slice("rate").map(|g| figures::rate_sweep_from(g, scale));
    let query: Option<QuerySweepData> = slice("query").map(|g| figures::query_sweep_from(g, scale));

    let emit = |fig: &FigureData| {
        println!("{}", fig.render_table());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", fig.id));
            std::fs::write(&path, fig.to_csv()).expect("write csv");
            eprintln!("# wrote {}", path.display());
        }
    };

    if wanted.contains("fig2") {
        emit(&figures::fig2_deadline_from(
            slice("fig2").expect("planned"),
            scale,
        ));
    }
    if wanted.contains("fig3") {
        emit(&rate.as_ref().expect("computed").duty);
    }
    if wanted.contains("fig4") {
        emit(&query.as_ref().expect("computed").duty);
    }
    if wanted.contains("fig5") {
        emit(&figures::fig5_rank_profile_from(
            slice("fig5").expect("planned"),
        ));
    }
    if wanted.contains("fig6") {
        emit(&rate.as_ref().expect("computed").latency);
    }
    if wanted.contains("fig7") {
        emit(&query.as_ref().expect("computed").latency);
    }
    if wanted.contains("fig8") {
        let data = figures::fig8_sleep_hist_from(slice("fig8").expect("planned"));
        emit(&data.histogram);
        println!("fraction of sleep intervals < 2.5 ms (paper: NTS 0.40%, STS 0.85%, DTS 6.33%):");
        for (label, pct) in &data.below_2_5ms_pct {
            println!("  {label:>8}: {pct:5.2}%");
        }
        println!();
    }
    if wanted.contains("fig9") {
        emit(&figures::fig9_tbe_from(
            slice("fig9").expect("planned"),
            scale,
        ));
    }
    if wanted.contains("lifetime") {
        emit(&figures::lifetime_from(slice("lifetime").expect("planned")));
        println!("protocol_index legend (energy_drain preset):");
        for (i, p) in figures::SCENARIO_PROTOCOLS.iter().enumerate() {
            println!("  {i}: {p}");
        }
        println!();
    }
    if wanted.contains("robustness") {
        emit(&figures::robustness_from(
            slice("robustness").expect("planned"),
        ));
        println!("preset_index legend:");
        for (i, name) in figures::ROBUSTNESS_PRESETS.iter().enumerate() {
            println!("  {i}: {name}");
        }
        println!();
    }
    if wanted.contains("drift") {
        let data = figures::drift_from(slice("drift").expect("planned"), scale);
        emit(&data.delivery);
        emit(&data.missed);
    }
    if wanted.contains("self_healing") {
        let data = figures::self_healing_from(slice("self_healing").expect("planned"));
        emit(&data.delivery);
        emit(&data.in_partition);
        emit(&data.time_to_partition);
        emit(&data.activity);
        println!("protocol_index legend (churn + bursty_links presets, repair on vs off):");
        for (i, p) in essat_wsn::config::Protocol::all().iter().enumerate() {
            println!("  {i}: {p}");
        }
        println!();
    }
    if wanted.contains("overhead") {
        let series = &rate.as_ref().expect("computed").dts_overhead_bits;
        println!("== overhead — DTS phase-update overhead (paper: < 1 bit per data report)");
        for p in &series.points {
            println!("  base rate {:3.1} Hz: {:6.4} bits/report", p.x, p.y);
        }
        println!();
    }
    if wanted.contains("headline") {
        let h = figures::headline(
            rate.as_ref().expect("computed"),
            query.as_ref().expect("computed"),
        );
        println!("{}", h.render());
    }

    // Observability side-run: one extra probed run of the first
    // planned cell's configuration. Probes only observe — the figure
    // grid above is untouched, and the probed run's digest equals the
    // unprobed one (pinned by `tests/probes.rs`).
    if trace_path.is_some() || sample_period.is_some() {
        let cfg = &cells.first().expect("at least one figure planned").cfg;
        eprintln!(
            "# probed side-run: {} seed {} ({} nodes)",
            cfg.protocol, cfg.seed, cfg.nodes
        );
        let (tracer, sampler) = match (&trace_path, sample_period) {
            (Some(_), Some(p)) => {
                let probe = Fanout(
                    TimelineTracer::new(),
                    TimeSeriesSampler::new(SimDuration::from_secs_f64(p)),
                );
                let (_, Fanout(t, s)) = run_probed(cfg, probe);
                (Some(t), Some(s))
            }
            (Some(_), None) => {
                let (_, t) = run_probed(cfg, TimelineTracer::new());
                (Some(t), None)
            }
            (None, Some(p)) => {
                let (_, s) = run_probed(cfg, TimeSeriesSampler::new(SimDuration::from_secs_f64(p)));
                (None, Some(s))
            }
            (None, None) => unreachable!("guarded above"),
        };
        if let (Some(path), Some(t)) = (&trace_path, &tracer) {
            let doc = if path.extension().is_some_and(|e| e == "jsonl") {
                t.to_jsonl()
            } else {
                t.to_perfetto_json()
            };
            match std::fs::write(path, doc) {
                Ok(()) => eprintln!(
                    "# wrote {} ({} trace events)",
                    path.display(),
                    t.events().len()
                ),
                Err(e) => eprintln!("# could not write {}: {e}", path.display()),
            }
        }
        if let Some(s) = &sampler {
            let path = csv_dir
                .as_ref()
                .map(|d| d.join("samples.csv"))
                .unwrap_or_else(|| PathBuf::from("samples.csv"));
            match std::fs::write(&path, s.to_csv()) {
                Ok(()) => eprintln!(
                    "# wrote {} ({} sample rows)",
                    path.display(),
                    s.rows().len()
                ),
                Err(e) => eprintln!("# could not write {}: {e}", path.display()),
            }
        }
    }

    // Performance record: one JSON document per invocation, stamped
    // with the workload descriptor so the CI bench gate refuses to
    // compare throughput across different job sets.
    let planned: Vec<&str> = spans.iter().map(|&(k, _, _)| k).collect();
    let scale_key = match scale {
        Scale::Quick => "quick",
        Scale::Paper => "paper",
    };
    let workload = essat_harness::executor::Workload::new(&planned, scale_key, seed, &cells);
    let stats = exec.stats();
    let json = stats.to_json_with(exec.threads(), Some(&workload));
    match std::fs::write(&bench_json, &json) {
        Ok(()) => eprintln!(
            "# {}: {} runs, {:.1}s wall, {:.0} events/s, peak queue {}",
            bench_json.display(),
            stats.jobs,
            stats.wall.as_secs_f64(),
            stats.events_per_sec(),
            stats.peak_queue_depth
        ),
        Err(e) => eprintln!("# could not write {}: {e}", bench_json.display()),
    }
    if let Some(path) = &profile_path {
        match std::fs::write(path, exec.profile_perfetto()) {
            Ok(()) => eprintln!(
                "# wrote {} ({} jobs profiled)",
                path.display(),
                exec.profiles().len()
            ),
            Err(e) => eprintln!("# could not write {}: {e}", path.display()),
        }
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: essat-figures [fig2..fig9|headline|overhead|lifetime|robustness|drift|self_healing|all]… \
         [--figure NAME] [--list-figures] [--scale quick|paper] [--seed N] [--csv DIR] \
         [--threads N] [--bench-json PATH] [--failures-json PATH] [--trace PATH] \
         [--sample SECONDS] [--profile PATH]"
    );
    std::process::exit(2);
}

fn unknown_figure(name: &str, all: &[&str]) -> ! {
    eprintln!("error: unknown figure '{name}'");
    eprintln!("valid figures: {}", all.join(" "));
    std::process::exit(2);
}
