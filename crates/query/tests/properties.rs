//! Property-based tests for queries, aggregation, and routing trees.

use proptest::prelude::*;

use essat_net::geometry::Area;
use essat_net::ids::NodeId;
use essat_net::topology::Topology;
use essat_query::aggregate::{AggState, AggregateOp};
use essat_query::model::{Query, QueryId};
use essat_query::round::RoundAggregator;
use essat_query::tree::RoutingTree;
use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

proptest! {
    /// Merging partial state records is order-insensitive for min/max/
    /// count exactly, and for sum/avg within floating-point tolerance.
    #[test]
    fn aggregation_order_insensitive(
        readings in proptest::collection::vec(-1e6f64..1e6, 1..60),
        perm_seed in any::<u64>(),
    ) {
        let mut fwd = AggState::empty();
        for &x in &readings {
            fwd.merge(&AggState::from_reading(x));
        }
        let mut shuffled = readings.clone();
        let mut rng = SimRng::seed_from_u64(perm_seed);
        rng.shuffle(&mut shuffled);
        let mut rev = AggState::empty();
        for &x in &shuffled {
            rev.merge(&AggState::from_reading(x));
        }
        prop_assert_eq!(fwd.finish(AggregateOp::Min), rev.finish(AggregateOp::Min));
        prop_assert_eq!(fwd.finish(AggregateOp::Max), rev.finish(AggregateOp::Max));
        prop_assert_eq!(fwd.finish(AggregateOp::Count), rev.finish(AggregateOp::Count));
        let tol = 1e-9 * readings.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        prop_assert!((fwd.finish(AggregateOp::Sum) - rev.finish(AggregateOp::Sum)).abs() <= tol);
        prop_assert!((fwd.finish(AggregateOp::Avg) - rev.finish(AggregateOp::Avg)).abs() <= tol);
    }

    /// Aggregate extrema always bracket the mean; count equals inputs.
    #[test]
    fn aggregate_invariants(readings in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let mut s = AggState::empty();
        for &x in &readings {
            s.merge(&AggState::from_reading(x));
        }
        prop_assert_eq!(s.count(), readings.len() as u64);
        let avg = s.finish(AggregateOp::Avg);
        prop_assert!(s.finish(AggregateOp::Min) <= avg + 1e-9);
        prop_assert!(avg <= s.finish(AggregateOp::Max) + 1e-9);
    }

    /// Round arithmetic: `round_at(round_start(k)) == k`, and round
    /// starts are strictly increasing.
    #[test]
    fn round_arithmetic_round_trips(
        period_ms in 1u64..10_000,
        phase_ms in 0u64..100_000,
        k in 0u64..10_000,
    ) {
        let q = Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(period_ms),
            SimTime::from_millis(phase_ms),
            AggregateOp::Sum,
        );
        prop_assert_eq!(q.round_at(q.round_start(k)), Some(k));
        prop_assert!(q.round_start(k + 1) > q.round_start(k));
        // rounds_until is consistent with round_start.
        let end = q.round_start(k) + SimDuration::from_millis(1);
        prop_assert_eq!(q.rounds_until(end), k + if period_ms > 1 { 0 } else { 1 });
    }

    /// Tree construction on arbitrary random topologies always satisfies
    /// the structural invariants, and ranks are bounded by levels' max.
    #[test]
    fn tree_invariants_on_random_topologies(
        seed in any::<u64>(),
        n in 1u32..80,
        range in 30.0f64..150.0,
        radius in proptest::option::of(50.0f64..400.0),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let topo = Topology::random(n, Area::new(300.0, 300.0), range, &mut rng);
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, radius);
        tree.check_invariants();
        // Rank of root equals the maximum level among members.
        let max_level = tree
            .members()
            .iter()
            .filter_map(|&m| tree.level(m))
            .max()
            .unwrap_or(0);
        prop_assert_eq!(tree.max_rank(), max_level);
    }

    /// Failing random non-root members repeatedly never breaks the
    /// invariants; membership shrinks monotonically.
    #[test]
    fn tree_survives_random_failures(
        seed in any::<u64>(),
        n in 3u32..50,
        kills in proptest::collection::vec(any::<u32>(), 1..10),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let topo = Topology::random(n, Area::new(250.0, 250.0), 90.0, &mut rng);
        let root = topo.closest_to_center();
        let mut tree = RoutingTree::build(&topo, root, None);
        for &kraw in &kills {
            let candidates: Vec<_> = tree
                .members()
                .iter()
                .copied()
                .filter(|&m| m != root)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let victim = candidates[(kraw as usize) % candidates.len()];
            let before = tree.member_count();
            tree.fail_node(&topo, victim);
            tree.check_invariants();
            prop_assert!(tree.member_count() < before);
            prop_assert!(!tree.is_member(victim));
        }
    }

    /// Self-healing surgery under random kill / revive / degrade /
    /// re-parent scripts: the incrementally repaired tree satisfies the
    /// structural invariants after every operation and never keeps a
    /// dead member; re-adopting a current member is idempotent; and
    /// after sweeping orphan adoptions to fixpoint the member set
    /// equals the from-scratch reference — exactly the live nodes with
    /// a live path to the root.
    #[test]
    fn self_healing_script_matches_rebuild_reference(
        seed in any::<u64>(),
        n in 4u32..40,
        ops in proptest::collection::vec((0u8..4, any::<u32>(), 0.05f64..1.0), 1..25),
    ) {
        fn quality<'a>(
            alive: &'a [bool],
            q: &'a [f64],
            n: usize,
        ) -> impl Fn(NodeId, NodeId) -> f64 + 'a {
            move |s: NodeId, d: NodeId| {
                if alive[d.index()] {
                    q[s.index() * n + d.index()]
                } else {
                    f64::NEG_INFINITY
                }
            }
        }
        let mut rng = SimRng::seed_from_u64(seed);
        let topo = Topology::random(n, Area::new(250.0, 250.0), 90.0, &mut rng);
        let root = topo.closest_to_center();
        let mut tree = RoutingTree::build(&topo, root, None);
        let nn = topo.node_count();
        let mut alive = vec![true; nn];
        let mut q = vec![1.0f64; nn * nn];
        for &(op, raw, val) in &ops {
            let pick = (raw as usize) % nn;
            let node = NodeId::new(pick as u32);
            match op {
                0 => {
                    // Kill: declare the node failed and heal around it.
                    if node != root && alive[pick] {
                        alive[pick] = false;
                        if tree.is_member(node) {
                            tree.fail_node_by(&topo, node, &quality(&alive, &q, nn));
                        }
                    }
                }
                1 => {
                    // Revive: back to life, try immediate re-adoption.
                    if node != root && !alive[pick] {
                        alive[pick] = true;
                        tree.adopt_orphan(&topo, node, &quality(&alive, &q, nn));
                    }
                }
                2 => {
                    // Degrade: move one directed link's quality.
                    let tgt = ((raw >> 8) as usize) % nn;
                    q[pick * nn + tgt] = val;
                }
                _ => {
                    // Degraded-parent escape: move a member elsewhere.
                    if node != root && alive[pick] && tree.is_member(node) {
                        tree.reparent(&topo, node, &quality(&alive, &q, nn));
                    }
                }
            }
            tree.check_invariants();
            for &m in tree.members() {
                prop_assert!(alive[m.index()], "dead member {m} kept in the tree");
            }
        }
        // Idempotent re-adoption: adopting a current member returns its
        // existing parent and changes nothing.
        if let Some(&m) = tree.members().iter().find(|&&m| m != root) {
            let before = tree.clone();
            let p = tree.adopt_orphan(&topo, m, &quality(&alive, &q, nn));
            prop_assert_eq!(p, before.parent(m));
            prop_assert_eq!(&tree, &before);
        }
        // Sweep adoptions to fixpoint (an adoption can make the next
        // orphan reachable), then compare against the from-scratch
        // reference: BFS over live nodes from the root.
        loop {
            let mut adopted = false;
            for i in 0..nn {
                let node = NodeId::new(i as u32);
                if alive[i]
                    && node != root
                    && !tree.is_member(node)
                    && tree.adopt_orphan(&topo, node, &quality(&alive, &q, nn)).is_some()
                {
                    adopted = true;
                }
            }
            if !adopted {
                break;
            }
        }
        tree.check_invariants();
        let mut reach = vec![false; nn];
        reach[root.index()] = true;
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            for &v in topo.neighbors(u) {
                if alive[v.index()] && !reach[v.index()] {
                    reach[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        for (i, &reachable) in reach.iter().enumerate() {
            prop_assert_eq!(
                tree.is_member(NodeId::new(i as u32)),
                reachable,
                "node {} membership diverged from the rebuild reference",
                i
            );
        }
    }

    /// A round aggregator seals to exactly the sum of accepted inputs,
    /// regardless of arrival order and duplicates.
    #[test]
    fn round_aggregator_accepts_each_child_once(
        children in proptest::collection::vec(0u32..10, 1..10),
        arrivals in proptest::collection::vec((0u32..10, -100f64..100.0), 0..40),
    ) {
        let kids: Vec<NodeId> = {
            let mut v: Vec<u32> = children.clone();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(NodeId::new).collect()
        };
        let mut agg = RoundAggregator::new(&kids);
        let mut expect_sum = 0.0;
        let mut seen = std::collections::BTreeSet::new();
        for &(c, val) in &arrivals {
            let child = NodeId::new(c);
            let accepted = agg.add_child(child, AggState::from_reading(val));
            let should = kids.contains(&child) && !seen.contains(&child);
            prop_assert_eq!(accepted, should);
            if should {
                seen.insert(child);
                expect_sum += val;
            }
        }
        let sealed = agg.seal();
        prop_assert!((sealed.finish(AggregateOp::Sum) - expect_sum).abs() < 1e-9);
        prop_assert_eq!(sealed.count(), seen.len() as u64);
    }
}
