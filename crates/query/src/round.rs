//! Per-round aggregation state at one node.
//!
//! For every `(query, round)` a non-leaf node waits for the data reports
//! of its children, merges them with its own reading, and forwards one
//! aggregated report. [`RoundAggregator`] tracks which children have
//! contributed, supports the §4.3 timeout path (forward a *partial*
//! aggregate based on the reports received so far), and refuses
//! duplicates.

use std::collections::BTreeMap;

use essat_net::ids::NodeId;

use crate::aggregate::AggState;
use crate::model::QueryId;

/// Key of one aggregation round at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoundKey {
    /// The query.
    pub query: QueryId,
    /// The round number `k`.
    pub round: u64,
}

/// Collects child contributions for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundAggregator {
    expected: Vec<NodeId>,
    received: BTreeMap<NodeId, bool>,
    acc: AggState,
    own_added: bool,
    sealed: bool,
}

impl RoundAggregator {
    /// Creates an aggregator expecting one report from each of
    /// `expected_children`.
    pub fn new(expected_children: &[NodeId]) -> Self {
        RoundAggregator {
            expected: expected_children.to_vec(),
            received: expected_children.iter().map(|&c| (c, false)).collect(),
            acc: AggState::empty(),
            own_added: false,
            sealed: false,
        }
    }

    /// Adds this node's own reading. Returns `false` (and changes
    /// nothing) if it was already added.
    pub fn add_own(&mut self, reading: AggState) -> bool {
        if self.own_added || self.sealed {
            return false;
        }
        self.own_added = true;
        self.acc.merge(&reading);
        true
    }

    /// Adds a child's report. Returns `false` (duplicate or unexpected
    /// child, or already sealed) if the report was ignored.
    pub fn add_child(&mut self, child: NodeId, report: AggState) -> bool {
        if self.sealed {
            return false;
        }
        match self.received.get_mut(&child) {
            Some(seen @ false) => {
                *seen = true;
                self.acc.merge(&report);
                true
            }
            _ => false,
        }
    }

    /// True once every expected child has contributed (own reading is the
    /// node's responsibility and tracked separately).
    pub fn children_complete(&self) -> bool {
        self.received.values().all(|&seen| seen)
    }

    /// True if this node's reading is already folded in.
    pub fn own_added(&self) -> bool {
        self.own_added
    }

    /// Children that have not contributed yet.
    pub fn missing(&self) -> Vec<NodeId> {
        self.received
            .iter()
            .filter(|(_, &seen)| !seen)
            .map(|(&c, _)| c)
            .collect()
    }

    /// Children expected in this round.
    pub fn expected(&self) -> &[NodeId] {
        &self.expected
    }

    /// Stops accepting contributions and returns the (possibly partial)
    /// aggregate. Late reports after sealing are rejected by the `add_*`
    /// methods.
    pub fn seal(&mut self) -> AggState {
        self.sealed = true;
        self.acc
    }

    /// True if [`RoundAggregator::seal`] has been called.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Drops `child` from the expectations (parent of a failed node,
    /// §4.3). Returns `true` if the child was still pending.
    pub fn remove_child(&mut self, child: NodeId) -> bool {
        self.expected.retain(|&c| c != child);
        matches!(self.received.remove(&child), Some(false))
    }

    /// Adds a new expected child mid-round (child of a failed node that
    /// re-parented here, §4.3). No effect if already expected.
    pub fn add_expected_child(&mut self, child: NodeId) {
        if !self.received.contains_key(&child) {
            self.expected.push(child);
            self.received.insert(child, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateOp;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn complete_round_aggregates_everything() {
        let mut agg = RoundAggregator::new(&[n(1), n(2)]);
        assert!(!agg.children_complete());
        assert!(agg.add_own(AggState::from_reading(1.0)));
        assert!(agg.add_child(n(1), AggState::from_reading(2.0)));
        assert_eq!(agg.missing(), vec![n(2)]);
        assert!(agg.add_child(n(2), AggState::from_reading(3.0)));
        assert!(agg.children_complete());
        let total = agg.seal();
        assert_eq!(total.finish(AggregateOp::Sum), 6.0);
        assert_eq!(total.count(), 3);
    }

    #[test]
    fn duplicates_and_strangers_rejected() {
        let mut agg = RoundAggregator::new(&[n(1)]);
        assert!(agg.add_child(n(1), AggState::from_reading(2.0)));
        assert!(!agg.add_child(n(1), AggState::from_reading(2.0)), "dup");
        assert!(
            !agg.add_child(n(9), AggState::from_reading(5.0)),
            "stranger"
        );
        assert!(agg.add_own(AggState::from_reading(1.0)));
        assert!(!agg.add_own(AggState::from_reading(1.0)), "own dup");
        assert_eq!(agg.seal().finish(AggregateOp::Sum), 3.0);
    }

    #[test]
    fn timeout_path_partial_aggregate() {
        let mut agg = RoundAggregator::new(&[n(1), n(2), n(3)]);
        agg.add_own(AggState::from_reading(10.0));
        agg.add_child(n(2), AggState::from_reading(5.0));
        // Timeout fires: seal with 2 of 4 contributions.
        let partial = agg.seal();
        assert_eq!(partial.finish(AggregateOp::Sum), 15.0);
        assert_eq!(partial.count(), 2);
        // Late child is rejected.
        assert!(!agg.add_child(n(1), AggState::from_reading(99.0)));
        assert!(agg.is_sealed());
    }

    #[test]
    fn leaf_has_no_expectations() {
        let mut agg = RoundAggregator::new(&[]);
        assert!(agg.children_complete());
        agg.add_own(AggState::from_reading(4.0));
        assert_eq!(agg.seal().finish(AggregateOp::Avg), 4.0);
    }

    #[test]
    fn remove_child_unblocks_round() {
        let mut agg = RoundAggregator::new(&[n(1), n(2)]);
        agg.add_child(n(1), AggState::from_reading(1.0));
        assert!(!agg.children_complete());
        assert!(agg.remove_child(n(2)), "child was pending");
        assert!(agg.children_complete());
        assert!(!agg.remove_child(n(2)), "already gone");
    }

    #[test]
    fn add_expected_child_mid_round() {
        let mut agg = RoundAggregator::new(&[n(1)]);
        agg.add_child(n(1), AggState::from_reading(1.0));
        assert!(agg.children_complete());
        agg.add_expected_child(n(5));
        assert!(!agg.children_complete());
        assert!(agg.add_child(n(5), AggState::from_reading(2.0)));
        assert!(agg.children_complete());
        // Idempotent.
        agg.add_expected_child(n(5));
        assert!(agg.children_complete());
    }

    #[test]
    fn round_key_ordering() {
        let a = RoundKey {
            query: QueryId::new(1),
            round: 5,
        };
        let b = RoundKey {
            query: QueryId::new(1),
            round: 6,
        };
        assert!(a < b);
    }
}
