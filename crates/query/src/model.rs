//! The query model of §3 of the paper.
//!
//! A query is characterised by a set of sources, an aggregation function,
//! a period `P` at which sources generate data reports, and a starting
//! time (phase) `φ`. The `k`-th round of a query begins at `φ + k·P`;
//! every leaf generates a report then, and every interior node aggregates
//! its own reading with its children's reports before forwarding.

use std::collections::BTreeSet;
use std::fmt;

use essat_net::ids::NodeId;
use essat_sim::time::{SimDuration, SimTime};

use crate::aggregate::AggregateOp;

/// Identifier of a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(u32);

impl QueryId {
    /// Creates a query id.
    pub const fn new(v: u32) -> Self {
        QueryId(v)
    }

    /// Raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Which nodes respond to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSet {
    /// Every routing-tree member samples (the paper's evaluation setup).
    All,
    /// Only the listed nodes sample; others merely relay and aggregate.
    Of(BTreeSet<NodeId>),
}

impl SourceSet {
    /// True if `node` produces its own reading for this query.
    pub fn contains(&self, node: NodeId) -> bool {
        match self {
            SourceSet::All => true,
            SourceSet::Of(set) => set.contains(&node),
        }
    }

    /// Builds a listed source set from an iterator.
    pub fn of<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        SourceSet::Of(nodes.into_iter().collect())
    }
}

/// A registered periodic aggregation query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Identifier.
    pub id: QueryId,
    /// Report generation period `P`.
    pub period: SimDuration,
    /// Start time `φ` of round 0.
    pub phase: SimTime,
    /// End-to-end deadline `D` (the paper's STS sets `D = P`).
    pub deadline: SimDuration,
    /// In-network aggregation function.
    pub op: AggregateOp,
    /// Responding nodes.
    pub sources: SourceSet,
}

impl Query {
    /// Creates a query with deadline equal to its period (the paper's
    /// evaluation configuration) over all sources.
    pub fn periodic(id: QueryId, period: SimDuration, phase: SimTime, op: AggregateOp) -> Self {
        assert!(!period.is_zero(), "query period must be positive");
        Query {
            id,
            period,
            phase,
            deadline: period,
            op,
            sources: SourceSet::All,
        }
    }

    /// Builder-style override of the deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        self.deadline = deadline;
        self
    }

    /// Builder-style override of the source set.
    pub fn with_sources(mut self, sources: SourceSet) -> Self {
        self.sources = sources;
        self
    }

    /// The start of round `k`: `φ + k·P`.
    pub fn round_start(&self, k: u64) -> SimTime {
        self.phase + self.period * k
    }

    /// The round in progress at time `t` (`None` before the query
    /// starts).
    pub fn round_at(&self, t: SimTime) -> Option<u64> {
        let since = t.checked_duration_since(self.phase)?;
        Some(since.as_nanos() / self.period.as_nanos())
    }

    /// Number of complete rounds in a run that lasts until `end`.
    pub fn rounds_until(&self, end: SimTime) -> u64 {
        match end.checked_duration_since(self.phase) {
            None => 0,
            Some(d) => d.as_nanos() / self.period.as_nanos(),
        }
    }

    /// The query rate in hertz.
    pub fn rate_hz(&self) -> f64 {
        1.0 / self.period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Query {
        Query::periodic(
            QueryId::new(1),
            SimDuration::from_millis(200),
            SimTime::from_secs(3),
            AggregateOp::Sum,
        )
    }

    #[test]
    fn round_start_arithmetic() {
        let q = q();
        assert_eq!(q.round_start(0), SimTime::from_secs(3));
        assert_eq!(q.round_start(5), SimTime::from_secs(4));
        assert_eq!(q.rate_hz(), 5.0);
    }

    #[test]
    fn round_at_boundaries() {
        let q = q();
        assert_eq!(q.round_at(SimTime::from_secs(2)), None);
        assert_eq!(q.round_at(SimTime::from_secs(3)), Some(0));
        assert_eq!(
            q.round_at(SimTime::from_secs(3) + SimDuration::from_millis(199)),
            Some(0)
        );
        assert_eq!(
            q.round_at(SimTime::from_secs(3) + SimDuration::from_millis(200)),
            Some(1)
        );
    }

    #[test]
    fn rounds_until_run_end() {
        let q = q();
        assert_eq!(q.rounds_until(SimTime::from_secs(3)), 0);
        assert_eq!(q.rounds_until(SimTime::from_secs(4)), 5);
        assert_eq!(q.rounds_until(SimTime::from_secs(2)), 0);
    }

    #[test]
    fn deadline_defaults_to_period() {
        let q = q();
        assert_eq!(q.deadline, q.period);
        let q2 = q.with_deadline(SimDuration::from_millis(500));
        assert_eq!(q2.deadline, SimDuration::from_millis(500));
    }

    #[test]
    fn source_sets() {
        let all = SourceSet::All;
        assert!(all.contains(NodeId::new(7)));
        let some = SourceSet::of([NodeId::new(1), NodeId::new(2)]);
        assert!(some.contains(NodeId::new(1)));
        assert!(!some.contains(NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = Query::periodic(
            QueryId::new(0),
            SimDuration::ZERO,
            SimTime::ZERO,
            AggregateOp::Sum,
        );
    }
}
