//! In-network aggregation in the TAG style (Madden et al. \[7\]).
//!
//! Each data report carries a *partial state record* ([`AggState`]) that
//! any two nodes can merge; the final answer is extracted at the root.
//! This is what lets an interior node combine its own reading with its
//! children's reports into a single fixed-size packet — the property the
//! paper relies on ("we assume that each aggregated data report fits in a
//! single data packet").

use std::fmt;

/// The aggregation function of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    /// Sum of all source readings.
    Sum,
    /// Minimum reading.
    Min,
    /// Maximum reading.
    Max,
    /// Number of contributing sources.
    Count,
    /// Arithmetic mean of readings.
    Avg,
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateOp::Sum => "sum",
            AggregateOp::Min => "min",
            AggregateOp::Max => "max",
            AggregateOp::Count => "count",
            AggregateOp::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// A mergeable partial state record.
///
/// Carries enough for any [`AggregateOp`]; merging is commutative and
/// associative, so aggregation order (and partial aggregation after
/// timeouts) never changes the maths.
///
/// # Examples
///
/// ```
/// use essat_query::aggregate::{AggState, AggregateOp};
///
/// let mut a = AggState::from_reading(3.0);
/// let b = AggState::from_reading(5.0);
/// a.merge(&b);
/// assert_eq!(a.finish(AggregateOp::Sum), 8.0);
/// assert_eq!(a.finish(AggregateOp::Avg), 4.0);
/// assert_eq!(a.finish(AggregateOp::Count), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggState {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl AggState {
    /// The empty record (identity for [`AggState::merge`]).
    pub fn empty() -> Self {
        AggState {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A record holding a single source reading.
    ///
    /// # Panics
    ///
    /// Panics if `reading` is NaN.
    pub fn from_reading(reading: f64) -> Self {
        assert!(!reading.is_nan(), "NaN reading");
        AggState {
            sum: reading,
            count: 1,
            min: reading,
            max: reading,
        }
    }

    /// Number of source readings folded into this record.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no readings have been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &AggState) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Extracts the final answer under `op`.
    ///
    /// Empty records yield 0.0 for `Sum`/`Count`/`Avg` and the respective
    /// infinities for `Min`/`Max` (callers should check
    /// [`AggState::is_empty`] first when that matters).
    pub fn finish(&self, op: AggregateOp) -> f64 {
        match op {
            AggregateOp::Sum => self.sum,
            AggregateOp::Min => self.min,
            AggregateOp::Max => self.max,
            AggregateOp::Count => self.count as f64,
            AggregateOp::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

impl Default for AggState {
    fn default() -> Self {
        AggState::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_and_associative() {
        let readings = [4.0, -1.0, 7.5, 0.0, 2.25];
        let mut fwd = AggState::empty();
        for &r in &readings {
            fwd.merge(&AggState::from_reading(r));
        }
        let mut rev = AggState::empty();
        for &r in readings.iter().rev() {
            rev.merge(&AggState::from_reading(r));
        }
        assert_eq!(fwd, rev);
        // Associativity: ((a+b)+c) == (a+(b+c))
        let a = AggState::from_reading(1.0);
        let b = AggState::from_reading(2.0);
        let c = AggState::from_reading(3.0);
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn finishes_match_direct_computation() {
        let readings = [4.0, -1.0, 7.5, 0.0, 2.25];
        let mut s = AggState::empty();
        for &r in &readings {
            s.merge(&AggState::from_reading(r));
        }
        assert_eq!(s.finish(AggregateOp::Sum), readings.iter().sum::<f64>());
        assert_eq!(s.finish(AggregateOp::Min), -1.0);
        assert_eq!(s.finish(AggregateOp::Max), 7.5);
        assert_eq!(s.finish(AggregateOp::Count), 5.0);
        assert_eq!(
            s.finish(AggregateOp::Avg),
            readings.iter().sum::<f64>() / 5.0
        );
    }

    #[test]
    fn empty_is_identity() {
        let mut s = AggState::from_reading(9.0);
        let before = s;
        s.merge(&AggState::empty());
        assert_eq!(s, before);
        assert!(AggState::empty().is_empty());
        assert_eq!(AggState::empty().finish(AggregateOp::Avg), 0.0);
        assert_eq!(AggState::empty().finish(AggregateOp::Sum), 0.0);
    }

    #[test]
    fn single_reading_round_trip() {
        let s = AggState::from_reading(3.5);
        for op in [
            AggregateOp::Sum,
            AggregateOp::Min,
            AggregateOp::Max,
            AggregateOp::Avg,
        ] {
            assert_eq!(s.finish(op), 3.5, "{op}");
        }
        assert_eq!(s.finish(AggregateOp::Count), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(AggregateOp::Sum.to_string(), "sum");
        assert_eq!(AggregateOp::Avg.to_string(), "avg");
    }
}
