//! The aggregation routing tree.
//!
//! The paper's query service floods a setup request from the root; each
//! node picks the neighbour with the lowest level as its parent. The
//! resulting tree determines:
//!
//! * **level** — hop count from the root (down the tree);
//! * **rank** `d` — the maximum hop count from a node to any of its
//!   descendants (leaves have rank 0). STS allocates its local deadline
//!   per rank, and NTS's idle listening grows linearly with rank
//!   (paper §4.2.1);
//! * `M` — the maximum rank in the tree (the root's rank), which sets
//!   STS's local deadline `l = D / M`.
//!
//! [`RoutingTree::build`] constructs the tree deterministically
//! (lowest level, ties by lowest node id — matching the paper's rule with
//! a deterministic tie-break). [`RoutingTree::fail_node`] implements the
//! §4.3 topology-change recovery: orphaned children re-parent to the best
//! surviving neighbour, and levels/ranks are recomputed so STS can learn
//! its new ranks.
//!
//! # Examples
//!
//! ```
//! use essat_net::ids::NodeId;
//! use essat_net::topology::Topology;
//! use essat_query::tree::RoutingTree;
//!
//! let topo = Topology::line(4, 10.0, 12.0); // 0 - 1 - 2 - 3
//! let tree = RoutingTree::build(&topo, NodeId::new(0), None);
//! assert_eq!(tree.parent(NodeId::new(2)), Some(NodeId::new(1)));
//! assert_eq!(tree.rank(NodeId::new(0)), 3); // root sees depth-3 subtree
//! assert_eq!(tree.max_rank(), 3);
//! assert!(tree.is_leaf(NodeId::new(3)));
//! ```

use essat_net::ids::NodeId;
use essat_net::topology::Topology;

/// Aggregation tree rooted at the base station.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTree {
    root: NodeId,
    /// Parent per node; `None` for the root and for non-members.
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    /// Hop count from root; `None` for non-members.
    level: Vec<Option<u32>>,
    /// Max hop count to any descendant; 0 for leaves and non-members.
    rank: Vec<u32>,
    member: Vec<bool>,
    members: Vec<NodeId>,
}

impl RoutingTree {
    /// Builds the tree by BFS from `root`, restricted to nodes within
    /// `radius_limit` metres of the root when given (the paper uses
    /// 300 m).
    ///
    /// Parent selection is the paper's rule: the neighbour with the
    /// lowest level, ties broken by lowest node id.
    pub fn build(topology: &Topology, root: NodeId, radius_limit: Option<f64>) -> Self {
        let n = topology.node_count();
        let eligible: Vec<bool> = match radius_limit {
            None => vec![true; n],
            Some(r) => {
                let mut v = vec![false; n];
                for node in topology.nodes_within(root, r) {
                    v[node.index()] = true;
                }
                v
            }
        };
        assert!(eligible[root.index()], "root outside its own radius");

        let mut level: Vec<Option<u32>> = vec![None; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        level[root.index()] = Some(0);
        let mut frontier = vec![root];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                // Deterministic order: neighbours are stored sorted by id.
                for &v in topology.neighbors(u) {
                    if eligible[v.index()] && level[v.index()].is_none() {
                        level[v.index()] = Some(depth);
                        parent[v.index()] = Some(u);
                        next.push(v);
                    }
                }
            }
            // BFS visits parents in id order within a level, so the
            // lowest-id lowest-level neighbour wins ties, deterministically.
            next.sort_unstable();
            frontier = next;
        }

        let mut tree = RoutingTree {
            root,
            parent,
            children: vec![Vec::new(); n],
            level,
            rank: vec![0; n],
            member: vec![false; n],
            members: Vec::new(),
        };
        tree.rebuild_derived();
        tree
    }

    /// Recomputes children lists, membership, and ranks from the parent
    /// array + levels.
    fn rebuild_derived(&mut self) {
        let n = self.parent.len();
        for c in &mut self.children {
            c.clear();
        }
        self.members.clear();
        for i in 0..n {
            self.member[i] = self.level[i].is_some();
            if self.member[i] {
                self.members.push(NodeId::new(i as u32));
            }
            if let Some(p) = self.parent[i] {
                self.children[p.index()].push(NodeId::new(i as u32));
            }
        }
        for c in &mut self.children {
            c.sort_unstable();
        }
        // Ranks: process members deepest-level first so children are done
        // before parents.
        let mut order: Vec<NodeId> = self.members.clone();
        order.sort_unstable_by_key(|m| std::cmp::Reverse(self.level[m.index()]));
        for &u in &order {
            let r = self.children[u.index()]
                .iter()
                .map(|c| self.rank[c.index()] + 1)
                .max()
                .unwrap_or(0);
            self.rank[u.index()] = r;
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// True if `node` is part of the tree.
    pub fn is_member(&self, node: NodeId) -> bool {
        self.member[node.index()]
    }

    /// All member nodes, sorted by id.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Parent of `node` (`None` for the root or non-members).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Children of `node`, sorted by id.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Hop count from the root (`None` for non-members).
    pub fn level(&self, node: NodeId) -> Option<u32> {
        self.level[node.index()]
    }

    /// The paper's rank `d`: max hop count to any descendant; 0 for
    /// leaves.
    pub fn rank(&self, node: NodeId) -> u32 {
        self.rank[node.index()]
    }

    /// The maximum rank `M` (the root's rank).
    pub fn max_rank(&self) -> u32 {
        self.rank[self.root.index()]
    }

    /// The deepest level among members (equals [`RoutingTree::max_rank`]
    /// on any tree, since the root's rank is the height).
    pub fn max_level(&self) -> u32 {
        self.members
            .iter()
            .filter_map(|&m| self.level[m.index()])
            .max()
            .unwrap_or(0)
    }

    /// True if `node` is a member with no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.member[node.index()] && self.children[node.index()].is_empty()
    }

    /// All leaves, sorted by id.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .copied()
            .filter(|&m| self.is_leaf(m))
            .collect()
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// True if `desc` lies in the subtree rooted at `anc` (a node is its
    /// own descendant).
    pub fn is_descendant(&self, desc: NodeId, anc: NodeId) -> bool {
        let mut cur = Some(desc);
        while let Some(u) = cur {
            if u == anc {
                return true;
            }
            cur = self.parent[u.index()];
        }
        false
    }

    /// Members of the subtree rooted at `node` (including `node`).
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children[u.index()].iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Removes a failed node (§4.3 topology change). Each orphaned child
    /// re-parents to its best surviving neighbour — lowest level, ties by
    /// lowest id, never inside its own subtree. Orphans with no valid new
    /// parent leave the tree together with their subtrees. Levels and
    /// ranks are recomputed.
    ///
    /// Returns the list of nodes whose parent changed (the re-attached
    /// orphans), which the protocol layer uses to trigger its §4.3
    /// recovery actions.
    ///
    /// # Panics
    ///
    /// Panics if `failed` is the root (the paper assumes the base station
    /// survives) or not a member.
    pub fn fail_node(&mut self, topology: &Topology, failed: NodeId) -> Vec<NodeId> {
        self.fail_node_by(topology, failed, &|_, _| 1.0)
    }

    /// [`RoutingTree::fail_node`] with a caller-supplied directed
    /// link-quality estimate: each orphan's candidates are ordered by
    /// (lowest level, highest `quality(orphan, candidate)`, lowest id).
    /// With a constant quality this is exactly `fail_node` — the
    /// quality only breaks ties within a level, so the legacy (level,
    /// id) rule is the flat special case.
    ///
    /// # Panics
    ///
    /// Panics if `failed` is the root or not a member.
    pub fn fail_node_by(
        &mut self,
        topology: &Topology,
        failed: NodeId,
        quality: &dyn Fn(NodeId, NodeId) -> f64,
    ) -> Vec<NodeId> {
        assert!(failed != self.root, "cannot fail the root/base station");
        assert!(self.member[failed.index()], "{failed} is not a tree member");

        let orphans: Vec<NodeId> = self.children[failed.index()].clone();
        // Remove the failed node.
        self.level[failed.index()] = None;
        self.parent[failed.index()] = None;
        self.member[failed.index()] = false;

        let mut reattached = Vec::new();
        for orphan in orphans {
            // Candidate parents: surviving member neighbours outside the
            // orphan's own subtree.
            let mut best: Option<(u32, f64, NodeId)> = None;
            for &cand in topology.neighbors(orphan) {
                if cand == failed || !self.member[cand.index()] {
                    continue;
                }
                if self.is_descendant_via(cand, orphan, failed) {
                    continue;
                }
                if let Some(lvl) = self.level[cand.index()] {
                    let q = quality(orphan, cand);
                    // A non-finite quality is a veto (the simulator
                    // encodes "candidate is dead" as -inf): skip, don't
                    // merely deprioritise — level dominates the order.
                    if !q.is_finite() {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((bl, bq, bid)) => {
                            lvl < bl || (lvl == bl && (q > bq || (q == bq && cand < bid)))
                        }
                    };
                    if better {
                        best = Some((lvl, q, cand));
                    }
                }
            }
            match best {
                Some((_, _, new_parent)) => {
                    self.parent[orphan.index()] = Some(new_parent);
                    reattached.push(orphan);
                }
                None => {
                    // Orphan subtree drops out of the tree.
                    self.drop_subtree(orphan);
                }
            }
        }

        self.recompute_levels();
        self.rebuild_derived();
        reattached
    }

    /// Re-admits a recovered node (scenario churn: failure *and*
    /// recovery). The node attaches as a leaf under its best member
    /// neighbour — lowest level, ties by lowest id, the same rule
    /// [`RoutingTree::build`] uses — and levels/ranks are recomputed.
    ///
    /// Returns the new parent, or `None` if no member neighbour is in
    /// range (the node stays outside the tree; a later recovery of a
    /// bridging node may let it back in). Idempotent: rejoining a
    /// current member returns its existing parent unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root (the base station never leaves the
    /// tree).
    pub fn rejoin_node(&mut self, topology: &Topology, node: NodeId) -> Option<NodeId> {
        assert!(node != self.root, "the root never leaves the tree");
        if self.member[node.index()] {
            return self.parent[node.index()];
        }
        let mut best: Option<(u32, NodeId)> = None;
        for &cand in topology.neighbors(node) {
            if !self.member[cand.index()] {
                continue;
            }
            if let Some(lvl) = self.level[cand.index()] {
                let key = (lvl, cand);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        let (_, new_parent) = best?;
        self.parent[node.index()] = Some(new_parent);
        self.recompute_levels();
        self.rebuild_derived();
        Some(new_parent)
    }

    /// Moves a live member — together with its entire subtree — under a
    /// new parent (§4.3 self-healing: the node detected its current
    /// parent failed or degraded). Candidates are member neighbours
    /// outside the node's own subtree and distinct from its current
    /// parent; the best is chosen by lowest level, then highest
    /// `quality(node, candidate)` (the caller's directed link-quality
    /// estimate), then lowest id. Levels and ranks are recomputed so the
    /// moved subtree learns its new depths.
    ///
    /// Returns the new parent, or `None` when no valid candidate exists
    /// (the node keeps its current parent; the caller retries later with
    /// backoff).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or not a member.
    pub fn reparent(
        &mut self,
        topology: &Topology,
        node: NodeId,
        quality: &dyn Fn(NodeId, NodeId) -> f64,
    ) -> Option<NodeId> {
        assert!(node != self.root, "the root never re-parents");
        assert!(self.member[node.index()], "{node} is not a tree member");
        let old_parent = self.parent[node.index()];
        let mut best: Option<(u32, f64, NodeId)> = None;
        for &cand in topology.neighbors(node) {
            if !self.member[cand.index()] || Some(cand) == old_parent {
                continue;
            }
            // Acyclicity: never attach under one's own descendant.
            if self.is_descendant(cand, node) {
                continue;
            }
            let Some(lvl) = self.level[cand.index()] else {
                continue;
            };
            let q = quality(node, cand);
            // Non-finite quality is a veto (see `fail_node_by`).
            if !q.is_finite() {
                continue;
            }
            let better = match best {
                None => true,
                Some((bl, bq, bid)) => {
                    lvl < bl || (lvl == bl && (q > bq || (q == bq && cand < bid)))
                }
            };
            if better {
                best = Some((lvl, q, cand));
            }
        }
        let (_, _, new_parent) = best?;
        self.parent[node.index()] = Some(new_parent);
        self.recompute_levels();
        self.rebuild_derived();
        Some(new_parent)
    }

    /// Re-admits an orphaned (non-member, still alive) node under its
    /// best member neighbour — lowest level, then highest
    /// `quality(orphan, candidate)`, then lowest id. The link-quality
    /// tie-break is what distinguishes this from
    /// [`RoutingTree::rejoin_node`]: a recovering network prefers the
    /// parent it can actually talk to. Idempotent: adopting a current
    /// member returns its existing parent and changes nothing.
    ///
    /// Returns the new parent, or `None` when no member neighbour is in
    /// range (a later adoption of a bridging node may let it back in —
    /// callers sweep orphans to fixpoint for exactly this reason).
    ///
    /// # Panics
    ///
    /// Panics if `orphan` is the root.
    pub fn adopt_orphan(
        &mut self,
        topology: &Topology,
        orphan: NodeId,
        quality: &dyn Fn(NodeId, NodeId) -> f64,
    ) -> Option<NodeId> {
        assert!(orphan != self.root, "the root never leaves the tree");
        if self.member[orphan.index()] {
            return self.parent[orphan.index()];
        }
        let mut best: Option<(u32, f64, NodeId)> = None;
        for &cand in topology.neighbors(orphan) {
            if !self.member[cand.index()] {
                continue;
            }
            let Some(lvl) = self.level[cand.index()] else {
                continue;
            };
            let q = quality(orphan, cand);
            // Non-finite quality is a veto (see `fail_node_by`).
            if !q.is_finite() {
                continue;
            }
            let better = match best {
                None => true,
                Some((bl, bq, bid)) => {
                    lvl < bl || (lvl == bl && (q > bq || (q == bq && cand < bid)))
                }
            };
            if better {
                best = Some((lvl, q, cand));
            }
        }
        let (_, _, new_parent) = best?;
        self.parent[orphan.index()] = Some(new_parent);
        self.recompute_levels();
        self.rebuild_derived();
        Some(new_parent)
    }

    /// `is_descendant` that tolerates the broken parent pointers present
    /// mid-failure (stops at `failed`).
    fn is_descendant_via(&self, desc: NodeId, anc: NodeId, failed: NodeId) -> bool {
        let mut cur = Some(desc);
        while let Some(u) = cur {
            if u == anc {
                return true;
            }
            if u == failed {
                return false;
            }
            cur = self.parent[u.index()];
        }
        false
    }

    fn drop_subtree(&mut self, node: NodeId) {
        let mut stack = vec![node];
        while let Some(u) = stack.pop() {
            self.level[u.index()] = None;
            self.parent[u.index()] = None;
            self.member[u.index()] = false;
            stack.extend(self.children[u.index()].iter().copied());
        }
    }

    /// Recomputes levels by walking tree edges from the root (parent
    /// pointers are authoritative).
    fn recompute_levels(&mut self) {
        let n = self.parent.len();
        // children-from-parents, transient.
        let mut kids: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for i in 0..n {
            if let Some(p) = self.parent[i] {
                kids[p.index()].push(NodeId::new(i as u32));
            }
        }
        for l in &mut self.level {
            *l = None;
        }
        self.level[self.root.index()] = Some(0);
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            let lvl = self.level[u.index()].expect("visited");
            for &c in &kids[u.index()] {
                self.level[c.index()] = Some(lvl + 1);
                stack.push(c);
            }
        }
        // Anything unreachable from the root is no longer a member.
        for i in 0..n {
            if self.level[i].is_none() {
                self.parent[i] = None;
                self.member[i] = false;
            }
        }
    }

    /// Exhaustive structural validation; used by tests and debug builds.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        assert!(self.member[self.root.index()], "root must be a member");
        assert_eq!(self.level[self.root.index()], Some(0), "root level 0");
        assert!(
            self.parent[self.root.index()].is_none(),
            "root has no parent"
        );
        for &m in &self.members {
            let i = m.index();
            assert!(self.member[i]);
            let lvl = self.level[i].expect("member has a level");
            if m != self.root {
                let p = self.parent[i].expect("non-root member has a parent");
                assert!(self.member[p.index()], "parent {p} of {m} is a member");
                assert_eq!(
                    self.level[p.index()].map(|l| l + 1),
                    Some(lvl),
                    "level({m}) = level(parent)+1"
                );
                assert!(
                    self.children[p.index()].contains(&m),
                    "{m} listed among {p}'s children"
                );
            }
            // Rank definition check.
            let expect = self.children[i]
                .iter()
                .map(|c| self.rank[c.index()] + 1)
                .max()
                .unwrap_or(0);
            assert_eq!(self.rank[i], expect, "rank({m})");
            // Acyclicity: walking parents reaches the root.
            assert!(self.is_descendant(m, self.root), "{m} reaches root");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn line_tree_structure() {
        let topo = Topology::line(5, 10.0, 12.0);
        let tree = RoutingTree::build(&topo, n(0), None);
        tree.check_invariants();
        assert_eq!(tree.member_count(), 5);
        assert_eq!(tree.level(n(3)), Some(3));
        assert_eq!(tree.rank(n(0)), 4);
        assert_eq!(tree.rank(n(4)), 0);
        assert_eq!(tree.rank(n(2)), 2);
        assert_eq!(tree.max_rank(), 4);
        assert_eq!(tree.leaves(), vec![n(4)]);
        assert_eq!(tree.children(n(1)), &[n(2)]);
    }

    #[test]
    fn grid_tree_parent_rule_is_deterministic() {
        let topo = Topology::grid(3, 3, 10.0, 10.5);
        let a = RoutingTree::build(&topo, n(4), None);
        let b = RoutingTree::build(&topo, n(4), None);
        assert_eq!(a, b);
        a.check_invariants();
        // Node 0 (corner) has neighbours 1 and 3, both level 1; the
        // tie-break picks the lower id via BFS order.
        assert_eq!(a.parent(n(0)), Some(n(1)));
    }

    #[test]
    fn radius_limit_excludes_far_nodes() {
        let topo = Topology::line(5, 10.0, 12.0);
        let tree = RoutingTree::build(&topo, n(0), Some(25.0));
        tree.check_invariants();
        assert_eq!(tree.member_count(), 3);
        assert!(!tree.is_member(n(3)));
        assert!(!tree.is_member(n(4)));
        assert_eq!(tree.max_rank(), 2);
    }

    #[test]
    fn subtree_and_descendants() {
        let topo = Topology::line(4, 10.0, 12.0);
        let tree = RoutingTree::build(&topo, n(0), None);
        assert_eq!(tree.subtree(n(1)), vec![n(1), n(2), n(3)]);
        assert!(tree.is_descendant(n(3), n(1)));
        assert!(tree.is_descendant(n(1), n(1)));
        assert!(!tree.is_descendant(n(1), n(3)));
    }

    #[test]
    fn fail_interior_node_reattaches_children() {
        // Diamond: 0 at root; 1 and 2 both level 1; 3 connected to both 1
        // and 2 at level 2.
        let topo = Topology::grid(2, 2, 10.0, 10.5); // 0-1 / 2-3 square
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.check_invariants();
        // 3's parent is 1 (lowest id of the two level-1 neighbours).
        assert_eq!(tree.parent(n(3)), Some(n(1)));
        let moved = tree.fail_node(&topo, n(1));
        tree.check_invariants();
        assert_eq!(moved, vec![n(3)]);
        assert_eq!(tree.parent(n(3)), Some(n(2)), "re-parented to survivor");
        assert!(!tree.is_member(n(1)));
        assert_eq!(tree.member_count(), 3);
    }

    #[test]
    fn fail_node_drops_disconnected_subtree() {
        let topo = Topology::line(4, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        let moved = tree.fail_node(&topo, n(1));
        tree.check_invariants();
        assert!(moved.is_empty());
        // 2 and 3 can no longer reach the root.
        assert!(!tree.is_member(n(2)));
        assert!(!tree.is_member(n(3)));
        assert_eq!(tree.member_count(), 1);
        assert_eq!(tree.max_rank(), 0);
    }

    #[test]
    fn fail_leaf_shrinks_ranks() {
        let topo = Topology::line(3, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        assert_eq!(tree.max_rank(), 2);
        let moved = tree.fail_node(&topo, n(2));
        assert!(moved.is_empty());
        tree.check_invariants();
        assert_eq!(tree.max_rank(), 1);
        assert!(tree.is_leaf(n(1)));
    }

    #[test]
    fn reparenting_never_creates_cycles() {
        // Star-of-line: 0 - 1 - 2, and 2 - 3 where 3 also hears 2 only.
        // Failing 1 leaves 2,3 with no path: both drop.
        let topo = Topology::line(4, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.fail_node(&topo, n(1));
        tree.check_invariants();
    }

    #[test]
    fn rejoin_after_failure_restores_membership() {
        let topo = Topology::line(3, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.fail_node(&topo, n(2));
        assert!(!tree.is_member(n(2)));
        let parent = tree.rejoin_node(&topo, n(2));
        tree.check_invariants();
        assert_eq!(parent, Some(n(1)));
        assert!(tree.is_member(n(2)));
        assert_eq!(tree.level(n(2)), Some(2));
        assert_eq!(tree.max_rank(), 2, "ranks recomputed on rejoin");
    }

    #[test]
    fn rejoin_picks_lowest_level_then_lowest_id() {
        // 2x2 grid rooted at 0: failing 3 then rejoining must pick 1
        // (level 1, lower id than 2).
        let topo = Topology::grid(2, 2, 10.0, 10.5);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.fail_node(&topo, n(3));
        let parent = tree.rejoin_node(&topo, n(3));
        tree.check_invariants();
        assert_eq!(parent, Some(n(1)));
    }

    #[test]
    fn rejoin_without_reachable_member_stays_out() {
        // Failing 1 on a line disconnects 2 and 3; 3 cannot rejoin (its
        // only neighbour, 2, is not a member), and the call is a no-op.
        let topo = Topology::line(4, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.fail_node(&topo, n(1));
        assert_eq!(tree.rejoin_node(&topo, n(3)), None);
        tree.check_invariants();
        assert!(!tree.is_member(n(3)));
        // Rejoining 1 re-admits it; then 2, then 3 can chain back in.
        assert_eq!(tree.rejoin_node(&topo, n(1)), Some(n(0)));
        assert_eq!(tree.rejoin_node(&topo, n(2)), Some(n(1)));
        assert_eq!(tree.rejoin_node(&topo, n(3)), Some(n(2)));
        tree.check_invariants();
        assert_eq!(tree.member_count(), 4);
    }

    #[test]
    fn rejoin_of_member_is_idempotent() {
        let topo = Topology::line(3, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        let before = tree.clone();
        assert_eq!(tree.rejoin_node(&topo, n(2)), Some(n(1)));
        assert_eq!(tree, before);
    }

    /// Neutral quality: every link scores the same, so selection falls
    /// back to (level, id) — the original §4.3 rule.
    fn flat(_: NodeId, _: NodeId) -> f64 {
        1.0
    }

    #[test]
    fn reparent_moves_whole_subtree() {
        // 3x3 grid rooted at 0. Node 4 (level 2, parent 1) has child 7;
        // its candidates are 3 (level 1) and 5 (level 2) — 1 is the
        // current parent and 7 its own descendant. Lowest level wins:
        // the subtree (4, 7) moves under 3 and levels are recomputed.
        let topo = Topology::grid(3, 3, 10.0, 10.5);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        assert_eq!(tree.parent(n(4)), Some(n(1)));
        assert_eq!(tree.parent(n(7)), Some(n(4)));
        let new_parent = tree.reparent(&topo, n(4), &flat);
        tree.check_invariants();
        assert_eq!(new_parent, Some(n(3)), "lowest-level candidate");
        assert_eq!(tree.parent(n(7)), Some(n(4)), "subtree intact");
        assert_eq!(tree.level(n(4)), Some(2));
        assert_eq!(tree.level(n(7)), Some(3), "subtree levels recomputed");
    }

    #[test]
    fn reparent_prefers_link_quality_within_a_level() {
        // 2x2 grid rooted at 0: node 3 hears 1 and 2, both level 1.
        // Flat quality picks 1 (lowest id); degrading 3->1 flips the
        // choice to 2.
        let topo = Topology::grid(2, 2, 10.0, 10.5);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        assert_eq!(tree.parent(n(3)), Some(n(1)));
        // Current parent (1) is excluded, so flat quality moves 3 to 2.
        assert_eq!(tree.reparent(&topo, n(3), &flat), Some(n(2)));
        // Now the current parent is 2; quality says 2 is great and 1 is
        // terrible — but 2 is excluded as the current parent, so 1 wins
        // by being the only candidate.
        let q = |_c: NodeId, p: NodeId| if p == n(1) { 0.1 } else { 0.9 };
        assert_eq!(tree.reparent(&topo, n(3), &q), Some(n(1)));
        tree.check_invariants();
    }

    #[test]
    fn reparent_never_attaches_into_own_subtree() {
        // Line 0-1-2-3: node 1's only non-parent neighbour is its own
        // child 2 — no valid candidate, tree unchanged.
        let topo = Topology::line(4, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        let before = tree.clone();
        assert_eq!(tree.reparent(&topo, n(1), &flat), None);
        assert_eq!(tree, before);
        tree.check_invariants();
    }

    #[test]
    fn adopt_orphan_uses_quality_and_is_idempotent() {
        let topo = Topology::grid(2, 2, 10.0, 10.5);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.fail_node(&topo, n(3));
        assert!(!tree.is_member(n(3)));
        // Both 1 and 2 are level-1 members; quality prefers 2.
        let q = |_c: NodeId, p: NodeId| if p == n(2) { 0.9 } else { 0.2 };
        assert_eq!(tree.adopt_orphan(&topo, n(3), &q), Some(n(2)));
        tree.check_invariants();
        assert!(tree.is_member(n(3)));
        // Idempotent: adopting a member returns its parent, unchanged.
        let before = tree.clone();
        assert_eq!(tree.adopt_orphan(&topo, n(3), &q), Some(n(2)));
        assert_eq!(tree, before);
    }

    #[test]
    fn adoption_sweep_recovers_partition() {
        // Failing 1 on a line drops 2 and 3. Sweeping adopt_orphan in id
        // order until fixpoint chains the whole partition back once 1
        // recovers.
        let topo = Topology::line(4, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.fail_node(&topo, n(1));
        assert_eq!(tree.member_count(), 1);
        assert_eq!(tree.adopt_orphan(&topo, n(3), &flat), None, "no bridge yet");
        assert_eq!(tree.adopt_orphan(&topo, n(1), &flat), Some(n(0)));
        assert_eq!(tree.adopt_orphan(&topo, n(2), &flat), Some(n(1)));
        assert_eq!(tree.adopt_orphan(&topo, n(3), &flat), Some(n(2)));
        tree.check_invariants();
        assert_eq!(tree.member_count(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot fail the root")]
    fn failing_root_rejected() {
        let topo = Topology::line(2, 10.0, 12.0);
        let mut tree = RoutingTree::build(&topo, n(0), None);
        tree.fail_node(&topo, n(0));
    }

    #[test]
    fn paper_scale_tree_is_valid() {
        use essat_sim::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(2024);
        let topo = Topology::random_paper(&mut rng);
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, Some(300.0));
        tree.check_invariants();
        assert!(tree.member_count() > 40, "most of 80 nodes join");
        assert!(tree.max_rank() >= 2);
        // Every member is within 300 m of the root.
        for &m in tree.members() {
            assert!(topo.position(m).distance_to(topo.position(root)) <= 300.0);
        }
    }
}
