//! # essat-query — periodic queries, aggregation, and routing trees
//!
//! The generic query service of the paper's §3: a user registers a query
//! `(sources, aggregation op, period P, phase φ)`; the service builds a
//! routing tree rooted at the base station; every period each leaf
//! generates a data report and every interior node merges its children's
//! reports with its own reading before forwarding one aggregated report.
//!
//! * [`model`] — [`model::Query`] and round arithmetic (`φ + k·P`).
//! * [`aggregate`] — TAG-style mergeable partial state records.
//! * [`tree`] — routing-tree construction (lowest-level parent rule),
//!   ranks (`d`, the driver of STS's pipeline and NTS's cost), and §4.3
//!   failure recovery with re-parenting.
//! * [`round`] — per-round collection state with timeout/partial
//!   aggregation support.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod model;
pub mod round;
pub mod tree;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aggregate::{AggState, AggregateOp};
    pub use crate::model::{Query, QueryId, SourceSet};
    pub use crate::round::{RoundAggregator, RoundKey};
    pub use crate::tree::RoutingTree;
}
