//! End-to-end smoke tests: every protocol runs, produces sane metrics,
//! and the paper's qualitative orderings hold at reduced scale.

use essat_sim::time::SimDuration;
use essat_wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat_wsn::runner;

fn quick(protocol: Protocol, rate: f64, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(rate), seed);
    cfg.duration = SimDuration::from_secs(30);
    cfg
}

#[test]
fn every_protocol_completes_rounds() {
    for protocol in [
        Protocol::NtsSs,
        Protocol::StsSs,
        Protocol::DtsSs,
        Protocol::Sync,
        Protocol::Psm,
        Protocol::Span,
        Protocol::AlwaysOn,
    ] {
        let r = runner::run_one(&quick(protocol, 1.0, 42));
        let rounds: u64 = r.queries.iter().map(|q| q.rounds_completed).sum();
        assert!(rounds > 10, "{protocol}: only {rounds} rounds completed");
        let duty = r.avg_duty_cycle_pct();
        assert!(
            (0.0..=100.0).contains(&duty),
            "{protocol}: duty {duty} out of range"
        );
        let lat = r.avg_latency_s();
        assert!(
            (0.0..10.0).contains(&lat),
            "{protocol}: implausible latency {lat}"
        );
        eprintln!(
            "{protocol:>9}: duty {:5.1}%  latency {:7.4}s  delivery {:4.2}  rounds {rounds}  events {}",
            duty,
            lat,
            r.delivery_ratio(),
            r.events_processed,
        );
    }
}

#[test]
fn essat_beats_baselines_on_energy() {
    let dts = runner::run_one(&quick(Protocol::DtsSs, 1.0, 7));
    let span = runner::run_one(&quick(Protocol::Span, 1.0, 7));
    let psm = runner::run_one(&quick(Protocol::Psm, 1.0, 7));
    assert!(
        dts.avg_duty_cycle_pct() < span.avg_duty_cycle_pct(),
        "DTS-SS {} >= SPAN {}",
        dts.avg_duty_cycle_pct(),
        span.avg_duty_cycle_pct()
    );
    assert!(
        dts.avg_duty_cycle_pct() < psm.avg_duty_cycle_pct(),
        "DTS-SS {} >= PSM {}",
        dts.avg_duty_cycle_pct(),
        psm.avg_duty_cycle_pct()
    );
}

#[test]
fn essat_beats_sync_psm_on_latency() {
    let dts = runner::run_one(&quick(Protocol::DtsSs, 1.0, 7));
    let sync = runner::run_one(&quick(Protocol::Sync, 1.0, 7));
    let psm = runner::run_one(&quick(Protocol::Psm, 1.0, 7));
    assert!(
        dts.avg_latency_s() < sync.avg_latency_s(),
        "DTS-SS {} >= SYNC {}",
        dts.avg_latency_s(),
        sync.avg_latency_s()
    );
    assert!(
        dts.avg_latency_s() < psm.avg_latency_s(),
        "DTS-SS {} >= PSM {}",
        dts.avg_latency_s(),
        psm.avg_latency_s()
    );
}

#[test]
fn determinism_same_seed_same_metrics() {
    let a = runner::run_one(&quick(Protocol::DtsSs, 2.0, 11));
    let b = runner::run_one(&quick(Protocol::DtsSs, 2.0, 11));
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.avg_duty_cycle_pct(), b.avg_duty_cycle_pct());
    assert_eq!(a.avg_latency_s(), b.avg_latency_s());
    assert_eq!(a.reports_sent, b.reports_sent);
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        assert_eq!(qa.rounds_completed, qb.rounds_completed);
        assert_eq!(qa.latency.mean(), qb.latency.mean());
    }
}

#[test]
fn different_seeds_differ() {
    let a = runner::run_one(&quick(Protocol::DtsSs, 2.0, 1));
    let b = runner::run_one(&quick(Protocol::DtsSs, 2.0, 2));
    assert_ne!(
        a.events_processed, b.events_processed,
        "different topologies should not coincide"
    );
}

#[test]
fn delivery_is_high_on_clean_channel() {
    for protocol in [Protocol::NtsSs, Protocol::StsSs, Protocol::DtsSs] {
        let r = runner::run_one(&quick(protocol, 1.0, 21));
        assert!(
            r.delivery_ratio() > 0.9,
            "{protocol}: delivery {} too low on a clean channel",
            r.delivery_ratio()
        );
    }
}
