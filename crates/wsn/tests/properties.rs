//! Property-based tests over whole simulations (small worlds, few
//! cases — each case is a full run).

use proptest::prelude::*;

use essat_sim::time::SimDuration;
use essat_wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat_wsn::runner;

fn tiny(protocol: Protocol, rate: f64, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(rate), seed);
    cfg.nodes = 18;
    cfg.area_side = 260.0;
    cfg.duration = SimDuration::from_secs(12);
    cfg
}

fn any_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::NtsSs),
        Just(Protocol::StsSs),
        Just(Protocol::DtsSs),
        Just(Protocol::Sync),
        Just(Protocol::Psm),
        Just(Protocol::Span),
        Just(Protocol::TagSs),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same config ⇒ bit-identical metrics, for any protocol and seed.
    #[test]
    fn runs_are_deterministic(protocol in any_protocol(), seed in 0u64..1_000, rate in 1u64..4) {
        let cfg = tiny(protocol, rate as f64, seed);
        let a = runner::run_one(&cfg);
        let b = runner::run_one(&cfg);
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(a.avg_duty_cycle_pct(), b.avg_duty_cycle_pct());
        prop_assert_eq!(a.avg_latency_s(), b.avg_latency_s());
        prop_assert_eq!(a.reports_sent, b.reports_sent);
    }

    /// Every run produces well-formed metrics: bounded duty cycles and
    /// delivery ratios, non-negative latencies, consistent counters.
    #[test]
    fn metrics_are_well_formed(protocol in any_protocol(), seed in 0u64..1_000) {
        let r = runner::run_one(&tiny(protocol, 2.0, seed));
        for n in &r.nodes {
            prop_assert!((0.0..=1.0).contains(&n.duty_cycle));
            prop_assert!(n.energy_j >= 0.0);
        }
        let d = r.delivery_ratio();
        prop_assert!((0.0..=1.0).contains(&d), "delivery {d}");
        prop_assert!(r.avg_latency_s() >= 0.0);
        for q in &r.queries {
            prop_assert!(q.rounds_full <= q.rounds_completed);
            prop_assert!(q.delivered_readings <= q.expected_readings);
            prop_assert_eq!(q.records.len() as u64, q.rounds_completed);
            for rec in &q.records {
                prop_assert!(rec.latency_s >= 0.0);
                prop_assert!(rec.at >= r.measured_from || rec.at <= r.measured_until);
            }
        }
        // MAC counters are internally consistent.
        prop_assert!(r.mac.delivered + r.mac.failed <= r.mac.enqueued + r.mac.retries);
    }
}
