//! Scenario engine integration: bursty links, battery lifetime, churn
//! recovery, and traffic phases, driven through full simulation runs.

use essat_scenario::presets;
use essat_scenario::spec::{
    BatterySpec, ChurnSpec, ChurnStep, Scenario, ScenarioSpec, TrafficPhase,
};
use essat_sim::time::{SimDuration, SimTime};
use essat_wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat_wsn::runner;

fn cfg(protocol: Protocol, seed: u64, secs: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
    cfg.duration = SimDuration::from_secs(secs);
    cfg
}

#[test]
fn bursty_links_inject_bursty_loss() {
    let base = cfg(Protocol::DtsSs, 11, 30);
    let steady = runner::run_one(&base);
    let bursty = runner::run_one(
        &base
            .clone()
            .with_scenario(Scenario::Spec(presets::bursty_links())),
    );
    assert!(
        bursty.delivery_ratio() < steady.delivery_ratio(),
        "bursty links must lose readings: bursty {} vs steady {}",
        bursty.delivery_ratio(),
        steady.delivery_ratio()
    );
    // Loss shows up as MAC retries/failures, not as vanished traffic.
    assert!(bursty.mac.retries > steady.mac.retries);
}

#[test]
fn energy_drain_kills_always_on_first_and_marks_lifetime() {
    let secs = 30;
    let scen = || Scenario::Spec(presets::energy_drain(SimDuration::from_secs(secs)));
    let always_on = runner::run_one(&cfg(Protocol::AlwaysOn, 21, secs).with_scenario(scen()));
    let dts = runner::run_one(&cfg(Protocol::DtsSs, 21, secs).with_scenario(scen()));
    let end = SimTime::from_secs(secs);

    // Always-on burns 45 mW continuously: the 35%-of-run battery dies
    // at ~35% of the run, and with every node dying the network
    // partitions.
    let ao = &always_on.lifetime;
    assert!(!ao.deaths.is_empty(), "always-on must deplete");
    let ttfd = ao.time_to_first_death(end);
    assert!(
        ttfd < SimTime::from_secs(secs / 2),
        "always-on first death at {ttfd}"
    );
    assert!(ao.partition.is_some(), "all nodes dying must partition");

    // DTS sleeps most of the time: it must outlive always-on.
    assert!(
        dts.lifetime.time_to_first_death(end) > ttfd,
        "DTS-SS ({}) must outlive ALWAYS-ON ({ttfd})",
        dts.lifetime.time_to_first_death(end)
    );
}

#[test]
fn churn_recovers_nodes_and_counts_recoveries() {
    let base = cfg(Protocol::DtsSs, 31, 40);
    let run = base.duration;
    let r = runner::run_one(&base.with_scenario(Scenario::Spec(presets::churn(run))));
    assert!(!r.lifetime.deaths.is_empty(), "churn must fail nodes");
    assert!(r.lifetime.recoveries > 0, "churn must revive nodes");
    // The network keeps answering queries through the churn.
    assert!(r.queries.iter().all(|q| q.rounds_completed > 0));
    assert!(
        r.delivery_ratio() > 0.5,
        "churn should not collapse delivery"
    );
}

#[test]
fn scripted_churn_step_down_and_up() {
    // Kill one specific node and bring it back; the run must record
    // exactly that death and that recovery.
    let mut spec = ScenarioSpec::named("one_blip");
    spec.churn = Some(ChurnSpec::Scripted(vec![
        ChurnStep {
            at: SimTime::from_secs(10),
            node: 5,
            up: false,
        },
        ChurnStep {
            at: SimTime::from_secs(18),
            node: 5,
            up: true,
        },
    ]));
    let r = runner::run_one(&cfg(Protocol::NtsSs, 41, 30).with_scenario(Scenario::Spec(spec)));
    assert_eq!(r.lifetime.recoveries, 1);
    let member_deaths = r.lifetime.deaths.len();
    assert!(member_deaths <= 1, "only node 5 was scripted");
    if member_deaths == 1 {
        assert_eq!(r.lifetime.deaths[0].0, SimTime::from_secs(10));
        assert_eq!(r.lifetime.first_death, Some(SimTime::from_secs(10)));
    }
}

#[test]
fn quiet_traffic_phase_decimates_rounds() {
    let base = cfg(Protocol::DtsSs, 51, 30);
    let full = runner::run_one(&base);
    let mut spec = ScenarioSpec::named("quarter");
    spec.traffic = vec![TrafficPhase {
        from: SimTime::ZERO,
        rate_scale: 0.25,
    }];
    let quiet = runner::run_one(&base.clone().with_scenario(Scenario::Spec(spec)));
    let full_rounds: u64 = full.queries.iter().map(|q| q.rounds_completed).sum();
    let quiet_rounds: u64 = quiet.queries.iter().map(|q| q.rounds_completed).sum();
    let ratio = quiet_rounds as f64 / full_rounds as f64;
    assert!(
        (0.15..=0.35).contains(&ratio),
        "quarter-rate phase should complete ~25% of rounds, got {ratio:.2} \
         ({quiet_rounds}/{full_rounds})"
    );
    // Decimated rounds that do run still deliver everything.
    assert!(quiet.delivery_ratio() > 0.95);
    // Less traffic must not cost energy: the duty cycle may only drop.
    assert!(quiet.avg_duty_cycle_pct() <= full.avg_duty_cycle_pct() * 1.05);
}

#[test]
fn diurnal_preset_runs_all_essat_protocols() {
    for protocol in Protocol::essat_set() {
        let base = cfg(protocol, 61, 24);
        let run = base.duration;
        let r = runner::run_one(&base.with_scenario(Scenario::Spec(presets::diurnal(run))));
        assert!(
            r.queries.iter().any(|q| q.rounds_completed > 0),
            "{protocol}: diurnal run answered no rounds"
        );
        assert!(
            (0.0..=100.0).contains(&r.avg_duty_cycle_pct()),
            "{protocol}"
        );
    }
}

#[test]
fn battery_depletion_is_gradual_not_instant() {
    // A battery big enough for the whole run changes nothing. Repair
    // is pinned off on both arms: a battery model counts as
    // fault-possible (depletion deaths are faults), so it would
    // activate the self-healing layer on the battery arm only and the
    // two runs would no longer be comparable — this test is about the
    // battery machinery, not repair.
    let mut spec = ScenarioSpec::named("huge_battery");
    spec.battery = Some(BatterySpec {
        capacity_j: 1e6,
        check_period: SimDuration::from_millis(500),
    });
    let base =
        cfg(Protocol::DtsSs, 71, 20).with_repair(essat_wsn::config::RepairConfig::disabled());
    let plain = runner::run_one(&base);
    let batt = runner::run_one(&base.clone().with_scenario(Scenario::Spec(spec)));
    assert!(batt.lifetime.deaths.is_empty());
    assert_eq!(plain.avg_duty_cycle_pct(), batt.avg_duty_cycle_pct());
    assert_eq!(plain.events_processed + count_battery_checks(20, 500), {
        batt.events_processed
    });
}

fn count_battery_checks(secs: u64, period_ms: u64) -> u64 {
    // Checks fire at period, 2·period, … strictly before run end.
    (secs * 1000).div_ceil(period_ms) - 1
}

#[test]
fn scenario_runs_are_deterministic() {
    let mk = || {
        let base = cfg(Protocol::StsSs, 81, 25);
        let run = base.duration;
        let mut spec = presets::churn(run);
        spec.link = presets::bursty_links().link;
        base.with_scenario(Scenario::Spec(spec))
    };
    let a = runner::run_one(&mk());
    let b = runner::run_one(&mk());
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.avg_duty_cycle_pct(), b.avg_duty_cycle_pct());
    assert_eq!(a.avg_latency_s(), b.avg_latency_s());
    assert_eq!(a.lifetime, b.lifetime);
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        assert_eq!(qa.records, qb.records);
    }
}

#[test]
fn trace_replay_reproduces_live_run_exactly() {
    let base = cfg(Protocol::DtsSs, 91, 25);
    let run = base.duration;
    let mut spec = presets::churn(run);
    spec.link = presets::bursty_links().link;
    spec.traffic = presets::diurnal(run).traffic;
    let live_cfg = base.clone().with_scenario(Scenario::Spec(spec.clone()));

    // Record: compile exactly as the run will and serialise the trace.
    let compiled = spec.compile(
        base.nodes,
        {
            let (world, _) = essat_wsn::sim::World::new(live_cfg.clone());
            world.tree().root().as_u32()
        },
        base.duration,
        base.seed,
    );
    let trace = compiled.to_trace();

    // Replay: the trace-driven run must match the live run exactly.
    let live = runner::run_one(&live_cfg);
    let replay_cfg = base.with_scenario(Scenario::Trace(trace));
    let replayed = runner::run_one(&replay_cfg);
    assert_eq!(live.events_processed, replayed.events_processed);
    assert_eq!(live.avg_duty_cycle_pct(), replayed.avg_duty_cycle_pct());
    assert_eq!(live.avg_latency_s(), replayed.avg_latency_s());
    assert_eq!(live.delivery_ratio(), replayed.delivery_ratio());
    assert_eq!(live.lifetime, replayed.lifetime);
    for (ql, qr) in live.queries.iter().zip(&replayed.queries) {
        assert_eq!(ql.records, qr.records);
    }
    for (nl, nr) in live.nodes.iter().zip(&replayed.nodes) {
        assert_eq!(nl.duty_cycle, nr.duty_cycle);
        assert_eq!(nl.energy_j, nr.energy_j);
    }
}
