//! # essat-wsn — the integrated sensor-network simulator
//!
//! Composes the substrates into runnable experiments:
//!
//! * [`payload`] — upper-layer packet contents (reports with DTS phase
//!   piggybacks, phase-update requests, ATIMs, query floods).
//! * [`config`] — the paper's §5 experimental setup as data
//!   ([`config::ExperimentConfig::paper`]) plus a reduced
//!   [`config::ExperimentConfig::quick`] scale for tests and benches.
//! * [`protocol`] — the protocol catalogue: naming (display/parse) and
//!   the [`protocol::Protocol::build_policy`] factory, the one place a
//!   protocol choice becomes behaviour.
//! * [`sim`] — the [`sim::World`]: a protocol-agnostic executor driving
//!   per-node stacks (radio + CSMA/CA MAC + pluggable
//!   [`essat_core::policy::PowerPolicy`] + query agent) over the
//!   deterministic engine.
//! * [`metrics`] — duty cycles (per node / per rank), query latencies,
//!   sleep-interval histograms, phase-update overhead.
//! * [`runner`] — the paper's five-runs-with-90%-CI protocol, threaded.
//!
//! ## Quickstart
//!
//! ```
//! use essat_wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
//! use essat_wsn::runner;
//!
//! // A small DTS-SS run (the paper-scale setup is
//! // `ExperimentConfig::paper`).
//! let mut cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 7);
//! cfg.duration = essat_sim::time::SimDuration::from_secs(15);
//! let result = runner::run_one(&cfg);
//! assert!(result.avg_duty_cycle_pct() < 100.0);
//! assert!(result.queries.iter().any(|q| q.rounds_completed > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod payload;
pub mod protocol;
pub mod runner;
pub mod sim;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::{ExperimentConfig, Protocol, SetupMode, WorkloadSpec};
    pub use crate::metrics::{MacTotals, NodeMetrics, QueryMetrics, RunResult};
    pub use crate::payload::Payload;
    pub use crate::protocol::{PolicyEnv, PolicyFactory};
    pub use crate::runner::{run_many, run_one, run_probed, run_summary, Summary};
    pub use crate::sim::{Ev, World};
}
