//! Run metrics: everything the paper's figures are built from.

use std::collections::BTreeMap;

use essat_net::ids::NodeId;
use essat_query::model::QueryId;
use essat_sim::stats::{Histogram, OnlineStats};
use essat_sim::time::{SimDuration, SimTime};

/// Per-node outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetrics {
    /// The node.
    pub node: NodeId,
    /// Routing-tree rank `d` at the start of the run.
    pub rank: u32,
    /// Tree level (hops from root).
    pub level: u32,
    /// Duty cycle over the measurement window (fraction, 0–1; off-time
    /// excludes transitions, which count as on).
    pub duty_cycle: f64,
    /// Energy consumed in joules over the measurement window.
    pub energy_j: f64,
}

/// One completed round at the root.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round number `k`.
    pub round: u64,
    /// When the root sealed the round.
    pub at: SimTime,
    /// Latency relative to the round start `φ + k·P`, in seconds.
    pub latency_s: f64,
    /// True if every expected source contributed.
    pub full: bool,
    /// Source readings folded into the aggregate.
    pub readings: u64,
}

/// Per-query outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMetrics {
    /// The query.
    pub query: QueryId,
    /// The query's rate in hertz.
    pub rate_hz: f64,
    /// Latency samples: root completion − round start, per completed
    /// round.
    pub latency: OnlineStats,
    /// Rounds completed at the root (sealed, partial or full).
    pub rounds_completed: u64,
    /// Rounds in which every expected source contributed.
    pub rounds_full: u64,
    /// Source readings delivered / expected, accumulated over rounds.
    pub delivered_readings: u64,
    /// Expected readings over completed rounds.
    pub expected_readings: u64,
    /// Per-round trace, in completion order (drives recovery analyses).
    pub records: Vec<RoundRecord>,
}

impl QueryMetrics {
    /// Fraction of source readings that reached the root.
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected_readings == 0 {
            1.0
        } else {
            self.delivered_readings as f64 / self.expected_readings as f64
        }
    }
}

/// Network-lifetime outcomes of one run (populated by scenarios with a
/// battery model and/or churn; empty under the static environment).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LifetimeStats {
    /// Every node death, in order: `(time, node)`. Battery depletions
    /// and churn/scripted failures both count; churn recoveries do not
    /// erase the record.
    pub deaths: Vec<(SimTime, NodeId)>,
    /// Time of the first tree-member death.
    pub first_death: Option<SimTime>,
    /// First time a live tree member had no path of live nodes to the
    /// root (or the root itself died) — the paper-style "network
    /// partition" lifetime mark.
    pub partition: Option<SimTime>,
    /// First time a partitioned network healed (every live member
    /// regained a live path to the root) — `None` while healthy or
    /// still partitioned. Self-healing repair and churn recovery both
    /// set it.
    pub partition_recovered_at: Option<SimTime>,
    /// Start of the *currently open* partition episode (`None` when the
    /// network is whole). Internal bookkeeping for
    /// [`LifetimeStats::time_in_partition`]; closed episodes accumulate
    /// into [`LifetimeStats::in_partition`].
    pub partitioned_since: Option<SimTime>,
    /// Total time spent partitioned over *closed* episodes (an episode
    /// still open at run end is added by
    /// [`LifetimeStats::time_in_partition`]).
    pub in_partition: SimDuration,
    /// Nodes revived by churn recoveries.
    pub recoveries: u64,
}

impl LifetimeStats {
    /// Time to first death, with `end` standing in when every node
    /// survived (a right-censored sample for lifetime curves).
    pub fn time_to_first_death(&self, end: SimTime) -> SimTime {
        self.first_death.unwrap_or(end)
    }

    /// Time to root partition, censored at `end` like
    /// [`LifetimeStats::time_to_first_death`].
    pub fn time_to_partition(&self, end: SimTime) -> SimTime {
        self.partition.unwrap_or(end)
    }

    /// Total time the network spent partitioned, counting an episode
    /// still open at `end`. A healed network reports only its actual
    /// outage — not partitioned-forever.
    pub fn time_in_partition(&self, end: SimTime) -> SimDuration {
        let open = self
            .partitioned_since
            .map(|s| end - s)
            .unwrap_or(SimDuration::ZERO);
        self.in_partition + open
    }

    /// Records the network becoming partitioned at `now` (idempotent
    /// while an episode is open).
    pub fn mark_partitioned(&mut self, now: SimTime) {
        if self.partition.is_none() {
            self.partition = Some(now);
        }
        if self.partitioned_since.is_none() {
            self.partitioned_since = Some(now);
        }
    }

    /// Records the network healing at `now`: closes the open partition
    /// episode (no-op when none is open).
    pub fn mark_recovered(&mut self, now: SimTime) {
        if let Some(since) = self.partitioned_since.take() {
            self.in_partition += now - since;
            if self.partition_recovered_at.is_none() {
                self.partition_recovered_at = Some(now);
            }
        }
    }
}

/// Complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Seed the run was executed with.
    pub seed: u64,
    /// Measurement window start (end of the setup slot).
    pub measured_from: SimTime,
    /// Run end.
    pub measured_until: SimTime,
    /// Per-node metrics for routing-tree members.
    pub nodes: Vec<NodeMetrics>,
    /// Per-query metrics.
    pub queries: Vec<QueryMetrics>,
    /// Histogram of completed sleep-interval lengths in seconds
    /// (paper Figure 8: 25 ms bins up to 200 ms).
    pub sleep_intervals: Histogram,
    /// DTS phase updates piggybacked on data reports.
    pub phase_piggybacks: u64,
    /// Explicit phase-update request packets sent.
    pub phase_requests: u64,
    /// Data reports released by all nodes.
    pub reports_sent: u64,
    /// MAC-level statistics summed over nodes.
    pub mac: MacTotals,
    /// Network-lifetime outcomes (deaths, partition, recoveries).
    pub lifetime: LifetimeStats,
    /// Channel statistics.
    pub channel_transmissions: u64,
    /// (transmission, receiver) collision pairs.
    pub channel_collisions: u64,
    /// Events processed by the engine (for performance reporting).
    pub events_processed: u64,
    /// High-water mark of the engine's pending-event set (for
    /// performance reporting — queue pressure at the paper scale).
    pub peak_queue_depth: u64,
    /// Child reports still missing when collection timeouts fired,
    /// summed over all parents and rounds — the desync/fault stress
    /// indicator behind [`RunResult::missed_round_rate`].
    pub missed_reports: u64,
    /// Receiver-side schedule resynchronisations: piggybacked phase
    /// updates a parent actually applied (DTS under drift/loss).
    pub resync_events: u64,
    /// Total guard-time wake lead scheduled, in nanoseconds: the extra
    /// awake time the [`crate::config::GuardTime`] knob buys — its
    /// energy overhead proxy.
    pub guard_wake_ns: u64,
    /// Successful self-healing tree operations (re-parents away from a
    /// failed parent plus orphan adoptions). Zero on fault-free runs.
    pub repairs: u64,
    /// Total detection-to-repair latency in nanoseconds, summed over
    /// [`RunResult::repairs`]: how long nodes ran against a failed
    /// parent before the backoff repair re-attached them.
    pub reparent_latency_ns: u64,
    /// Total node·time spent alive but outside the tree (orphaned), in
    /// nanoseconds, summed over nodes — coverage lost to partitions
    /// that adoption sweeps win back.
    pub orphan_node_ns: u64,
    /// Collection-layer report re-dispatches granted by the deadline-
    /// aware retransmission budget (after a MAC retry budget was
    /// exhausted but while the round's deadline still had slack).
    pub redispatches: u64,
}

/// Summed MAC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacTotals {
    /// Frames handed to MACs.
    pub enqueued: u64,
    /// Data transmissions (with retries).
    pub data_tx: u64,
    /// Unicast completions.
    pub delivered: u64,
    /// Retry-limit drops.
    pub failed: u64,
    /// Retransmissions.
    pub retries: u64,
}

impl RunResult {
    /// Average duty cycle over member nodes (the paper's headline energy
    /// metric), as a percentage.
    pub fn avg_duty_cycle_pct(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        100.0 * self.nodes.iter().map(|n| n.duty_cycle).sum::<f64>() / self.nodes.len() as f64
    }

    /// Average query latency in seconds over all queries (weighted by
    /// rounds).
    pub fn avg_latency_s(&self) -> f64 {
        let mut all = OnlineStats::new();
        for q in &self.queries {
            all.merge(&q.latency);
        }
        all.mean()
    }

    /// Mean duty cycle per rank, for the paper's Figure 5.
    pub fn duty_by_rank(&self) -> BTreeMap<u32, OnlineStats> {
        let mut map: BTreeMap<u32, OnlineStats> = BTreeMap::new();
        for n in &self.nodes {
            map.entry(n.rank).or_default().add(n.duty_cycle * 100.0);
        }
        map
    }

    /// Phase-update overhead in bits per data report, assuming a 32-bit
    /// phase field (the paper reports < 1 bit/report).
    pub fn phase_overhead_bits_per_report(&self) -> f64 {
        if self.reports_sent == 0 {
            0.0
        } else {
            32.0 * self.phase_piggybacks as f64 / self.reports_sent as f64
        }
    }

    /// Overall delivery ratio across queries.
    pub fn delivery_ratio(&self) -> f64 {
        let (d, e) = self.queries.iter().fold((0u64, 0u64), |(d, e), q| {
            (d + q.delivered_readings, e + q.expected_readings)
        });
        if e == 0 {
            1.0
        } else {
            d as f64 / e as f64
        }
    }

    /// The measurement window length.
    pub fn window(&self) -> SimDuration {
        self.measured_until - self.measured_from
    }

    /// Fraction of completed rounds that sealed *partial* at the root —
    /// at least one expected reading missed its round. Clock desync
    /// pushes this up; the guard knob buys it back down.
    pub fn missed_round_rate(&self) -> f64 {
        let (done, full) = self.queries.iter().fold((0u64, 0u64), |(d, f), q| {
            (d + q.rounds_completed, f + q.rounds_full)
        });
        if done == 0 {
            0.0
        } else {
            1.0 - full as f64 / done as f64
        }
    }

    /// Guard-time energy overhead in seconds of extra awake time (see
    /// [`RunResult::guard_wake_ns`]).
    pub fn guard_overhead_s(&self) -> f64 {
        self.guard_wake_ns as f64 * 1e-9
    }

    /// Total time the network spent partitioned (see
    /// [`LifetimeStats::time_in_partition`]), in seconds.
    pub fn time_in_partition_s(&self) -> f64 {
        self.lifetime
            .time_in_partition(self.measured_until)
            .as_secs_f64()
    }

    /// Mean detection-to-repair latency in seconds (0 when no repair
    /// ever ran).
    pub fn mean_reparent_latency_s(&self) -> f64 {
        if self.repairs == 0 {
            0.0
        } else {
            self.reparent_latency_ns as f64 * 1e-9 / self.repairs as f64
        }
    }

    /// Total orphaned node·time in node-seconds (see
    /// [`RunResult::orphan_node_ns`]).
    pub fn orphan_node_seconds(&self) -> f64 {
        self.orphan_node_ns as f64 * 1e-9
    }

    /// The digest schema version recorded in golden files
    /// (`digest-version:` header in `tests/golden/quick_digests.txt`).
    ///
    /// Bump this when an intentional change moves the digest for every
    /// run — e.g. version 2 retired stale-event dispatches, shrinking
    /// `events_processed` and `peak_queue_depth` (both hashed) while
    /// leaving every simulation-level metric untouched; version 3 grew
    /// the preimage with the self-healing metrics (partition recovery,
    /// repairs, re-parent latency, orphan time, re-dispatches — all
    /// zero/absent on fault-free runs, whose simulation-level metrics
    /// are byte-identical to version 2). Keep the old version's golden
    /// file committed next to the new one so the history of intentional
    /// migrations stays auditable.
    pub const DIGEST_VERSION: u32 = 3;

    /// A 64-bit FNV-1a digest over every metric of the run, including
    /// per-round traces, per-node duty/energy bit patterns, the
    /// sleep-interval histogram, and the engine's event count.
    ///
    /// Two runs digest equal iff they produced byte-identical metrics,
    /// so committed golden digests pin the simulator's observable
    /// behaviour across refactors (see `tests/golden_digests.rs`).
    pub fn digest(&self) -> String {
        let mut h = Fnv1a::new();
        h.u64(self.seed);
        h.u64(self.measured_from.as_nanos());
        h.u64(self.measured_until.as_nanos());
        h.u64(self.nodes.len() as u64);
        for n in &self.nodes {
            h.u64(n.node.as_u32() as u64);
            h.u64(n.rank as u64);
            h.u64(n.level as u64);
            h.u64(n.duty_cycle.to_bits());
            h.u64(n.energy_j.to_bits());
        }
        h.u64(self.queries.len() as u64);
        for q in &self.queries {
            h.u64(q.query.as_u32() as u64);
            h.u64(q.rate_hz.to_bits());
            h.u64(q.latency.count());
            if !q.latency.is_empty() {
                h.u64(q.latency.mean().to_bits());
                h.u64(q.latency.min().to_bits());
                h.u64(q.latency.max().to_bits());
            }
            h.u64(q.rounds_completed);
            h.u64(q.rounds_full);
            h.u64(q.delivered_readings);
            h.u64(q.expected_readings);
            h.u64(q.records.len() as u64);
            for r in &q.records {
                h.u64(r.round);
                h.u64(r.at.as_nanos());
                h.u64(r.latency_s.to_bits());
                h.u64(r.full as u64);
                h.u64(r.readings);
            }
        }
        h.u64(self.sleep_intervals.total());
        h.u64(self.sleep_intervals.overflow());
        for (_, count) in self.sleep_intervals.iter() {
            h.u64(count);
        }
        h.u64(self.phase_piggybacks);
        h.u64(self.phase_requests);
        h.u64(self.reports_sent);
        h.u64(self.mac.enqueued);
        h.u64(self.mac.data_tx);
        h.u64(self.mac.delivered);
        h.u64(self.mac.failed);
        h.u64(self.mac.retries);
        h.u64(self.lifetime.deaths.len() as u64);
        for &(at, node) in &self.lifetime.deaths {
            h.u64(at.as_nanos());
            h.u64(node.as_u32() as u64);
        }
        h.u64(
            self.lifetime
                .first_death
                .map(|t| t.as_nanos())
                .unwrap_or(u64::MAX),
        );
        h.u64(
            self.lifetime
                .partition
                .map(|t| t.as_nanos())
                .unwrap_or(u64::MAX),
        );
        h.u64(
            self.lifetime
                .partition_recovered_at
                .map(|t| t.as_nanos())
                .unwrap_or(u64::MAX),
        );
        h.u64(
            self.lifetime
                .time_in_partition(self.measured_until)
                .as_nanos(),
        );
        h.u64(self.lifetime.recoveries);
        h.u64(self.channel_transmissions);
        h.u64(self.channel_collisions);
        h.u64(self.events_processed);
        h.u64(self.peak_queue_depth);
        h.u64(self.missed_reports);
        h.u64(self.resync_events);
        h.u64(self.guard_wake_ns);
        h.u64(self.repairs);
        h.u64(self.reparent_latency_ns);
        h.u64(self.orphan_node_ns);
        h.u64(self.redispatches);
        format!("{:016x}", h.finish())
    }
}

/// Minimal streaming FNV-1a (64-bit) over little-endian words.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(rank: u32, duty: f64) -> NodeMetrics {
        NodeMetrics {
            node: NodeId::new(rank),
            rank,
            level: 0,
            duty_cycle: duty,
            energy_j: 0.0,
        }
    }

    fn result(nodes: Vec<NodeMetrics>, queries: Vec<QueryMetrics>) -> RunResult {
        RunResult {
            seed: 0,
            measured_from: SimTime::ZERO,
            measured_until: SimTime::from_secs(10),
            nodes,
            queries,
            sleep_intervals: Histogram::new(0.025, 8),
            phase_piggybacks: 0,
            phase_requests: 0,
            reports_sent: 0,
            mac: MacTotals::default(),
            lifetime: LifetimeStats::default(),
            channel_transmissions: 0,
            channel_collisions: 0,
            events_processed: 0,
            peak_queue_depth: 0,
            missed_reports: 0,
            resync_events: 0,
            guard_wake_ns: 0,
            repairs: 0,
            reparent_latency_ns: 0,
            orphan_node_ns: 0,
            redispatches: 0,
        }
    }

    #[test]
    fn avg_duty_cycle() {
        let r = result(vec![node(0, 0.1), node(1, 0.3)], vec![]);
        assert!((r.avg_duty_cycle_pct() - 20.0).abs() < 1e-9);
        assert_eq!(result(vec![], vec![]).avg_duty_cycle_pct(), 0.0);
    }

    #[test]
    fn duty_by_rank_groups() {
        let r = result(vec![node(0, 0.1), node(0, 0.2), node(2, 0.5)], vec![]);
        let by_rank = r.duty_by_rank();
        assert_eq!(by_rank.len(), 2);
        assert!((by_rank[&0].mean() - 15.0).abs() < 1e-9);
        assert!((by_rank[&2].mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn latency_merges_queries() {
        let mut q1 = QueryMetrics {
            query: QueryId::new(0),
            rate_hz: 1.0,
            latency: OnlineStats::new(),
            rounds_completed: 0,
            rounds_full: 0,
            delivered_readings: 8,
            expected_readings: 10,
            records: Vec::new(),
        };
        q1.latency.add(0.1);
        q1.latency.add(0.3);
        let mut q2 = q1.clone();
        q2.latency = OnlineStats::new();
        q2.latency.add(0.2);
        let r = result(vec![], vec![q1, q2]);
        assert!((r.avg_latency_s() - 0.2).abs() < 1e-9);
        assert!((r.delivery_ratio() - 16.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn phase_overhead() {
        let mut r = result(vec![], vec![]);
        r.phase_piggybacks = 1;
        r.reports_sent = 64;
        assert!((r.phase_overhead_bits_per_report() - 0.5).abs() < 1e-9);
        r.reports_sent = 0;
        assert_eq!(r.phase_overhead_bits_per_report(), 0.0);
    }

    #[test]
    fn lifetime_censoring() {
        let mut lt = LifetimeStats::default();
        let end = SimTime::from_secs(50);
        assert_eq!(lt.time_to_first_death(end), end, "survival censors at end");
        assert_eq!(lt.time_to_partition(end), end);
        lt.deaths.push((SimTime::from_secs(12), NodeId::new(3)));
        lt.first_death = Some(SimTime::from_secs(12));
        lt.partition = Some(SimTime::from_secs(30));
        assert_eq!(lt.time_to_first_death(end), SimTime::from_secs(12));
        assert_eq!(lt.time_to_partition(end), SimTime::from_secs(30));
    }

    #[test]
    fn partition_episodes_accumulate_and_heal() {
        let mut lt = LifetimeStats::default();
        let end = SimTime::from_secs(100);
        assert_eq!(lt.time_in_partition(end), SimDuration::ZERO);
        // Episode 1: 10 s → 25 s.
        lt.mark_partitioned(SimTime::from_secs(10));
        lt.mark_partitioned(SimTime::from_secs(12)); // idempotent while open
        assert_eq!(lt.partition, Some(SimTime::from_secs(10)));
        lt.mark_recovered(SimTime::from_secs(25));
        assert_eq!(lt.partition_recovered_at, Some(SimTime::from_secs(25)));
        assert_eq!(lt.time_in_partition(end), SimDuration::from_secs(15));
        // Recovery without an open episode is a no-op.
        lt.mark_recovered(SimTime::from_secs(30));
        assert_eq!(lt.time_in_partition(end), SimDuration::from_secs(15));
        // Episode 2 stays open to the end: censored into the total, but
        // `partition` still records the *first* episode and
        // `partition_recovered_at` the *first* heal.
        lt.mark_partitioned(SimTime::from_secs(80));
        assert_eq!(lt.partition, Some(SimTime::from_secs(10)));
        assert_eq!(lt.partition_recovered_at, Some(SimTime::from_secs(25)));
        assert_eq!(lt.time_in_partition(end), SimDuration::from_secs(35));
    }

    #[test]
    fn self_healing_summaries() {
        let mut r = result(vec![], vec![]);
        assert_eq!(r.mean_reparent_latency_s(), 0.0);
        r.repairs = 4;
        r.reparent_latency_ns = 2_000_000_000;
        r.orphan_node_ns = 3_500_000_000;
        assert!((r.mean_reparent_latency_s() - 0.5).abs() < 1e-12);
        assert!((r.orphan_node_seconds() - 3.5).abs() < 1e-12);
        r.lifetime.mark_partitioned(SimTime::from_secs(2));
        r.lifetime.mark_recovered(SimTime::from_secs(5));
        assert!((r.time_in_partition_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_round_rate_over_queries() {
        let q = |completed, full| QueryMetrics {
            query: QueryId::new(0),
            rate_hz: 1.0,
            latency: OnlineStats::new(),
            rounds_completed: completed,
            rounds_full: full,
            delivered_readings: 0,
            expected_readings: 0,
            records: Vec::new(),
        };
        let r = result(vec![], vec![q(8, 6), q(2, 2)]);
        assert!((r.missed_round_rate() - 0.2).abs() < 1e-12);
        assert_eq!(result(vec![], vec![]).missed_round_rate(), 0.0);
        let mut r = result(vec![], vec![]);
        r.guard_wake_ns = 2_500_000_000;
        assert!((r.guard_overhead_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn delivery_ratio_empty_is_one() {
        let q = QueryMetrics {
            query: QueryId::new(0),
            rate_hz: 1.0,
            latency: OnlineStats::new(),
            rounds_completed: 0,
            rounds_full: 0,
            delivered_readings: 0,
            expected_readings: 0,
            records: Vec::new(),
        };
        assert_eq!(q.delivery_ratio(), 1.0);
    }
}
