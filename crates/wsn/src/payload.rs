//! Upper-layer packet payloads carried by the MAC.

use essat_query::aggregate::AggState;
use essat_query::model::QueryId;
use essat_sim::time::SimTime;

/// Everything a frame can carry above the link layer.
///
/// Deliberately `Copy`: every variant is a few plain-old-data words, so
/// frames fan out to receivers as bitwise copies with no allocation or
/// refcount traffic anywhere on the delivery path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Payload {
    /// Nothing (ACK frames and padding).
    #[default]
    Empty,
    /// An aggregated data report for one round of one query
    /// (the paper's 52-byte packet).
    Report {
        /// The query.
        query: QueryId,
        /// Round number `k` — doubles as the §4.3 sequence number.
        round: u64,
        /// TAG-style partial state record.
        agg: AggState,
        /// DTS phase update: the sender's next expected send time
        /// `s(k+1)`, present after phase shifts and on request.
        piggyback: Option<SimTime>,
    },
    /// DTS §4.3: explicit request for a phase update (sent when a gap is
    /// detected and the received report carried no piggyback).
    PhaseUpdateRequest {
        /// The query to resynchronise.
        query: QueryId,
    },
    /// PSM traffic announcement (ATIM): the sender has buffered data for
    /// the destination this beacon interval.
    Atim,
    /// Query dissemination flood (setup slot): announces a query so
    /// nodes can register it.
    QuerySetup {
        /// The announced query.
        query: QueryId,
        /// Flood hop counter (diagnostics only).
        hops: u32,
    },
}

impl Payload {
    /// The query a payload refers to, if any.
    pub fn query(&self) -> Option<QueryId> {
        match self {
            Payload::Report { query, .. }
            | Payload::PhaseUpdateRequest { query }
            | Payload::QuerySetup { query, .. } => Some(*query),
            Payload::Empty | Payload::Atim => None,
        }
    }

    /// True for data reports.
    pub fn is_report(&self) -> bool {
        matches!(self, Payload::Report { .. })
    }
}

/// Control-frame sizes (bytes on the air).
pub mod sizes {
    /// Phase-update request frames: tiny control packets.
    pub const PHASE_REQUEST_BYTES: u32 = 20;
    /// Query-setup flood frames.
    pub const QUERY_SETUP_BYTES: u32 = 36;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        assert_eq!(Payload::default(), Payload::Empty);
    }

    #[test]
    fn query_extraction() {
        let q = QueryId::new(3);
        let report = Payload::Report {
            query: q,
            round: 0,
            agg: AggState::empty(),
            piggyback: None,
        };
        assert_eq!(report.query(), Some(q));
        assert!(report.is_report());
        assert_eq!(Payload::Atim.query(), None);
        assert_eq!(Payload::PhaseUpdateRequest { query: q }.query(), Some(q));
        assert!(!Payload::Empty.is_report());
    }
}
