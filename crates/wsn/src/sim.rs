//! The integrated simulator: node stacks composed over the
//! discrete-event engine.
//!
//! One [`World`] is one simulation run. It owns the topology, the routing
//! tree, the shared channel, and a per-node stack (radio + MAC + power
//! manager + query agent). Protocol logic lives in the `essat-core` and
//! `essat-baselines` crates as pure state machines; this module only
//! wires their decisions to events.
//!
//! The per-node power managers:
//!
//! * **ESSAT** modes run a [`TrafficShaper`] + [`SafeSleep`]: the shaper
//!   decides release times and feeds expectations to SS; SS decisions are
//!   re-evaluated whenever the MAC quiesces or an expectation changes.
//! * **SYNC** follows the global 20%-duty schedule; releases are
//!   quantised to active windows.
//! * **PSM** wakes at every beacon, announces buffered traffic in the
//!   ATIM window, exchanges data in the advertisement window.
//! * **SPAN** marks tree non-leaves always-on; leaves run NTS-SS
//!   (the paper's evaluation configuration).
//!
//! All protocols share the same query service: per-round aggregation
//! with per-shaper collection timeouts, loss detection, and the §4.3
//! failure recovery (re-parenting through the routing tree).

use std::collections::{BTreeMap, BTreeSet};

use essat_baselines::psm::{PsmBeaconState, PsmSchedule, ATIM_BYTES};
use essat_baselines::span::SpanBackbone;
use essat_baselines::sync::SyncSchedule;
use essat_baselines::tag::Tag;
use essat_core::dts::Dts;
use essat_core::maintenance::{FailureDetector, LossDetector, LossObservation};
use essat_core::nts::Nts;
use essat_core::safe_sleep::{SafeSleep, SleepDecision};
use essat_core::shaper::{Expectations, TrafficShaper, TreeInfo};
use essat_core::sts::Sts;
use essat_net::channel::{Channel, TxId};
use essat_net::frame::{Dest, Frame, FrameKind, PAPER_REPORT_BYTES};
use essat_net::geometry::Area;
use essat_net::ids::NodeId;
use essat_net::mac::{Mac, MacAction, MacTimer};
use essat_net::radio::{Radio, TransitionOutcome};
use essat_net::topology::Topology;
use essat_query::aggregate::AggState;
use essat_query::model::{Query, QueryId};
use essat_query::round::{RoundAggregator, RoundKey};
use essat_query::tree::RoutingTree;
use essat_scenario::compile::CompiledScenario;
use essat_scenario::gilbert::GilbertElliott;
use essat_sim::engine::{Context, Engine, Model};
use essat_sim::rng::SimRng;
use essat_sim::stats::{Histogram, OnlineStats};
use essat_sim::time::{SimDuration, SimTime};

use crate::config::{ExperimentConfig, Protocol, SetupMode};
use crate::metrics::{LifetimeStats, MacTotals, NodeMetrics, QueryMetrics, RunResult};
use crate::payload::{sizes, Payload};

/// Consecutive collection timeouts before a parent declares a child
/// failed (§4.3). Deliberately high: transient contention regularly
/// delays single reports, and a false child-removal costs a subtree.
const CHILD_FAIL_THRESHOLD: u32 = 8;
/// Consecutive MAC transmission failures before a child declares its
/// parent failed. Each miss already represents a full retry cycle
/// (7 MAC attempts), but a sleeping parent also manifests as one, so
/// several rounds must agree before the routing layer reacts.
const PARENT_FAIL_THRESHOLD: u32 = 5;
/// Fine-grained sleep-interval histogram: 0.5 ms bins up to 1 s.
const SLEEP_HIST_BIN_S: f64 = 0.0005;
const SLEEP_HIST_BINS: usize = 2000;

/// Simulation events.
#[derive(Debug)]
pub enum Ev {
    /// End of the setup slot: metrics snapshot + first sleep decisions.
    SetupEnd,
    /// A forced-awake window (flooded query dissemination) closed.
    ForcedWindowEnd,
    /// Round `round` of query `query` begins at `node` (local sampling).
    RoundStart {
        /// Sampling node.
        node: NodeId,
        /// Query index.
        query: usize,
        /// Round number.
        round: u64,
    },
    /// Collection timeout for `(node, query, round)`.
    CollectionTimeout {
        /// Aggregating node.
        node: NodeId,
        /// Query index.
        query: usize,
        /// Round number.
        round: u64,
        /// Staleness guard.
        gen: u64,
    },
    /// A buffered report reaches its shaper release time.
    ReleaseReport {
        /// Sending node.
        node: NodeId,
        /// Query index.
        query: usize,
        /// Round number.
        round: u64,
    },
    /// MAC timer expiry.
    MacTimer {
        /// Owning node.
        node: NodeId,
        /// Timer class.
        kind: MacTimer,
        /// Generation echo.
        gen: u64,
    },
    /// A transmission leaves the air.
    TxEnd {
        /// Transmitting node.
        sender: NodeId,
        /// Channel handle.
        tx: TxId,
        /// The frame (delivered to clean receivers).
        frame: Frame<Payload>,
    },
    /// A radio power transition completes.
    RadioDone {
        /// Owning node.
        node: NodeId,
    },
    /// Safe-Sleep-scheduled wake-up (`t_wakeup − t_OFF→ON`).
    RadioWake {
        /// Owning node.
        node: NodeId,
        /// Staleness guard.
        gen: u64,
    },
    /// SYNC schedule edge (window start or end).
    SyncEdge {
        /// Owning node.
        node: NodeId,
        /// Schedule-chain staleness guard (churn recovery re-arms the
        /// chain; the old pending edge must not duplicate it).
        gen: u64,
    },
    /// PSM beacon boundary.
    PsmBeacon {
        /// Owning node.
        node: NodeId,
        /// Schedule-chain staleness guard.
        gen: u64,
    },
    /// End of the PSM ATIM window.
    PsmAtimEnd {
        /// Owning node.
        node: NodeId,
    },
    /// End of the PSM advertisement window.
    PsmAdvEnd {
        /// Owning node.
        node: NodeId,
    },
    /// Release PSM-buffered frames to a confirmed destination.
    PsmRelease {
        /// Owning node.
        node: NodeId,
        /// Confirmed destination.
        dest: NodeId,
    },
    /// Scripted or scenario node failure.
    NodeFail {
        /// The failing node.
        node: NodeId,
    },
    /// Scenario churn recovery: a dead node comes back.
    NodeRecover {
        /// The recovering node.
        node: NodeId,
    },
    /// Periodic battery-depletion sweep (scenario battery model).
    BatteryCheck,
    /// Flooded setup: the root issues a query announcement.
    FloodIssue {
        /// Query index.
        query: usize,
    },
    /// Flooded setup: wake everyone for the setup window.
    ForceWake {
        /// Node to wake.
        node: NodeId,
    },
}

/// Power-manager personality of a node.
enum Mode {
    /// ESSAT: a traffic shaper plus Safe Sleep.
    Essat {
        shaper: Box<dyn TrafficShaper>,
        ss: SafeSleep,
    },
    /// Global synchronized duty cycle.
    Sync,
    /// 802.11 PSM with advertisement windows.
    Psm,
    /// Radio never sleeps (SPAN coordinators, ALWAYS-ON).
    AlwaysOn,
}

impl std::fmt::Debug for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Essat { shaper, .. } => write!(f, "Essat({})", shaper.kind()),
            Mode::Sync => f.write_str("Sync"),
            Mode::Psm => f.write_str("Psm"),
            Mode::AlwaysOn => f.write_str("AlwaysOn"),
        }
    }
}

/// One round's collection state.
#[derive(Debug)]
struct RoundState {
    agg: RoundAggregator,
    timeout_gen: u64,
    deadline: Option<SimTime>,
    piggyback: Option<SimTime>,
    release_planned: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct RadioSnapshot {
    active: u64,
    off: u64,
    trans: u64,
    energy: f64,
}

/// Per-node simulation state.
#[derive(Debug)]
struct NodeState {
    mode: Mode,
    radio: Radio,
    mac: Mac<Payload>,
    member: bool,
    dead: bool,
    died_at: Option<SimTime>,
    participating: BTreeSet<usize>,
    expected_children: BTreeMap<usize, Vec<NodeId>>,
    rounds: BTreeMap<RoundKey, RoundState>,
    /// Highest round released/completed per query (staleness guard).
    done: BTreeMap<usize, u64>,
    loss: LossDetector,
    child_fail: FailureDetector,
    parent_fail: FailureDetector,
    /// `(query, child)` pairs whose DTS phase is suspected stale.
    stale_phase: BTreeSet<(usize, NodeId)>,
    wake_gen: u64,
    /// Baseline schedule-chain generation (SYNC edges / PSM beacons);
    /// bumped on churn recovery so stale chain events drop out.
    sched_gen: u64,
    /// Next round each query's chain should handle (duplicate-chain
    /// guard for churn-recovery restarts).
    next_round: BTreeMap<usize, u64>,
    /// Times this node has been revived by churn.
    revivals: u64,
    /// Set when a skipped round moved expectations while the radio was
    /// mid-turn-on: re-run checkState once the wake-up completes.
    recheck_on_wake: bool,
    /// PSM: frames buffered per destination awaiting announcement.
    psm_pending: BTreeMap<NodeId, Vec<Frame<Payload>>>,
    psm_beacon: PsmBeaconState,
    /// Flooded setup: queries already registered.
    registered: BTreeSet<usize>,
    snap: RadioSnapshot,
    rank0: u32,
    level0: u32,
}

/// One simulation run: the [`Model`] driven by the engine.
#[derive(Debug)]
pub struct World {
    cfg: ExperimentConfig,
    /// Master RNG (kept for deriving fresh per-node streams mid-run,
    /// e.g. the MAC of a churn-revived node).
    master: SimRng,
    topo: Topology,
    tree: RoutingTree,
    root: NodeId,
    channel: Channel,
    /// Compiled dynamic-environment scenario, if any.
    scenario: Option<CompiledScenario>,
    queries: Vec<Query>,
    source_count: Vec<u64>,
    nodes: Vec<NodeState>,
    sync_schedule: SyncSchedule,
    psm_schedule: PsmSchedule,
    setup_over: bool,
    forced_windows: Vec<(SimTime, SimTime)>,
    run_end: SimTime,
    measure_from: SimTime,
    // accumulated metrics
    qmetrics: Vec<QueryMetrics>,
    phase_piggybacks: u64,
    phase_requests: u64,
    reports_sent: u64,
    /// Deaths / partition / recovery marks for the lifetime figures.
    lifetime: LifetimeStats,
    /// MAC counters of MACs replaced by churn revivals (so totals keep
    /// the pre-death traffic).
    mac_lost: MacTotals,
    /// Recycled `(child, rank)` buffers for [`World::tree_view`], so the
    /// per-event tree snapshots allocate only until the pool warms up.
    kid_pool: Vec<Vec<(NodeId, u32)>>,
}

impl World {
    /// Builds the world and the initial event list for `cfg`.
    pub fn new(cfg: ExperimentConfig) -> (World, Vec<(SimTime, Ev)>) {
        cfg.validate();
        let master = SimRng::seed_from_u64(cfg.seed);
        let mut topo_rng = master.derive(1);
        let mut phase_rng = master.derive(2);
        let channel_rng = master.derive(3);

        let area = Area::new(cfg.area_side, cfg.area_side);
        let mut topo = Topology::random(cfg.nodes, area, cfg.range, &mut topo_rng);
        if let Some(ir) = cfg.interference_range {
            topo = topo.with_interference_range(ir);
        }
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, Some(cfg.tree_radius));

        let mut channel = Channel::new(&topo, channel_rng);
        channel.set_drop_probability(cfg.drop_probability);

        // Dynamic environment: compile the scenario (or replay its
        // recorded trace) and install the bursty-link process.
        let scenario = cfg
            .scenario
            .as_ref()
            .map(|s| s.resolve(cfg.nodes, root.as_u32(), cfg.duration, cfg.seed));
        if let Some(ge) = scenario.as_ref().and_then(|s| s.link) {
            channel.set_loss_model(Box::new(GilbertElliott::new(
                topo.node_count(),
                ge,
                master.derive(7),
            )));
        }

        // Queries: three classes at rate ratio 6:3:2.
        let rates = cfg.workload.class_rates();
        let mut queries = Vec::new();
        for &rate in &rates {
            for _ in 0..cfg.workload.queries_per_class {
                let id = QueryId::new(queries.len() as u32);
                let period = SimDuration::from_rate_hz(rate);
                let phase = SimTime::from_secs_f64(
                    phase_rng.range_f64(0.0, cfg.workload.phase_window.as_secs_f64()),
                );
                let mut q = Query::periodic(id, period, phase, cfg.workload.op);
                if let Some(d) = cfg.workload.deadline {
                    q = q.with_deadline(d);
                }
                queries.push(q);
            }
        }
        let member_count = tree.member_count() as u64;
        let source_count = queries.iter().map(|_| member_count).collect();

        let span_backbone = match cfg.protocol {
            Protocol::Span => Some(SpanBackbone::from_tree(&tree, topo.node_count())),
            _ => None,
        };

        let t_be = cfg.radio.break_even();
        let t_on = cfg.radio.turn_on;
        let nodes = topo
            .nodes()
            .map(|id| {
                let mode = match cfg.protocol {
                    Protocol::NtsSs => Mode::Essat {
                        shaper: Box::new(Nts::new()),
                        ss: SafeSleep::new(t_be, t_on),
                    },
                    Protocol::StsSs => Mode::Essat {
                        shaper: Box::new(Sts::with_config(cfg.sts)),
                        ss: SafeSleep::new(t_be, t_on),
                    },
                    Protocol::DtsSs => Mode::Essat {
                        shaper: Box::new(Dts::with_config(cfg.dts)),
                        ss: SafeSleep::new(t_be, t_on),
                    },
                    Protocol::Sync => Mode::Sync,
                    Protocol::Psm => Mode::Psm,
                    Protocol::TagSs => Mode::Essat {
                        shaper: Box::new(Tag::new()),
                        ss: SafeSleep::new(t_be, t_on),
                    },
                    Protocol::AlwaysOn => Mode::AlwaysOn,
                    Protocol::Span => {
                        let bb = span_backbone.as_ref().expect("built above");
                        if bb.is_coordinator(id) {
                            Mode::AlwaysOn
                        } else {
                            // Leaves (and non-members) run NTS-SS, per the
                            // paper's modified SPAN setup.
                            Mode::Essat {
                                shaper: Box::new(Nts::new()),
                                ss: SafeSleep::new(t_be, t_on),
                            }
                        }
                    }
                };
                NodeState {
                    mode,
                    radio: Radio::new(cfg.radio),
                    mac: Mac::new(id, cfg.mac, master.derive2(4, id.as_u32() as u64)),
                    member: tree.is_member(id),
                    dead: false,
                    died_at: None,
                    participating: BTreeSet::new(),
                    expected_children: BTreeMap::new(),
                    rounds: BTreeMap::new(),
                    done: BTreeMap::new(),
                    loss: LossDetector::new(),
                    child_fail: FailureDetector::new(CHILD_FAIL_THRESHOLD),
                    parent_fail: FailureDetector::new(PARENT_FAIL_THRESHOLD),
                    stale_phase: BTreeSet::new(),
                    wake_gen: 0,
                    sched_gen: 0,
                    next_round: BTreeMap::new(),
                    revivals: 0,
                    recheck_on_wake: false,
                    psm_pending: BTreeMap::new(),
                    psm_beacon: PsmBeaconState::new(),
                    registered: BTreeSet::new(),
                    snap: RadioSnapshot::default(),
                    rank0: tree.rank(id),
                    level0: tree.level(id).unwrap_or(0),
                }
            })
            .collect();

        let qmetrics = queries
            .iter()
            .map(|q| QueryMetrics {
                query: q.id,
                rate_hz: q.rate_hz(),
                latency: OnlineStats::new(),
                rounds_completed: 0,
                rounds_full: 0,
                delivered_readings: 0,
                expected_readings: 0,
                records: Vec::new(),
            })
            .collect();

        let run_end = SimTime::ZERO + cfg.duration;
        let measure_from = SimTime::ZERO + cfg.setup_slot;

        let mut forced_windows = Vec::new();
        if cfg.setup_mode == SetupMode::Flooded {
            for q in &queries {
                let start = q.phase.saturating_sub(cfg.setup_slot);
                forced_windows.push((start, start + cfg.setup_slot));
            }
        }

        let mut world = World {
            cfg,
            master,
            topo,
            tree,
            root,
            channel,
            scenario,
            queries,
            source_count,
            nodes,
            sync_schedule: SyncSchedule::paper(),
            psm_schedule: PsmSchedule::paper(),
            setup_over: false,
            forced_windows,
            run_end,
            measure_from,
            qmetrics,
            phase_piggybacks: 0,
            phase_requests: 0,
            reports_sent: 0,
            lifetime: LifetimeStats::default(),
            mac_lost: MacTotals::default(),
            kid_pool: Vec::new(),
        };

        let mut initial: Vec<(SimTime, Ev)> = Vec::new();
        initial.push((world.measure_from, Ev::SetupEnd));

        match world.cfg.setup_mode {
            SetupMode::Idealized => {
                // Pre-register every query at every relevant node.
                for qi in 0..world.queries.len() {
                    for node in world.tree.members().to_vec() {
                        if let Some((round, at)) = world.register_query_at(node, qi, SimTime::ZERO)
                        {
                            initial.push((
                                at,
                                Ev::RoundStart {
                                    node,
                                    query: qi,
                                    round,
                                },
                            ));
                        }
                    }
                }
            }
            SetupMode::Flooded => {
                for (qi, q) in world.queries.iter().enumerate() {
                    let issue = q.phase.saturating_sub(world.cfg.setup_slot);
                    initial.push((issue, Ev::FloodIssue { query: qi }));
                    for node in world.tree.members() {
                        initial.push((issue, Ev::ForceWake { node: *node }));
                    }
                }
                for &(_, end) in &world.forced_windows.clone() {
                    initial.push((end, Ev::ForcedWindowEnd));
                }
            }
        }

        // Baseline schedule chains.
        match world.cfg.protocol {
            Protocol::Sync => {
                for &m in world.tree.members() {
                    initial.push((
                        world.sync_schedule.next_edge(SimTime::ZERO),
                        Ev::SyncEdge { node: m, gen: 0 },
                    ));
                }
            }
            Protocol::Psm => {
                for &m in world.tree.members() {
                    initial.push((SimTime::ZERO, Ev::PsmBeacon { node: m, gen: 0 }));
                }
            }
            _ => {}
        }

        // Scripted failures.
        for &(at, node) in &world.cfg.node_failures.clone() {
            initial.push((
                at,
                Ev::NodeFail {
                    node: NodeId::new(node),
                },
            ));
        }

        // Scenario event stream: churn + the battery sweep chain.
        if let Some(s) = &world.scenario {
            for e in &s.events {
                let node = NodeId::new(e.node);
                let ev = if e.up {
                    Ev::NodeRecover { node }
                } else {
                    Ev::NodeFail { node }
                };
                initial.push((e.at, ev));
            }
            if let Some(b) = s.battery {
                initial.push((SimTime::ZERO + b.check_period, Ev::BatteryCheck));
            }
        }

        (world, initial)
    }

    /// Runs a full experiment and returns its metrics.
    pub fn run(cfg: &ExperimentConfig) -> RunResult {
        let (world, initial) = World::new(cfg.clone());
        let run_end = world.run_end;
        let mut engine = Engine::new(world);
        for (at, ev) in initial {
            engine.schedule_at(at, ev);
        }
        engine.run_until(run_end);
        let events = engine.processed();
        let peak = engine.peak_pending() as u64;
        engine.into_model().finalize(run_end, events, peak)
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn query(&self, qi: usize) -> Query {
        self.queries[qi].clone()
    }

    /// `(own_rank, max_rank, own_level, max_level, children-with-ranks)`
    /// for `node`, from the current tree.
    ///
    /// The children vector comes from [`World::kid_pool`]; hand it back
    /// with [`World::put_kids`] when done so steady-state event handling
    /// does not allocate.
    fn tree_view(&mut self, node: NodeId) -> (u32, u32, u32, u32, Vec<(NodeId, u32)>) {
        let mut kids = self.kid_pool.pop().unwrap_or_default();
        kids.extend(
            self.tree
                .children(node)
                .iter()
                .map(|&c| (c, self.tree.rank(c))),
        );
        (
            self.tree.rank(node),
            self.tree.max_rank(),
            self.tree.level(node).unwrap_or(0),
            self.tree.max_level(),
            kids,
        )
    }

    /// Returns a [`World::tree_view`] children buffer to the pool.
    fn put_kids(&mut self, mut kids: Vec<(NodeId, u32)>) {
        kids.clear();
        self.kid_pool.push(kids);
    }

    fn is_source(&self, node: NodeId, qi: usize) -> bool {
        self.tree.is_member(node) && self.queries[qi].sources.contains(node)
    }

    fn in_forced_window(&self, now: SimTime) -> bool {
        self.forced_windows
            .iter()
            .any(|&(s, e)| now >= s && now < e)
    }

    /// Registers query `qi` at `node`. Returns the node's first round
    /// `(index, start time)` if the node participates.
    fn register_query_at(
        &mut self,
        node: NodeId,
        qi: usize,
        now: SimTime,
    ) -> Option<(u64, SimTime)> {
        if !self.tree.is_member(node) || self.nodes[node.index()].dead {
            return None;
        }
        let q = self.query(qi);
        let kids: Vec<NodeId> = self.tree.children(node).to_vec();
        let is_src = self.is_source(node, qi);
        if !is_src && kids.is_empty() {
            return None; // nothing to sample, nothing to relay
        }
        let is_root = node == self.root;
        let (own_rank, max_rank, own_level, max_level, kid_ranks) = self.tree_view(node);
        let n = &mut self.nodes[node.index()];
        n.participating.insert(qi);
        n.registered.insert(qi);
        n.expected_children.insert(qi, kids);
        if let Mode::Essat { shaper, ss } = &mut n.mode {
            let info = TreeInfo {
                own_rank,
                max_rank,
                own_level,
                max_level,
                children: &kid_ranks,
            };
            let exps = shaper.register(&q, &info, is_root);
            apply_expectations(ss, q.id, &exps, is_root);
        }
        self.put_kids(kid_ranks);
        // First round this node can still run.
        let k0 = Self::next_round_at(&q, now);
        let at = q.round_start(k0);
        (at < self.run_end).then_some((k0, at))
    }

    /// The first round of `q` starting at or after `now`.
    fn next_round_at(q: &Query, now: SimTime) -> u64 {
        if q.phase >= now {
            0
        } else {
            q.round_at(now).map(|k| k + 1).unwrap_or(0)
        }
    }

    /// Whether round `k` of `q` is active under the scenario's traffic
    /// phases (always, without a scenario). A pure function of the
    /// compiled schedule, so every node agrees without signalling.
    fn round_is_active(&self, q: &Query, k: u64) -> bool {
        match &self.scenario {
            Some(s) => s.round_active(q.round_start(k), k),
            None => true,
        }
    }

    /// Deterministic synthetic sensor reading.
    fn reading(node: NodeId, k: u64) -> AggState {
        AggState::from_reading(((node.index() as u64 * 31 + k * 7) % 101) as f64)
    }

    // ------------------------------------------------------------------
    // MAC plumbing
    // ------------------------------------------------------------------

    fn exec_mac_actions(
        &mut self,
        node: NodeId,
        actions: Vec<MacAction<Payload>>,
        ctx: &mut Context<'_, Ev>,
    ) {
        for action in actions {
            match action {
                MacAction::SetTimer { kind, gen, after } => {
                    ctx.schedule_after(after, Ev::MacTimer { node, kind, gen });
                }
                MacAction::StartTx { frame, airtime } => {
                    let start = self.channel.begin_tx(ctx.now(), node, airtime);
                    for i in 0..start.now_busy.len() {
                        let h = start.now_busy[i];
                        let hn = &mut self.nodes[h.index()];
                        if !hn.dead && hn.radio.is_active() {
                            let acts = hn.mac.carrier_busy(ctx.now());
                            self.exec_mac_actions(h, acts, ctx);
                        }
                    }
                    self.channel.recycle_nodes(start.now_busy);
                    ctx.schedule_after(
                        airtime,
                        Ev::TxEnd {
                            sender: node,
                            tx: start.id,
                            frame,
                        },
                    );
                }
                MacAction::Deliver { frame } => self.handle_delivery(node, frame, ctx),
                MacAction::TxDone { frame, .. } => self.handle_tx_done(node, frame, ctx),
                MacAction::TxFailed { frame, .. } => self.handle_tx_failed(node, frame, ctx),
            }
        }
    }

    fn enqueue_frame(&mut self, node: NodeId, frame: Frame<Payload>, ctx: &mut Context<'_, Ev>) {
        let actions = self.nodes[node.index()].mac.enqueue(frame, ctx.now());
        self.exec_mac_actions(node, actions, ctx);
    }

    // ------------------------------------------------------------------
    // Round lifecycle
    // ------------------------------------------------------------------

    fn open_round(&mut self, node: NodeId, qi: usize, k: u64, ctx: &mut Context<'_, Ev>) -> bool {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        {
            let n = &self.nodes[node.index()];
            if n.rounds.contains_key(&key) {
                return true;
            }
            if n.done.get(&qi).map(|&d| k <= d).unwrap_or(false) {
                return false; // round already finished
            }
        }
        let expected = self.nodes[node.index()]
            .expected_children
            .get(&qi)
            .cloned()
            .unwrap_or_default();
        let deadline = if expected.is_empty() {
            None
        } else {
            Some(self.collection_deadline(node, qi, k))
        };
        let n = &mut self.nodes[node.index()];
        let state = RoundState {
            agg: RoundAggregator::new(&expected),
            timeout_gen: 0,
            deadline,
            piggyback: None,
            release_planned: false,
        };
        n.rounds.insert(key, state);
        if let Some(d) = deadline {
            ctx.schedule_at(
                d.max(ctx.now()),
                Ev::CollectionTimeout {
                    node,
                    query: qi,
                    round: k,
                    gen: 0,
                },
            );
        }
        true
    }

    /// The collection deadline under the node's power manager. ESSAT
    /// modes use their shaper's §4.3 rule; fixed-schedule baselines need
    /// roughly one schedule period per subtree level.
    fn collection_deadline(&mut self, node: NodeId, qi: usize, k: u64) -> SimTime {
        let q = self.query(qi);
        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let info = TreeInfo {
            own_rank,
            max_rank,
            own_level,
            max_level,
            children: &kids,
        };
        let deadline = match &self.nodes[node.index()].mode {
            Mode::Essat { shaper, .. } => shaper.collection_deadline(&q, k, &info),
            Mode::Sync => {
                q.round_start(k)
                    + self.sync_schedule.period() * (own_rank as u64 + 1)
                    + SimDuration::from_millis(50)
            }
            Mode::Psm => {
                q.round_start(k)
                    + self.psm_schedule.beacon_period() * (own_rank as u64 + 1)
                    + SimDuration::from_millis(50)
            }
            Mode::AlwaysOn => {
                // NTS's rank-proportional rule works for always-on nodes.
                Nts::new().collection_deadline(&q, k, &info)
            }
        };
        self.put_kids(kids);
        deadline
    }

    fn handle_round_start(&mut self, node: NodeId, qi: usize, k: u64, ctx: &mut Context<'_, Ev>) {
        {
            let n = &self.nodes[node.index()];
            if n.dead || !n.participating.contains(&qi) {
                return;
            }
        }
        {
            // Churn recovery can re-arm a chain whose old event is
            // still pending; the per-query cursor drops duplicates.
            let n = &mut self.nodes[node.index()];
            let next = n.next_round.entry(qi).or_insert(0);
            if k < *next {
                return;
            }
            *next = k + 1;
        }
        let q = self.query(qi);
        if self.round_is_active(&q, k) {
            if self.open_round(node, qi, k, ctx) && self.is_source(node, qi) {
                let key = RoundKey {
                    query: q.id,
                    round: k,
                };
                let reading = Self::reading(node, k);
                if let Some(r) = self.nodes[node.index()].rounds.get_mut(&key) {
                    r.agg.add_own(reading);
                }
            }
            self.maybe_complete(node, qi, k, ctx);
        } else {
            self.skip_round(node, qi, k, ctx);
        }
        // Chain the next round.
        let next = q.round_start(k + 1);
        if next < self.run_end {
            ctx.schedule_at(
                next,
                Ev::RoundStart {
                    node,
                    query: qi,
                    round: k + 1,
                },
            );
        }
        self.reconsider_sleep(node, ctx);
    }

    /// A traffic-phase-silenced round: nothing is sampled, collected,
    /// or sent — but ESSAT expectations must still advance past the
    /// round, or Safe Sleep would pin the node awake on a stale past
    /// expectation for the rest of the quiet phase.
    fn skip_round(&mut self, node: NodeId, qi: usize, k: u64, ctx: &mut Context<'_, Ev>) {
        let q = self.query(qi);
        let is_root = node == self.root;
        let expected = self.nodes[node.index()]
            .expected_children
            .get(&qi)
            .cloned()
            .unwrap_or_default();
        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let _ = ctx;
        let n = &mut self.nodes[node.index()];
        // Mark the round finished so a straggler report cannot reopen it.
        n.done
            .entry(qi)
            .and_modify(|d| *d = (*d).max(k))
            .or_insert(k);
        if let Mode::Essat { shaper, ss } = &mut n.mode {
            let info = TreeInfo {
                own_rank,
                max_rank,
                own_level,
                max_level,
                children: &kids,
            };
            for &c in &expected {
                let rnext = shaper.child_timed_out(&q, c, k, &info);
                ss.update_next_receive(q.id, c, rnext);
            }
            if !is_root {
                let snext = shaper.round_skipped(&q, k, &info);
                ss.update_next_send(q.id, snext);
            }
        }
        if !n.dead && !n.radio.is_active() {
            // The radio is mid-turn-on for the expectation we just
            // moved; have the wake-up completion re-run checkState.
            n.recheck_on_wake = true;
        }
        self.put_kids(kids);
    }

    /// Checks readiness and plans the release when ready.
    fn maybe_complete(&mut self, node: NodeId, qi: usize, k: u64, ctx: &mut Context<'_, Ev>) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let ready = {
            let n = &self.nodes[node.index()];
            match n.rounds.get(&key) {
                None => false,
                Some(r) => {
                    !r.release_planned
                        && r.agg.children_complete()
                        && (!self.is_source(node, qi) || r.agg.own_added())
                }
            }
        };
        if !ready {
            return;
        }
        self.finish_round(node, qi, k, true, ctx);
    }

    /// Completes a round: at the root, record metrics; elsewhere, plan
    /// the report release. `full` is false on the timeout path.
    fn finish_round(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        full: bool,
        ctx: &mut Context<'_, Ev>,
    ) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let now = ctx.now();
        if node == self.root {
            let Some(mut r) = self.nodes[node.index()].rounds.remove(&key) else {
                return;
            };
            let agg = r.agg.seal();
            let n = &mut self.nodes[node.index()];
            n.done
                .entry(qi)
                .and_modify(|d| *d = (*d).max(k))
                .or_insert(k);
            // "Full" means every expected source reading arrived — the
            // root's children being complete is not enough, since their
            // aggregates may themselves be partial.
            let full = full && agg.count() == self.source_count[qi];
            let latency_s = (now - q.round_start(k)).as_secs_f64().max(0.0);
            let qm = &mut self.qmetrics[qi];
            qm.latency.add(latency_s);
            qm.rounds_completed += 1;
            if full {
                qm.rounds_full += 1;
            }
            qm.delivered_readings += agg.count();
            qm.expected_readings += self.source_count[qi];
            qm.records.push(crate::metrics::RoundRecord {
                round: k,
                at: now,
                latency_s,
                full,
                readings: agg.count(),
            });
            return;
        }
        // Non-root: plan the release according to the power manager.
        let mut send_now = false;
        let mut send_at = now;
        {
            let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
            let n = &mut self.nodes[node.index()];
            let Some(r) = n.rounds.get_mut(&key) else {
                self.put_kids(kids);
                return;
            };
            r.release_planned = true;
            match &mut n.mode {
                Mode::Essat { shaper, .. } => {
                    let info = TreeInfo {
                        own_rank,
                        max_rank,
                        own_level,
                        max_level,
                        children: &kids,
                    };
                    let rel = shaper.release(&q, k, now, &info);
                    r.piggyback = rel.piggyback;
                    if rel.send_at <= now {
                        send_now = true;
                    } else {
                        send_at = rel.send_at;
                    }
                }
                Mode::Sync => {
                    let at = self.sync_schedule.next_active_start(now);
                    if at <= now {
                        send_now = true;
                    } else {
                        send_at = at;
                    }
                }
                Mode::Psm | Mode::AlwaysOn => {
                    send_now = true; // PSM buffering happens in do_send
                }
            }
            self.put_kids(kids);
        }
        if send_now {
            self.do_send(node, qi, k, ctx);
        } else {
            ctx.schedule_at(
                send_at,
                Ev::ReleaseReport {
                    node,
                    query: qi,
                    round: k,
                },
            );
        }
    }

    /// Seals the round and hands the report towards the parent.
    fn do_send(&mut self, node: NodeId, qi: usize, k: u64, ctx: &mut Context<'_, Ev>) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let Some(parent) = self.tree.parent(node) else {
            // Detached from the tree (declared failed): drop silently.
            self.nodes[node.index()].rounds.remove(&key);
            return;
        };
        let (agg, piggyback) = {
            let n = &mut self.nodes[node.index()];
            let Some(r) = n.rounds.get_mut(&key) else {
                return;
            };
            (r.agg.seal(), r.piggyback)
        };
        {
            let n = &mut self.nodes[node.index()];
            n.done
                .entry(qi)
                .and_modify(|d| *d = (*d).max(k))
                .or_insert(k);
        }
        if piggyback.is_some() {
            self.phase_piggybacks += 1;
        }
        let frame = {
            let n = &mut self.nodes[node.index()];
            Frame {
                id: n.mac.alloc_frame_id(),
                src: node,
                dest: Dest::Unicast(parent),
                kind: FrameKind::Data,
                bytes: PAPER_REPORT_BYTES,
                payload: Payload::Report {
                    query: q.id,
                    round: k,
                    agg,
                    piggyback,
                },
            }
        };
        if matches!(self.nodes[node.index()].mode, Mode::Psm) {
            self.psm_buffer_frame(node, parent, frame, ctx);
        } else {
            self.enqueue_frame(node, frame, ctx);
        }
    }

    fn handle_collection_timeout(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        gen: u64,
        ctx: &mut Context<'_, Ev>,
    ) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let missing = {
            let n = &self.nodes[node.index()];
            match n.rounds.get(&key) {
                None => return,
                Some(r) if r.timeout_gen != gen || r.release_planned => return,
                Some(r) => r.agg.missing(),
            }
        };
        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let mut failed_children = Vec::new();
        {
            let n = &mut self.nodes[node.index()];
            for &c in &missing {
                if let Mode::Essat { shaper, ss } = &mut n.mode {
                    let info = TreeInfo {
                        own_rank,
                        max_rank,
                        own_level,
                        max_level,
                        children: &kids,
                    };
                    let rnext = shaper.child_timed_out(&q, c, k, &info);
                    ss.update_next_receive(q.id, c, rnext);
                }
                if n.child_fail.miss(c) {
                    failed_children.push(c);
                }
            }
        }
        self.put_kids(kids);
        for c in failed_children {
            if self.tree.is_member(c) && self.tree.parent(c) == Some(node) {
                self.repair_tree(c, ctx);
            }
        }
        // Forward the partial aggregate (§4.3).
        self.finish_round(node, qi, k, false, ctx);
        self.reconsider_sleep(node, ctx);
    }

    // ------------------------------------------------------------------
    // Frame handling
    // ------------------------------------------------------------------

    fn handle_delivery(&mut self, node: NodeId, frame: Frame<Payload>, ctx: &mut Context<'_, Ev>) {
        if self.nodes[node.index()].dead {
            return;
        }
        match frame.payload {
            Payload::Report {
                query,
                round,
                agg,
                piggyback,
            } => {
                self.handle_report(node, frame.src, query, round, agg, piggyback, ctx);
            }
            Payload::PhaseUpdateRequest { query } => {
                let qi = query.index();
                let q = self.query(qi);
                if let Mode::Essat { shaper, .. } = &mut self.nodes[node.index()].mode {
                    shaper.on_phase_update_request(&q);
                }
            }
            Payload::Atim => {
                let n = &mut self.nodes[node.index()];
                n.psm_beacon.atim_received(frame.src);
            }
            Payload::QuerySetup { query, hops } => {
                self.handle_query_setup(node, query.index(), hops, ctx);
            }
            Payload::Empty => {}
        }
        self.reconsider_sleep(node, ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_report(
        &mut self,
        node: NodeId,
        child: NodeId,
        query: QueryId,
        k: u64,
        agg: AggState,
        piggyback: Option<SimTime>,
        ctx: &mut Context<'_, Ev>,
    ) {
        let qi = query.index();
        let q = self.query(qi);
        if !self.nodes[node.index()].participating.contains(&qi) {
            return;
        }
        // Resurrection: a child we removed is still alive — restore it.
        if self.tree.children(node).contains(&child) {
            let n = &mut self.nodes[node.index()];
            let kids = n.expected_children.entry(qi).or_default();
            if !kids.contains(&child) {
                kids.push(child);
                kids.sort_unstable();
            }
        } else if !self.nodes[node.index()]
            .expected_children
            .get(&qi)
            .map(|v| v.contains(&child))
            .unwrap_or(false)
        {
            return; // stranger (stale sender after re-parenting)
        }

        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let now = ctx.now();
        {
            let n = &mut self.nodes[node.index()];
            let obs = n.loss.observe(query, child, k);
            n.child_fail.heard_from(child);
            // §4.3 phase resynchronisation bookkeeping.
            if piggyback.is_some() {
                n.stale_phase.remove(&(qi, child));
            }
            let wants_resync = match &n.mode {
                Mode::Essat { shaper, .. } => shaper.wants_phase_resync(),
                _ => false,
            };
            if wants_resync {
                let gap = matches!(obs, LossObservation::Gap { .. });
                if gap && piggyback.is_none() {
                    n.stale_phase.insert((qi, child));
                }
                if n.stale_phase.contains(&(qi, child)) {
                    // Ask for a phase update on the ACK we are about to
                    // send (the paper's piggyback-in-ACK mechanism).
                    n.mac
                        .prime_ack_note(child, Payload::PhaseUpdateRequest { query });
                    self.phase_requests += 1;
                }
            }
            if let Mode::Essat { shaper, ss } = &mut n.mode {
                let info = TreeInfo {
                    own_rank,
                    max_rank,
                    own_level,
                    max_level,
                    children: &kids,
                };
                let rnext = shaper.after_receive(&q, child, k, now, piggyback, &info);
                ss.update_next_receive(query, child, rnext);
            }
        }
        self.put_kids(kids);
        // Fold into the round (unless it already finished).
        if self.open_round(node, qi, k, ctx) {
            let key = RoundKey { query, round: k };
            let n = &mut self.nodes[node.index()];
            if let Some(r) = n.rounds.get_mut(&key) {
                r.agg.add_child(child, agg);
            }
        }
        // A fresher expectation may move open collection deadlines
        // (DTS learns child phases): re-derive for k and k+1.
        for kk in [k, k + 1] {
            self.refresh_deadline(node, qi, kk, ctx);
        }
        self.maybe_complete(node, qi, k, ctx);
    }

    /// Re-derives the collection deadline of an open, unreleased round
    /// and reschedules its timeout if it moved.
    fn refresh_deadline(&mut self, node: NodeId, qi: usize, k: u64, ctx: &mut Context<'_, Ev>) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let current = {
            let n = &self.nodes[node.index()];
            match n.rounds.get(&key) {
                Some(r) if !r.release_planned && r.deadline.is_some() => r.deadline,
                _ => return,
            }
        };
        let fresh = self.collection_deadline(node, qi, k);
        if Some(fresh) != current {
            let n = &mut self.nodes[node.index()];
            let r = n.rounds.get_mut(&key).expect("checked above");
            r.deadline = Some(fresh);
            r.timeout_gen += 1;
            let gen = r.timeout_gen;
            ctx.schedule_at(
                fresh.max(ctx.now()),
                Ev::CollectionTimeout {
                    node,
                    query: qi,
                    round: k,
                    gen,
                },
            );
        }
    }

    fn handle_tx_done(&mut self, node: NodeId, frame: Frame<Payload>, ctx: &mut Context<'_, Ev>) {
        match frame.payload {
            Payload::Report { query, round, .. } => {
                self.reports_sent += 1;
                let qi = query.index();
                let q = self.query(qi);
                let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
                let parent = self.tree.parent(node);
                let now = ctx.now();
                let n = &mut self.nodes[node.index()];
                if let Some(p) = parent {
                    n.parent_fail.heard_from(p);
                }
                if let Mode::Essat { shaper, ss } = &mut n.mode {
                    let info = TreeInfo {
                        own_rank,
                        max_rank,
                        own_level,
                        max_level,
                        children: &kids,
                    };
                    let snext = shaper.after_send(&q, round, now, &info);
                    ss.update_next_send(query, snext);
                }
                n.rounds.remove(&RoundKey { query, round });
                self.put_kids(kids);
            }
            Payload::Atim => {
                if let Dest::Unicast(dest) = frame.dest {
                    self.psm_announce_confirmed(node, dest, ctx);
                }
            }
            _ => {}
        }
        self.reconsider_sleep(node, ctx);
    }

    fn handle_tx_failed(&mut self, node: NodeId, frame: Frame<Payload>, ctx: &mut Context<'_, Ev>) {
        match frame.payload {
            Payload::Report { query, round, .. } => {
                let qi = query.index();
                let q = self.query(qi);
                let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
                let now = ctx.now();
                let mut parent_failed = None;
                {
                    let n = &mut self.nodes[node.index()];
                    // The schedule advances regardless (the round is lost).
                    if let Mode::Essat { shaper, ss } = &mut n.mode {
                        let info = TreeInfo {
                            own_rank,
                            max_rank,
                            own_level,
                            max_level,
                            children: &kids,
                        };
                        let snext = shaper.after_send(&q, round, now, &info);
                        ss.update_next_send(query, snext);
                        // A failed exchange usually means the parent was
                        // not listening when we expected it to be — our
                        // phases have diverged. Advertise ours on the
                        // next report so the parent can re-arm (§4.3).
                        if shaper.wants_phase_resync() {
                            shaper.on_phase_update_request(&q);
                        }
                    }
                    n.rounds.remove(&RoundKey { query, round });
                    if let Dest::Unicast(p) = frame.dest {
                        if n.parent_fail.miss(p) {
                            parent_failed = Some(p);
                        }
                    }
                }
                self.put_kids(kids);
                if let Some(p) = parent_failed {
                    if self.tree.is_member(p) && p != self.root {
                        self.repair_tree(p, ctx);
                    }
                }
            }
            Payload::Atim => { /* re-announced next beacon */ }
            _ => {}
        }
        self.reconsider_sleep(node, ctx);
    }

    fn handle_query_setup(
        &mut self,
        node: NodeId,
        qi: usize,
        hops: u32,
        ctx: &mut Context<'_, Ev>,
    ) {
        let n = &self.nodes[node.index()];
        if n.dead || !n.member || n.registered.contains(&qi) {
            return;
        }
        if let Some((round, at)) = self.register_query_at(node, qi, ctx.now()) {
            ctx.schedule_at(
                at.max(ctx.now()),
                Ev::RoundStart {
                    node,
                    query: qi,
                    round,
                },
            );
        } else {
            // Still mark as seen so we only rebroadcast once.
            self.nodes[node.index()].registered.insert(qi);
        }
        // Re-flood once.
        let frame = {
            let n = &mut self.nodes[node.index()];
            Frame {
                id: n.mac.alloc_frame_id(),
                src: node,
                dest: Dest::Broadcast,
                kind: FrameKind::Data,
                bytes: sizes::QUERY_SETUP_BYTES,
                payload: Payload::QuerySetup {
                    query: QueryId::new(qi as u32),
                    hops: hops + 1,
                },
            }
        };
        self.enqueue_frame(node, frame, ctx);
    }

    // ------------------------------------------------------------------
    // Radio control
    // ------------------------------------------------------------------

    /// ESSAT sleep re-evaluation (`checkState` call sites).
    fn reconsider_sleep(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        if !self.setup_over || self.in_forced_window(ctx.now()) {
            return;
        }
        let now = ctx.now();
        let n = &mut self.nodes[node.index()];
        if n.dead || !n.radio.is_active() || !n.mac.is_quiescent() {
            return;
        }
        let Mode::Essat { ss, .. } = &n.mode else {
            return;
        };
        match ss.decide(now) {
            SleepDecision::Sleep { start_wake_at, .. } => {
                if start_wake_at <= now + n.radio.params().turn_off {
                    return; // no room to complete the off transition
                }
                n.mac.radio_slept(now);
                let d = n.radio.begin_sleep(now).expect("radio is active");
                ctx.schedule_after(d, Ev::RadioDone { node });
                n.wake_gen += 1;
                let gen = n.wake_gen;
                ctx.schedule_at(start_wake_at, Ev::RadioWake { node, gen });
            }
            SleepDecision::Unconstrained => {
                // No queries routed through this node: sleep until poked.
                n.mac.radio_slept(now);
                let d = n.radio.begin_sleep(now).expect("radio is active");
                ctx.schedule_after(d, Ev::RadioDone { node });
                n.wake_gen += 1;
            }
            SleepDecision::Busy | SleepDecision::StayAwake { .. } => {}
        }
    }

    /// After a repair touched a sleeping node's expectations, re-arm its
    /// wake-up.
    fn refresh_wake(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let n = &mut self.nodes[node.index()];
        if n.dead {
            return;
        }
        let Mode::Essat { ss, .. } = &n.mode else {
            return;
        };
        if n.radio.is_active() {
            return; // awake: normal event flow handles it
        }
        let Some(earliest) = ss.earliest() else {
            return;
        };
        n.wake_gen += 1;
        let gen = n.wake_gen;
        let at = earliest.saturating_sub(n.radio.params().turn_on).max(now);
        ctx.schedule_at(at, Ev::RadioWake { node, gen });
    }

    /// Begin waking the radio if it is off (or queue the wake if it is
    /// mid-transition).
    fn wake_radio(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let n = &mut self.nodes[node.index()];
        if n.dead {
            return;
        }
        if n.radio.is_off() {
            let d = n.radio.begin_wake(now).expect("radio is off");
            ctx.schedule_after(d, Ev::RadioDone { node });
        } else {
            // Active / turning on: nothing. Turning off: queue the wake.
            let _ = n.radio.begin_wake(now);
        }
    }

    fn handle_radio_done(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        if self.nodes[node.index()].dead {
            return;
        }
        let outcome = self.nodes[node.index()].radio.finish_transition(now);
        match outcome {
            TransitionOutcome::NowOff => {}
            TransitionOutcome::NowActive => {
                let busy = self.channel.carrier_busy(node);
                let actions = self.nodes[node.index()].mac.radio_woke(now, busy);
                self.exec_mac_actions(node, actions, ctx);
                // A traffic-phase-skipped round advanced this node's
                // expectations while the radio was still turning on for
                // them; re-run checkState now that it is active so the
                // node sleeps through the quiet round instead of idling
                // until the next event.
                if self.nodes[node.index()].recheck_on_wake {
                    self.nodes[node.index()].recheck_on_wake = false;
                    self.reconsider_sleep(node, ctx);
                }
            }
            TransitionOutcome::OffWakeQueued => {
                let n = &mut self.nodes[node.index()];
                let d = n.radio.begin_wake(now).expect("just turned off");
                ctx.schedule_after(d, Ev::RadioDone { node });
            }
        }
    }

    fn handle_radio_wake(&mut self, node: NodeId, gen: u64, ctx: &mut Context<'_, Ev>) {
        {
            let n = &self.nodes[node.index()];
            if n.dead || gen != n.wake_gen {
                return;
            }
        }
        self.wake_radio(node, ctx);
    }

    /// Baseline (SYNC/PSM) sleep attempt at a schedule boundary.
    fn try_mode_sleep(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        if !self.setup_over || self.in_forced_window(ctx.now()) {
            return;
        }
        let now = ctx.now();
        let sync = self.sync_schedule;
        let psm = self.psm_schedule;
        let n = &mut self.nodes[node.index()];
        if n.dead || !n.radio.is_active() || !n.mac.can_suspend() {
            return;
        }
        let may_sleep = match &n.mode {
            Mode::Sync => !sync.is_active(now),
            Mode::Psm => {
                if psm.in_atim_window(now) {
                    false
                } else if psm.in_adv_window(now) {
                    !n.psm_beacon.must_stay_awake()
                } else {
                    true
                }
            }
            _ => false,
        };
        if may_sleep {
            n.mac.radio_slept(now);
            let d = n.radio.begin_sleep(now).expect("radio is active");
            ctx.schedule_after(d, Ev::RadioDone { node });
        }
    }

    // ------------------------------------------------------------------
    // SYNC / PSM schedules
    // ------------------------------------------------------------------

    fn handle_sync_edge(&mut self, node: NodeId, gen: u64, ctx: &mut Context<'_, Ev>) {
        {
            let n = &self.nodes[node.index()];
            if n.dead || gen != n.sched_gen {
                return;
            }
        }
        let now = ctx.now();
        if self.sync_schedule.is_active(now) {
            self.wake_radio(node, ctx);
        } else {
            self.try_mode_sleep(node, ctx);
        }
        let next = self.sync_schedule.next_edge(now);
        if next < self.run_end {
            ctx.schedule_at(next, Ev::SyncEdge { node, gen });
        }
    }

    fn handle_psm_beacon(&mut self, node: NodeId, gen: u64, ctx: &mut Context<'_, Ev>) {
        {
            let n = &self.nodes[node.index()];
            if n.dead || gen != n.sched_gen {
                return;
            }
        }
        let now = ctx.now();
        self.wake_radio(node, ctx);
        let dests: Vec<NodeId> = {
            let n = &mut self.nodes[node.index()];
            n.psm_beacon.reset();
            n.psm_pending.keys().copied().collect()
        };
        for dest in dests {
            self.psm_announce(node, dest, ctx);
        }
        ctx.schedule_at(self.psm_schedule.atim_end(now), Ev::PsmAtimEnd { node });
        let next = self.psm_schedule.next_beacon(now);
        if next < self.run_end {
            ctx.schedule_at(next, Ev::PsmBeacon { node, gen });
        }
    }

    fn psm_announce(&mut self, node: NodeId, dest: NodeId, ctx: &mut Context<'_, Ev>) {
        let frame = {
            let n = &mut self.nodes[node.index()];
            if !n.psm_beacon.announce(dest) {
                return; // already announced this beacon
            }
            Frame {
                id: n.mac.alloc_frame_id(),
                src: node,
                dest: Dest::Unicast(dest),
                kind: FrameKind::Data,
                bytes: ATIM_BYTES,
                payload: Payload::Atim,
            }
        };
        self.enqueue_frame(node, frame, ctx);
    }

    fn psm_announce_confirmed(&mut self, node: NodeId, dest: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        self.nodes[node.index()].psm_beacon.announce_confirmed(dest);
        let atim_end = self.psm_schedule.atim_end(now);
        if now >= atim_end {
            self.psm_release(node, dest, ctx);
        } else {
            ctx.schedule_at(atim_end, Ev::PsmRelease { node, dest });
        }
    }

    fn psm_release(&mut self, node: NodeId, dest: NodeId, ctx: &mut Context<'_, Ev>) {
        let frames = {
            let n = &mut self.nodes[node.index()];
            if n.dead || !n.psm_beacon.may_send_to(dest) {
                return;
            }
            n.psm_pending.remove(&dest).unwrap_or_default()
        };
        for f in frames {
            self.enqueue_frame(node, f, ctx);
        }
    }

    fn psm_buffer_frame(
        &mut self,
        node: NodeId,
        dest: NodeId,
        frame: Frame<Payload>,
        ctx: &mut Context<'_, Ev>,
    ) {
        let now = ctx.now();
        let psm = self.psm_schedule;
        let (announce, direct) = {
            let n = &mut self.nodes[node.index()];
            let confirmed = n.psm_beacon.may_send_to(dest);
            if confirmed && now >= psm.atim_end(now) && now < psm.adv_end(now) {
                (false, true) // already cleared for this beacon
            } else {
                n.psm_pending.entry(dest).or_default().push(frame);
                (psm.in_atim_window(now), false)
            }
        };
        if direct {
            self.enqueue_frame(node, frame, ctx);
        } else if announce {
            self.psm_announce(node, dest, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Failures and repair (§4.3)
    // ------------------------------------------------------------------

    fn handle_node_fail(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        self.kill_node(node, ctx.now());
        // Detectors at the neighbours drive the repair.
    }

    /// Marks `node` dead at `now` (scripted failure, churn, or battery
    /// depletion), settles its energy accounting, and records the
    /// network-lifetime marks.
    fn kill_node(&mut self, node: NodeId, now: SimTime) {
        {
            let n = &mut self.nodes[node.index()];
            if n.dead {
                return;
            }
            n.dead = true;
            n.died_at = Some(now);
            n.radio.settle(now);
        }
        if self.nodes[node.index()].member {
            self.lifetime.deaths.push((now, node));
            if self.lifetime.first_death.is_none() {
                self.lifetime.first_death = Some(now);
            }
            if self.lifetime.partition.is_none() && self.is_partitioned() {
                self.lifetime.partition = Some(now);
            }
        }
    }

    /// True once some live tree member has no path of live nodes to the
    /// root (or the root itself is dead) — the lifetime figure's
    /// "time to partition" mark. Only evaluated on deaths, so the BFS
    /// cost is negligible.
    fn is_partitioned(&self) -> bool {
        if self.nodes[self.root.index()].dead {
            return true;
        }
        let alive: Vec<NodeId> = self
            .topo
            .nodes()
            .filter(|&m| self.nodes[m.index()].member && !self.nodes[m.index()].dead)
            .collect();
        !self.topo.is_connected_subset(self.root, &alive)
    }

    /// Scenario churn recovery. The node comes back with a fresh MAC
    /// and an `Active` radio (its spent battery is *not* refilled) and
    /// re-enters the tree: in place if the failure detectors never
    /// removed it, otherwise as a leaf under its best live neighbour
    /// (an idealised re-join — §4.3 only specifies departure repair).
    fn handle_node_recover(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        if !self.nodes[node.index()].dead {
            return;
        }
        // Fresh lower layers; the MAC RNG gets a new derived stream per
        // revival so replays stay deterministic.
        let mac_rng = {
            let revival = self.nodes[node.index()].revivals + 1;
            let stream = node.as_u32() as u64 + self.cfg.nodes as u64 * revival;
            self.master.derive2(4, stream)
        };
        {
            let n = &mut self.nodes[node.index()];
            n.dead = false;
            n.died_at = None;
            n.revivals += 1;
            n.radio.resurrect(now);
            let old = std::mem::replace(&mut n.mac, Mac::new(node, self.cfg.mac, mac_rng));
            let ms = old.stats();
            self.mac_lost.enqueued += ms.enqueued;
            self.mac_lost.data_tx += ms.data_tx;
            self.mac_lost.delivered += ms.delivered;
            self.mac_lost.failed += ms.failed;
            self.mac_lost.retries += ms.retries;
            n.rounds.clear();
            n.psm_pending.clear();
            n.psm_beacon = PsmBeaconState::new();
            n.loss = LossDetector::new();
            n.child_fail = FailureDetector::new(CHILD_FAIL_THRESHOLD);
            n.parent_fail = FailureDetector::new(PARENT_FAIL_THRESHOLD);
            n.stale_phase.clear();
            n.recheck_on_wake = false;
        }
        self.lifetime.recoveries += 1;
        if self.nodes[node.index()].member {
            if self.tree.is_member(node) {
                // Still in the tree: resume schedules where they stand.
                self.refresh_node_schedule(node, now);
                self.restart_round_chains(node, ctx);
            } else {
                self.rejoin_tree(node, ctx);
            }
        }
        // Re-arm the baseline schedule chain (it stopped at death).
        {
            let n = &mut self.nodes[node.index()];
            n.sched_gen += 1;
            let gen = n.sched_gen;
            match n.mode {
                Mode::Sync => {
                    ctx.schedule_at(
                        self.sync_schedule.next_edge(now),
                        Ev::SyncEdge { node, gen },
                    );
                }
                Mode::Psm => {
                    ctx.schedule_at(
                        self.psm_schedule.next_beacon(now),
                        Ev::PsmBeacon { node, gen },
                    );
                }
                _ => {}
            }
        }
        if !self.nodes[node.index()].member {
            // Never part of the tree: revive and go straight back to
            // sleep, as after setup.
            let n = &mut self.nodes[node.index()];
            if self.setup_over && n.radio.is_active() && n.mac.can_suspend() {
                n.mac.radio_slept(now);
                let d = n.radio.begin_sleep(now).expect("active");
                ctx.schedule_after(d, Ev::RadioDone { node });
            }
            return;
        }
        self.reconsider_sleep(node, ctx);
    }

    /// Restarts the per-query round chains of a revived node from the
    /// next round boundary (the chains break while a node is dead).
    fn restart_round_chains(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let qis: Vec<usize> = self.nodes[node.index()]
            .participating
            .iter()
            .copied()
            .collect();
        for qi in qis {
            let q = self.query(qi);
            let k0 = Self::next_round_at(&q, now);
            self.refuse_rounds_before(node, qi, k0);
            let at = q.round_start(k0);
            if at < self.run_end {
                ctx.schedule_at(
                    at.max(now),
                    Ev::RoundStart {
                        node,
                        query: qi,
                        round: k0,
                    },
                );
            }
        }
    }

    /// A revived node has no data for rounds that began while it was
    /// dead: mark them done so straggler reports cannot reopen them
    /// (which would re-release rounds the shaper already advanced past).
    fn refuse_rounds_before(&mut self, node: NodeId, qi: usize, k0: u64) {
        if k0 == 0 {
            return;
        }
        self.nodes[node.index()]
            .done
            .entry(qi)
            .and_modify(|d| *d = (*d).max(k0 - 1))
            .or_insert(k0 - 1);
    }

    /// Re-attaches a recovered node that the repair machinery had
    /// removed from the tree, then re-registers its queries and
    /// refreshes every node whose schedule the rank changes touch
    /// (mirrors [`World::repair_tree`]).
    fn rejoin_tree(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let old_rank: Vec<u32> = self.topo.nodes().map(|n| self.tree.rank(n)).collect();
        let old_max = self.tree.max_rank();
        let Some(parent) = self.tree.rejoin_node(&self.topo, node) else {
            return; // still cut off; a later recovery may bridge it back
        };
        {
            let n = &mut self.nodes[node.index()];
            n.participating.clear();
            n.expected_children.clear();
            if let Mode::Essat { ss, .. } = &mut n.mode {
                for qi in 0..self.queries.len() {
                    ss.remove_query(QueryId::new(qi as u32));
                }
            }
        }
        for qi in 0..self.queries.len() {
            if let Some((round, at)) = self.register_query_at(node, qi, now) {
                self.refuse_rounds_before(node, qi, round);
                ctx.schedule_at(
                    at.max(now),
                    Ev::RoundStart {
                        node,
                        query: qi,
                        round,
                    },
                );
            }
        }
        let max_changed = self.tree.max_rank() != old_max;
        for m in self.topo.nodes() {
            if m == node || !self.tree.is_member(m) {
                continue;
            }
            let rank_changed = self.tree.rank(m) != old_rank[m.index()];
            let gained_child = parent == m;
            if rank_changed || gained_child || max_changed {
                self.refresh_node_schedule(m, now);
                self.refresh_wake(m, ctx);
            }
        }
    }

    /// The periodic battery sweep: settle accounting and kill nodes
    /// whose cumulative radio energy exceeds the scenario's capacity.
    fn handle_battery_check(&mut self, ctx: &mut Context<'_, Ev>) {
        let Some(b) = self.scenario.as_ref().and_then(|s| s.battery) else {
            return;
        };
        let now = ctx.now();
        let mut depleted = Vec::new();
        for node in self.topo.nodes() {
            let n = &mut self.nodes[node.index()];
            if n.dead {
                continue;
            }
            n.radio.settle(now);
            if n.radio.energy_j() >= b.capacity_j {
                depleted.push(node);
            }
        }
        for node in depleted {
            self.kill_node(node, now);
        }
        let next = now + b.check_period;
        if next < self.run_end {
            ctx.schedule_at(next, Ev::BatteryCheck);
        }
    }

    /// Routing-layer repair after `failed` is declared dead: re-parent
    /// orphans, recompute ranks, and notify every node whose schedule
    /// depends on the topology (§4.3).
    fn repair_tree(&mut self, failed: NodeId, ctx: &mut Context<'_, Ev>) {
        if !self.tree.is_member(failed) || failed == self.root {
            return;
        }
        let now = ctx.now();
        let old_parent = self.tree.parent(failed);
        let old_rank: Vec<u32> = self.topo.nodes().map(|n| self.tree.rank(n)).collect();
        let old_max = self.tree.max_rank();
        let was_member: Vec<bool> = self.topo.nodes().map(|n| self.tree.is_member(n)).collect();
        let moved = self.tree.fail_node(&self.topo, failed);

        // The failed node — and any orphan subtree that could not
        // re-attach and therefore dropped out of the tree — stops
        // participating entirely. Without this, dropped nodes keep
        // running their query machinery against a tree that no longer
        // contains them (or their children).
        for m in self.topo.nodes() {
            if !was_member[m.index()] || self.tree.is_member(m) {
                continue;
            }
            let n = &mut self.nodes[m.index()];
            n.participating.clear();
            n.rounds.clear();
            n.expected_children.clear();
            if let Mode::Essat { ss, .. } = &mut n.mode {
                for qi in 0..self.queries.len() {
                    ss.remove_query(QueryId::new(qi as u32));
                }
            }
        }

        // Its old parent drops every dependency on it.
        if let Some(p) = old_parent {
            let qids: Vec<usize> = self.nodes[p.index()]
                .participating
                .iter()
                .copied()
                .collect();
            for qi in qids {
                let q = self.query(qi);
                let n = &mut self.nodes[p.index()];
                if let Some(kids) = n.expected_children.get_mut(&qi) {
                    kids.retain(|&c| c != failed);
                }
                if let Mode::Essat { shaper, ss } = &mut n.mode {
                    ss.clear_receive(q.id, failed);
                    shaper.remove_child(&q, failed);
                }
                n.loss.remove_child(failed);
                n.child_fail.remove(failed);
                // Unblock open rounds that waited on the failed child.
                let open: Vec<u64> = n
                    .rounds
                    .iter()
                    .filter(|(rk, _)| rk.query == q.id)
                    .map(|(rk, _)| rk.round)
                    .collect();
                for k in open {
                    let key = RoundKey {
                        query: q.id,
                        round: k,
                    };
                    if let Some(r) = self.nodes[p.index()].rounds.get_mut(&key) {
                        r.agg.remove_child(failed);
                    }
                    self.maybe_complete(p, qi, k, ctx);
                }
            }
        }

        // Nodes affected by rank changes or re-parenting refresh their
        // schedules.
        let max_changed = self.tree.max_rank() != old_max;
        for m in self.topo.nodes() {
            if !self.tree.is_member(m) {
                continue;
            }
            let rank_changed = self.tree.rank(m) != old_rank[m.index()];
            let reparented = moved.contains(&m);
            let gained_child = moved.iter().any(|&o| self.tree.parent(o) == Some(m));
            if !(rank_changed || reparented || gained_child || max_changed) {
                continue;
            }
            self.refresh_node_schedule(m, now);
            self.refresh_wake(m, ctx);
        }
    }

    /// Re-derives a node's expected-children lists and shaper/SS state
    /// from the current tree.
    fn refresh_node_schedule(&mut self, node: NodeId, now: SimTime) {
        let is_root = node == self.root;
        let kids_now: Vec<NodeId> = self.tree.children(node).to_vec();
        let (own_rank, max_rank, own_level, max_level, kid_ranks) = self.tree_view(node);
        // Returned to the pool at the end of the function.
        let qids: Vec<usize> = self.nodes[node.index()]
            .participating
            .iter()
            .copied()
            .collect();
        for qi in qids {
            let q = self.query(qi);
            let n = &mut self.nodes[node.index()];
            let old_kids = n.expected_children.insert(qi, kids_now.clone());
            if let Mode::Essat { shaper, ss } = &mut n.mode {
                let info = TreeInfo {
                    own_rank,
                    max_rank,
                    own_level,
                    max_level,
                    children: &kid_ranks,
                };
                ss.retain_children(q.id, &kids_now);
                match shaper.on_topology_change(&q, &info, is_root, now) {
                    Some(exps) => apply_expectations(ss, q.id, &exps, is_root),
                    None => {
                        // NTS/DTS: existing children keep their current
                        // expectations; *new* children (re-parented here)
                        // get a conservative one — the start of the
                        // current round, i.e. "assume busy until the
                        // child's first report re-synchronises us"
                        // (phase shifts only ever delay, so an early
                        // expectation is always safe).
                        let conservative =
                            q.round_at(now).map(|k| q.round_start(k)).unwrap_or(q.phase);
                        for &c in &kids_now {
                            let is_new = old_kids
                                .as_ref()
                                .map(|old| !old.contains(&c))
                                .unwrap_or(true);
                            if is_new {
                                ss.update_next_receive(q.id, c, conservative);
                            }
                        }
                    }
                }
            }
        }
        self.put_kids(kid_ranks);
    }

    // ------------------------------------------------------------------
    // Setup & finalisation
    // ------------------------------------------------------------------

    fn handle_setup_end(&mut self, ctx: &mut Context<'_, Ev>) {
        self.setup_over = true;
        let now = ctx.now();
        // Metrics snapshot (dead radios were settled at death; settling
        // them again would bill the dead span).
        for i in 0..self.nodes.len() {
            let n = &mut self.nodes[i];
            if !n.dead {
                n.radio.settle(now);
            }
            n.snap = RadioSnapshot {
                active: n.radio.active_ns(),
                off: n.radio.off_ns(),
                trans: n.radio.transition_ns(),
                energy: n.radio.energy_j(),
            };
        }
        // First sleep decisions.
        for node in self.topo.nodes().collect::<Vec<_>>() {
            let n = &self.nodes[node.index()];
            if n.dead {
                continue;
            }
            if !n.member {
                // Outside the tree: sleep for the rest of the run.
                let n = &mut self.nodes[node.index()];
                if n.radio.is_active() && n.mac.can_suspend() {
                    n.mac.radio_slept(now);
                    let d = n.radio.begin_sleep(now).expect("active");
                    ctx.schedule_after(d, Ev::RadioDone { node });
                }
                continue;
            }
            match self.nodes[node.index()].mode {
                Mode::Essat { .. } => self.reconsider_sleep(node, ctx),
                Mode::Sync | Mode::Psm => self.try_mode_sleep(node, ctx),
                Mode::AlwaysOn => {}
            }
        }
    }

    fn handle_forced_window_end(&mut self, ctx: &mut Context<'_, Ev>) {
        if !self.setup_over {
            return;
        }
        for node in self.topo.nodes().collect::<Vec<_>>() {
            match self.nodes[node.index()].mode {
                Mode::Essat { .. } => self.reconsider_sleep(node, ctx),
                Mode::Sync | Mode::Psm => self.try_mode_sleep(node, ctx),
                Mode::AlwaysOn => {}
            }
        }
    }

    fn handle_flood_issue(&mut self, qi: usize, ctx: &mut Context<'_, Ev>) {
        let root = self.root;
        if let Some((round, at)) = self.register_query_at(root, qi, ctx.now()) {
            ctx.schedule_at(
                at.max(ctx.now()),
                Ev::RoundStart {
                    node: root,
                    query: qi,
                    round,
                },
            );
        }
        self.nodes[root.index()].registered.insert(qi);
        let frame = {
            let n = &mut self.nodes[root.index()];
            Frame {
                id: n.mac.alloc_frame_id(),
                src: root,
                dest: Dest::Broadcast,
                kind: FrameKind::Data,
                bytes: sizes::QUERY_SETUP_BYTES,
                payload: Payload::QuerySetup {
                    query: QueryId::new(qi as u32),
                    hops: 0,
                },
            }
        };
        self.enqueue_frame(root, frame, ctx);
    }

    fn handle_tx_end(
        &mut self,
        sender: NodeId,
        tx: TxId,
        frame: Frame<Payload>,
        ctx: &mut Context<'_, Ev>,
    ) {
        let now = ctx.now();
        let end = self.channel.end_tx(now, tx);
        for i in 0..end.now_idle.len() {
            let h = end.now_idle[i];
            let hn = &mut self.nodes[h.index()];
            if !hn.dead && hn.radio.is_active() {
                let acts = hn.mac.carrier_idle(now);
                self.exec_mac_actions(h, acts, ctx);
            }
        }
        if !self.nodes[sender.index()].dead {
            let acts = self.nodes[sender.index()].mac.tx_ended(now);
            self.exec_mac_actions(sender, acts, ctx);
        }
        for i in 0..end.clean_receivers.len() {
            let r = end.clean_receivers[i];
            let n = &self.nodes[r.index()];
            if n.dead {
                continue;
            }
            // The receiver must have been awake for the entire frame.
            let awake_whole_frame = n
                .radio
                .active_since()
                .map(|t| t <= end.started)
                .unwrap_or(false);
            if awake_whole_frame {
                // `Frame<Payload>` is `Copy`: the fan-out to receivers
                // is a bitwise copy, not an allocation.
                let acts = self.nodes[r.index()].mac.frame_arrived(frame, now);
                self.exec_mac_actions(r, acts, ctx);
            }
        }
        self.channel.recycle_nodes(end.now_idle);
        self.channel.recycle_nodes(end.clean_receivers);
        self.channel.recycle_nodes(end.corrupted_receivers);
        self.reconsider_sleep(sender, ctx);
    }

    /// Collects the run's metrics.
    fn finalize(mut self, end: SimTime, events_processed: u64, peak_queue_depth: u64) -> RunResult {
        let mut node_metrics = Vec::new();
        let mut sleep_hist = Histogram::new(SLEEP_HIST_BIN_S, SLEEP_HIST_BINS);
        let mut mac = MacTotals::default();
        for i in 0..self.nodes.len() {
            let id = NodeId::new(i as u32);
            let n = &mut self.nodes[i];
            if !n.dead {
                n.radio.settle(end);
            }
            if !n.member {
                continue;
            }
            let active = n.radio.active_ns() - n.snap.active;
            let off = n.radio.off_ns() - n.snap.off;
            let trans = n.radio.transition_ns() - n.snap.trans;
            let total = active + off + trans;
            let duty = if total == 0 {
                1.0
            } else {
                (active + trans) as f64 / total as f64
            };
            node_metrics.push(NodeMetrics {
                node: id,
                rank: n.rank0,
                level: n.level0,
                duty_cycle: duty,
                energy_j: n.radio.energy_j() - n.snap.energy,
            });
            for si in n.radio.sleep_intervals() {
                if si.started >= self.measure_from {
                    sleep_hist.add(si.length().as_secs_f64());
                }
            }
            let ms = n.mac.stats();
            mac.enqueued += ms.enqueued;
            mac.data_tx += ms.data_tx;
            mac.delivered += ms.delivered;
            mac.failed += ms.failed;
            mac.retries += ms.retries;
        }
        // MACs replaced by churn revivals contributed traffic too.
        mac.enqueued += self.mac_lost.enqueued;
        mac.data_tx += self.mac_lost.data_tx;
        mac.delivered += self.mac_lost.delivered;
        mac.failed += self.mac_lost.failed;
        mac.retries += self.mac_lost.retries;
        let ch = self.channel.stats();
        RunResult {
            seed: self.cfg.seed,
            measured_from: self.measure_from,
            measured_until: end,
            nodes: node_metrics,
            queries: std::mem::take(&mut self.qmetrics),
            sleep_intervals: sleep_hist,
            phase_piggybacks: self.phase_piggybacks,
            phase_requests: self.phase_requests,
            reports_sent: self.reports_sent,
            mac,
            lifetime: std::mem::take(&mut self.lifetime),
            channel_transmissions: ch.transmissions,
            channel_collisions: ch.collisions,
            events_processed,
            peak_queue_depth,
        }
    }

    /// The routing tree (tests & examples inspect structure).
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The compiled scenario driving this run, if any (tests record its
    /// trace for replay).
    pub fn scenario(&self) -> Option<&CompiledScenario> {
        self.scenario.as_ref()
    }
}

fn apply_expectations(ss: &mut SafeSleep, q: QueryId, exps: &Expectations, is_root: bool) {
    match exps.snext {
        Some(s) if !is_root => ss.update_next_send(q, s),
        _ => ss.clear_send(q),
    }
    for &(c, r) in &exps.rnext {
        ss.update_next_receive(q, c, r);
    }
}

impl Model for World {
    type Event = Ev;

    fn handle(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        match event {
            Ev::SetupEnd => self.handle_setup_end(ctx),
            Ev::ForcedWindowEnd => self.handle_forced_window_end(ctx),
            Ev::RoundStart { node, query, round } => {
                self.handle_round_start(node, query, round, ctx)
            }
            Ev::CollectionTimeout {
                node,
                query,
                round,
                gen,
            } => self.handle_collection_timeout(node, query, round, gen, ctx),
            Ev::ReleaseReport { node, query, round } => {
                if !self.nodes[node.index()].dead {
                    self.do_send(node, query, round, ctx);
                }
            }
            Ev::MacTimer { node, kind, gen } => {
                if !self.nodes[node.index()].dead {
                    let acts = self.nodes[node.index()]
                        .mac
                        .timer_fired(kind, gen, ctx.now());
                    self.exec_mac_actions(node, acts, ctx);
                    self.reconsider_sleep(node, ctx);
                }
            }
            Ev::TxEnd { sender, tx, frame } => self.handle_tx_end(sender, tx, frame, ctx),
            Ev::RadioDone { node } => self.handle_radio_done(node, ctx),
            Ev::RadioWake { node, gen } => self.handle_radio_wake(node, gen, ctx),
            Ev::SyncEdge { node, gen } => self.handle_sync_edge(node, gen, ctx),
            Ev::PsmBeacon { node, gen } => self.handle_psm_beacon(node, gen, ctx),
            Ev::PsmAtimEnd { node } => {
                let stay = self.nodes[node.index()].psm_beacon.must_stay_awake();
                if stay {
                    ctx.schedule_at(self.psm_schedule.adv_end(ctx.now()), Ev::PsmAdvEnd { node });
                } else {
                    self.try_mode_sleep(node, ctx);
                }
            }
            Ev::PsmAdvEnd { node } => self.try_mode_sleep(node, ctx),
            Ev::PsmRelease { node, dest } => self.psm_release(node, dest, ctx),
            Ev::NodeFail { node } => self.handle_node_fail(node, ctx),
            Ev::NodeRecover { node } => self.handle_node_recover(node, ctx),
            Ev::BatteryCheck => self.handle_battery_check(ctx),
            Ev::FloodIssue { query } => self.handle_flood_issue(query, ctx),
            Ev::ForceWake { node } => self.wake_radio(node, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadSpec;

    fn quick_cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
        cfg.duration = SimDuration::from_secs(12);
        cfg
    }

    #[test]
    fn world_builds_paper_workload() {
        let (world, initial) = World::new(quick_cfg(Protocol::DtsSs, 1));
        assert_eq!(world.queries.len(), 3, "one query per class");
        // Rate ratio 6:3:2.
        let p0 = world.queries[0].period;
        let p1 = world.queries[1].period;
        let p2 = world.queries[2].period;
        assert_eq!(p1, p0 * 2);
        assert_eq!(p2, p0 * 3);
        // Phases within the window.
        for q in &world.queries {
            assert!(q.phase <= SimTime::from_secs(10));
        }
        // Setup end + round starts + (per-protocol chains) scheduled.
        assert!(initial.len() > world.tree.member_count());
        // The tree is rooted near the centre and valid.
        world.tree().check_invariants();
    }

    #[test]
    fn span_assigns_coordinators_always_on() {
        let (world, _) = World::new(quick_cfg(Protocol::Span, 2));
        let mut coordinators = 0;
        let mut leaves = 0;
        for &m in world.tree.members() {
            match &world.nodes[m.index()].mode {
                Mode::AlwaysOn => {
                    coordinators += 1;
                    assert!(!world.tree.is_leaf(m), "coordinators are non-leaves");
                }
                Mode::Essat { shaper, .. } => {
                    leaves += 1;
                    assert_eq!(shaper.kind(), essat_core::shaper::ShaperKind::Nts);
                    assert!(world.tree.is_leaf(m), "sleepers are leaves");
                }
                other => panic!("unexpected mode {other:?}"),
            }
        }
        assert!(coordinators > 0 && leaves > 0);
    }

    #[test]
    fn collection_deadline_mode_specific() {
        let (mut world, _) = World::new(quick_cfg(Protocol::Sync, 3));
        // Pick an interior member.
        let node = world
            .tree
            .members()
            .iter()
            .copied()
            .find(|&m| !world.tree.is_leaf(m))
            .expect("interior node");
        world.nodes[node.index()].participating.insert(0);
        let d_sync = world.collection_deadline(node, 0, 0);
        let q = world.query(0);
        // SYNC: at least one schedule period of grace.
        assert!(d_sync >= q.round_start(0) + world.sync_schedule.period());
    }

    #[test]
    fn readings_are_deterministic() {
        assert_eq!(
            World::reading(NodeId::new(3), 7),
            World::reading(NodeId::new(3), 7)
        );
        assert_ne!(
            World::reading(NodeId::new(3), 7),
            World::reading(NodeId::new(4), 7)
        );
    }

    #[test]
    fn register_skips_childless_nonsources() {
        let (mut world, _) = World::new(quick_cfg(Protocol::DtsSs, 4));
        // With SourceSet::All every member registers...
        let member = world.tree.members()[0];
        // Re-registration for an already-registered query returns the
        // next round time rather than None.
        let at = world.register_query_at(member, 0, SimTime::ZERO);
        assert!(at.is_some());
        // Non-members never register.
        let non_member = world.topo.nodes().find(|&n| !world.tree.is_member(n));
        if let Some(nm) = non_member {
            assert!(world.register_query_at(nm, 0, SimTime::ZERO).is_none());
        }
    }

    #[test]
    fn psm_mode_nodes_buffer_by_destination() {
        let (world, _) = World::new(quick_cfg(Protocol::Psm, 5));
        for &m in world.tree.members() {
            assert!(matches!(world.nodes[m.index()].mode, Mode::Psm));
            assert!(world.nodes[m.index()].psm_pending.is_empty());
        }
    }

    #[test]
    fn run_to_completion_settles_all_radios() {
        let r = World::run(&quick_cfg(Protocol::DtsSs, 6));
        // Every member contributes a node metric with a sane duty cycle.
        assert!(!r.nodes.is_empty());
        for n in &r.nodes {
            assert!((0.0..=1.0).contains(&n.duty_cycle), "{:?}", n);
            assert!(n.energy_j >= 0.0);
        }
        // Time accounting: window matches config.
        assert_eq!(r.measured_until, SimTime::from_secs(12));
    }

    #[test]
    fn forced_windows_only_in_flooded_mode() {
        let (ideal, _) = World::new(quick_cfg(Protocol::DtsSs, 7));
        assert!(ideal.forced_windows.is_empty());
        let mut cfg = quick_cfg(Protocol::DtsSs, 7);
        cfg.setup_mode = SetupMode::Flooded;
        let (flooded, initial) = World::new(cfg);
        assert_eq!(flooded.forced_windows.len(), 3);
        assert!(initial
            .iter()
            .any(|(_, e)| matches!(e, Ev::FloodIssue { .. })));
    }
}
