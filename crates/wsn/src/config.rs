//! Experiment configuration, mirroring the paper's §5 setup.

use essat_core::dts::DtsConfig;
use essat_core::sts::StsConfig;
use essat_net::mac::MacParams;
use essat_net::radio::RadioParams;
use essat_net::topology::{PAPER_NODE_COUNT, PAPER_RANGE_M, PAPER_TREE_RADIUS_M};
use essat_query::aggregate::AggregateOp;
use essat_scenario::spec::Scenario;
use essat_sim::time::{SimDuration, SimTime};

pub use crate::protocol::Protocol;

/// Specification of the periodic query workload.
///
/// The paper simulates three query classes with rate ratio
/// `Q1 : Q2 : Q3 = 6 : 3 : 2` (so Q2 runs at half and Q3 at a third of
/// the base rate), a configurable number of queries per class, and
/// random start times in `[0, 10] s`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Q1's rate in hertz ("base rate").
    pub base_rate_hz: f64,
    /// Queries per class (the paper varies 1–10).
    pub queries_per_class: u32,
    /// Start times are drawn uniformly from `[0, phase_window]`.
    pub phase_window: SimDuration,
    /// Aggregation operator used by every query.
    pub op: AggregateOp,
    /// Deadline override: `None` keeps the paper's `D = P`.
    pub deadline: Option<SimDuration>,
}

impl WorkloadSpec {
    /// The paper's workload at the given base rate with one query per
    /// class.
    pub fn paper(base_rate_hz: f64) -> Self {
        WorkloadSpec {
            base_rate_hz,
            queries_per_class: 1,
            phase_window: SimDuration::from_secs(10),
            op: AggregateOp::Avg,
            deadline: None,
        }
    }

    /// Builder-style override of the queries-per-class count.
    pub fn with_queries_per_class(mut self, n: u32) -> Self {
        self.queries_per_class = n;
        self
    }

    /// Builder-style deadline override (used by the Figure 2 sweep).
    pub fn with_deadline(mut self, d: SimDuration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// The class rates in hertz, ratio 6:3:2.
    pub fn class_rates(&self) -> [f64; 3] {
        [
            self.base_rate_hz,
            self.base_rate_hz * 3.0 / 6.0,
            self.base_rate_hz * 2.0 / 6.0,
        ]
    }

    /// Total number of queries.
    pub fn query_count(&self) -> u32 {
        self.queries_per_class * 3
    }
}

/// The adaptive guard-time knob: extra wake lead and collection-
/// deadline slack protocols spend to tolerate clock desync.
///
/// The guard in effect at schedule time `t` is
/// `base + t · growth_ppm · 10⁻⁶` — a constant floor plus a component
/// that grows with elapsed time, matching how unsynchronised clock
/// error accumulates. Nodes wake `guard` earlier than their scheduled
/// commitments (energy cost, tracked in
/// [`crate::metrics::RunResult::guard_wake_ns`]) and parents hold
/// collection timeouts open `guard` longer (latency cost). The default
/// is zero, which leaves every schedule untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardTime {
    /// Constant guard floor.
    pub base: SimDuration,
    /// Guard growth in parts-per-million of elapsed time (e.g. 100
    /// ppm grows the guard by 100 µs per second of run time).
    pub growth_ppm: u32,
}

impl GuardTime {
    /// No guard at all (the default).
    pub const ZERO: GuardTime = GuardTime {
        base: SimDuration::ZERO,
        growth_ppm: 0,
    };

    /// The guard in effect for a commitment scheduled at `t`.
    pub fn at(&self, t: SimTime) -> SimDuration {
        self.base + SimDuration::from_nanos(t.as_nanos() / 1_000_000 * self.growth_ppm as u64)
    }

    /// True when the guard never changes any schedule.
    pub fn is_zero(&self) -> bool {
        self.base.is_zero() && self.growth_ppm == 0
    }
}

/// The self-healing layer's knobs: link-quality estimation, parent-
/// failure detection backoff, and the deadline-aware retransmission
/// budget.
///
/// All defaults are chosen so a fault-free run is *bit-identical* with
/// repair enabled or disabled: link-quality EWMA updates are pure
/// arithmetic on state nothing reads until a failure is detected, the
/// repair timer only arms after consecutive delivery failures, and the
/// retransmission budget only engages once a MAC retry budget has
/// already been exhausted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Master switch. Disabling reverts to the pre-self-healing
    /// behaviour (synchronous §4.3 repair at detection, no collection-
    /// layer retransmissions); kept for the zero-cost A/B bench guard.
    pub enabled: bool,
    /// EWMA smoothing factor for per-directed-link quality:
    /// `q ← (1 − α)·q + α·outcome` per MAC ACK outcome.
    pub ewma_alpha: f64,
    /// Initial (seeded) quality for every directed link. Optimistic by
    /// default: an untried link is assumed good until evidence arrives.
    pub ewma_seed: f64,
    /// First repair-timer delay after parent-failure detection; each
    /// unsuccessful repair attempt doubles it (exponential backoff).
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
    /// Deadline slack `s` in the retransmission budget: a failed report
    /// is re-dispatched only while `now + retry_cost ≤ deadline − s`.
    pub budget_slack: SimDuration,
    /// Upper bound on collection-layer re-dispatches per round (the
    /// budget usually runs out first; this is the hard stop).
    pub max_redispatch: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            enabled: true,
            ewma_alpha: 0.3,
            ewma_seed: 1.0,
            backoff_base: SimDuration::from_millis(250),
            backoff_cap: SimDuration::from_secs(8),
            budget_slack: SimDuration::from_millis(5),
            max_redispatch: 2,
        }
    }
}

impl RepairConfig {
    /// Repair disabled entirely (the A/B bench baseline arm).
    pub fn disabled() -> Self {
        RepairConfig {
            enabled: false,
            ..RepairConfig::default()
        }
    }
}

/// How queries reach the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetupMode {
    /// Queries are pre-registered at every node before the run (the
    /// paper sets up the routing tree "before the start of the
    /// experiments"; dissemination cost excluded from metrics).
    Idealized,
    /// The root floods a setup request per query during a setup slot in
    /// which all radios stay on (§4.1's setup-slot mechanism).
    Flooded,
}

/// Full description of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// Deployment area side length in metres (square area).
    pub area_side: f64,
    /// Communication range in metres.
    pub range: f64,
    /// Interference (carrier-sense) range in metres; `None` keeps it
    /// equal to the communication range (one-range model).
    pub interference_range: Option<f64>,
    /// Only nodes within this distance of the root join the tree.
    pub tree_radius: f64,
    /// The protocol under test.
    pub protocol: Protocol,
    /// The query workload.
    pub workload: WorkloadSpec,
    /// Run length.
    pub duration: SimDuration,
    /// Radio model.
    pub radio: RadioParams,
    /// MAC parameters.
    pub mac: MacParams,
    /// Setup slot length (all radios on until then; metrics start after).
    pub setup_slot: SimDuration,
    /// Query dissemination mode.
    pub setup_mode: SetupMode,
    /// Random per-(frame, receiver) loss probability (§4.3 experiments).
    pub drop_probability: f64,
    /// Scripted node failures: `(time, node_index)`.
    pub node_failures: Vec<(SimTime, u32)>,
    /// Dynamic environment: bursty links, batteries, churn, traffic
    /// phases — a spec compiled at run start or a recorded trace
    /// replayed verbatim. `None` keeps the paper's static environment.
    pub scenario: Option<Scenario>,
    /// STS tuning (timeout margin, reception granularity ablation).
    pub sts: StsConfig,
    /// DTS tuning (collection timeout margin).
    pub dts: DtsConfig,
    /// Adaptive guard time against clock desync (zero by default).
    pub clock_guard: GuardTime,
    /// Self-healing layer (link-quality EWMA, repair backoff,
    /// retransmission budget). Enabled by default; fault-free runs are
    /// bit-identical either way.
    pub repair: RepairConfig,
    /// Master seed; every run derives all randomness from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's §5 setup: 80 nodes in 500 × 500 m², 125 m range,
    /// 300 m tree radius, 802.11b at 1 Mbps, MICA2 radio, 200 s runs.
    pub fn paper(protocol: Protocol, workload: WorkloadSpec, seed: u64) -> Self {
        ExperimentConfig {
            nodes: PAPER_NODE_COUNT,
            area_side: 500.0,
            range: PAPER_RANGE_M,
            interference_range: None,
            tree_radius: PAPER_TREE_RADIUS_M,
            protocol,
            workload,
            duration: SimDuration::from_secs(200),
            radio: RadioParams::mica2(),
            mac: MacParams::paper(),
            setup_slot: SimDuration::from_millis(500),
            setup_mode: SetupMode::Idealized,
            drop_probability: 0.0,
            node_failures: Vec::new(),
            scenario: None,
            sts: StsConfig::default(),
            dts: DtsConfig::default(),
            clock_guard: GuardTime::ZERO,
            repair: RepairConfig::default(),
            seed,
        }
    }

    /// A reduced-scale configuration for fast tests and Criterion
    /// benches: 40 nodes in 350 × 350 m², 50 s runs.
    pub fn quick(protocol: Protocol, workload: WorkloadSpec, seed: u64) -> Self {
        ExperimentConfig {
            nodes: 40,
            area_side: 350.0,
            range: PAPER_RANGE_M,
            tree_radius: PAPER_TREE_RADIUS_M,
            duration: SimDuration::from_secs(50),
            ..ExperimentConfig::paper(protocol, workload, seed)
        }
    }

    /// Builder-style radio override.
    pub fn with_radio(mut self, radio: RadioParams) -> Self {
        self.radio = radio;
        self
    }

    /// Builder-style loss injection.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_probability = p;
        self
    }

    /// Builder-style scripted failure.
    pub fn with_node_failure(mut self, at: SimTime, node: u32) -> Self {
        self.node_failures.push((at, node));
        self
    }

    /// Builder-style scenario attachment.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Builder-style guard-time knob (see [`GuardTime`]).
    pub fn with_clock_guard(mut self, base: SimDuration, growth_ppm: u32) -> Self {
        self.clock_guard = GuardTime { base, growth_ppm };
        self
    }

    /// Builder-style repair-layer override (see [`RepairConfig`]).
    pub fn with_repair(mut self, repair: RepairConfig) -> Self {
        self.repair = repair;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.area_side > 0.0 && self.range > 0.0);
        if let Some(ir) = self.interference_range {
            assert!(ir >= self.range, "interference range below comm range");
        }
        assert!(!self.duration.is_zero(), "duration must be positive");
        assert!(self.workload.base_rate_hz > 0.0);
        assert!(self.workload.queries_per_class > 0);
        assert!((0.0..=1.0).contains(&self.drop_probability));
        let end = SimTime::ZERO + self.duration;
        for &(at, node) in &self.node_failures {
            assert!(node < self.nodes, "failure of unknown node {node}");
            assert!(
                at <= end,
                "scripted failure of node {node} at {at} is past the run end {end}"
            );
        }
        assert!(
            self.repair.ewma_alpha > 0.0 && self.repair.ewma_alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.repair.ewma_seed),
            "EWMA seed quality must be in [0, 1]"
        );
        assert!(
            !self.repair.backoff_base.is_zero(),
            "repair backoff base must be positive"
        );
        assert!(
            self.repair.backoff_cap >= self.repair.backoff_base,
            "repair backoff cap below its base"
        );
        if let Some(Scenario::Spec(spec)) = &self.scenario {
            spec.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = ExperimentConfig::paper(Protocol::DtsSs, WorkloadSpec::paper(5.0), 1);
        cfg.validate();
        assert_eq!(cfg.nodes, 80);
        assert_eq!(cfg.range, 125.0);
        assert_eq!(cfg.duration, SimDuration::from_secs(200));
        assert_eq!(cfg.workload.query_count(), 3);
    }

    #[test]
    fn class_rates_ratio() {
        let w = WorkloadSpec::paper(6.0);
        let [q1, q2, q3] = w.class_rates();
        assert_eq!(q1, 6.0);
        assert_eq!(q2, 3.0);
        assert_eq!(q3, 2.0);
        // Ratio 6:3:2 preserved at other base rates.
        let w2 = WorkloadSpec::paper(0.2);
        let r = w2.class_rates();
        assert!((r[0] / r[1] - 2.0).abs() < 1e-12);
        assert!((r[0] / r[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quick_is_smaller() {
        let cfg = ExperimentConfig::quick(Protocol::Sync, WorkloadSpec::paper(1.0), 2);
        cfg.validate();
        assert!(cfg.nodes < 80);
        assert!(cfg.duration < SimDuration::from_secs(200));
    }

    #[test]
    fn builders() {
        let cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3)
            .with_drop_probability(0.1)
            .with_node_failure(SimTime::from_secs(10), 5)
            .with_radio(RadioParams::zebranet());
        cfg.validate();
        assert_eq!(cfg.drop_probability, 0.1);
        assert_eq!(cfg.node_failures, vec![(SimTime::from_secs(10), 5)]);
        assert_eq!(cfg.radio, RadioParams::zebranet());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn failure_of_unknown_node_rejected() {
        ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3)
            .with_node_failure(SimTime::from_secs(1), 999)
            .validate();
    }

    #[test]
    #[should_panic(expected = "past the run end")]
    fn failure_past_run_end_rejected() {
        // Quick runs last 50 s; a failure scripted at 60 s can never
        // fire and previously slipped through validation silently.
        ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3)
            .with_node_failure(SimTime::from_secs(60), 5)
            .validate();
    }

    #[test]
    fn failure_at_run_end_accepted() {
        ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3)
            .with_node_failure(SimTime::from_secs(50), 5)
            .validate();
    }

    #[test]
    fn scenario_attaches_and_validates() {
        use essat_scenario::presets;
        use essat_scenario::spec::Scenario;
        let cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3);
        let run = cfg.duration;
        let cfg = cfg.with_scenario(Scenario::Spec(presets::bursty_links()));
        cfg.validate();
        assert_eq!(cfg.scenario.as_ref().unwrap().name(), "bursty_links");
        let cfg2 = ExperimentConfig::quick(Protocol::Sync, WorkloadSpec::paper(1.0), 4)
            .with_scenario(Scenario::Spec(presets::energy_drain(run)));
        cfg2.validate();
    }

    #[test]
    fn guard_time_grows_with_elapsed_time() {
        assert!(GuardTime::ZERO.is_zero());
        assert_eq!(
            GuardTime::ZERO.at(SimTime::from_secs(100)),
            SimDuration::ZERO
        );
        let g = GuardTime {
            base: SimDuration::from_millis(1),
            growth_ppm: 100,
        };
        assert!(!g.is_zero());
        // 100 ppm of 50 s = 5 ms, plus the 1 ms floor.
        assert_eq!(g.at(SimTime::from_secs(50)), SimDuration::from_millis(6));
        assert_eq!(g.at(SimTime::ZERO), SimDuration::from_millis(1));
        let cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3)
            .with_clock_guard(SimDuration::from_millis(1), 100);
        cfg.validate();
        assert_eq!(cfg.clock_guard, g);
    }

    #[test]
    fn repair_config_defaults_and_builder() {
        let cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3);
        cfg.validate();
        assert!(cfg.repair.enabled, "repair is on by default");
        let off = cfg.clone().with_repair(RepairConfig::disabled());
        off.validate();
        assert!(!off.repair.enabled);
        assert_eq!(off.repair.ewma_alpha, cfg.repair.ewma_alpha);
    }

    #[test]
    #[should_panic(expected = "EWMA alpha")]
    fn repair_alpha_out_of_range_rejected() {
        let bad = RepairConfig {
            ewma_alpha: 1.5,
            ..Default::default()
        };
        ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 3)
            .with_repair(bad)
            .validate();
    }

    #[test]
    fn workload_builders() {
        let w = WorkloadSpec::paper(0.2)
            .with_queries_per_class(10)
            .with_deadline(SimDuration::from_millis(120));
        assert_eq!(w.query_count(), 30);
        assert_eq!(w.deadline, Some(SimDuration::from_millis(120)));
    }
}
