//! The protocol catalogue and the policy factory.
//!
//! This module is the **only** place in the workspace that maps a
//! [`Protocol`] onto concrete power-management behaviour: naming
//! (display + parsing round-trip through one table) and construction
//! ([`Protocol::build_policy`], the single `match` over protocols).
//! The simulator's executor never branches on the protocol; it drives
//! whatever [`PowerPolicy`] the factory hands it, so out-of-tree
//! policies plug in through [`crate::sim::World::run_with`] without
//! touching either the executor or this catalogue.

use std::str::FromStr;

use essat_baselines::policy::{AlwaysOnPolicy, PsmPolicy, SyncPolicy};
use essat_baselines::psm::PsmSchedule;
use essat_baselines::span::SpanBackbone;
use essat_baselines::sync::SyncSchedule;
use essat_baselines::tag::Tag;
use essat_core::dts::Dts;
use essat_core::nts::Nts;
use essat_core::policy::EssatPolicy;
use essat_core::shaper::TrafficShaper;
use essat_core::sts::Sts;
use essat_net::ids::NodeId;
use essat_query::tree::RoutingTree;
use essat_sim::time::SimTime;

use crate::config::ExperimentConfig;
use crate::payload::Payload;

// Re-exported so downstream crates (the harness's custom-factory
// seam) can name the policy trait without depending on `essat-core`.
pub use essat_core::policy::PowerPolicy;

/// Which power-management protocol every node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ESSAT with no traffic shaping (NTS-SS).
    NtsSs,
    /// ESSAT with the static traffic shaper (STS-SS).
    StsSs,
    /// ESSAT with the dynamic traffic shaper (DTS-SS).
    DtsSs,
    /// Fixed 20%-duty synchronous wakeup.
    Sync,
    /// 802.11 PSM with advertisement windows.
    Psm,
    /// SPAN backbone (tree non-leaves always on, leaves run NTS-SS).
    Span,
    /// TinyDB/TAG level-slot scheduling under Safe Sleep (related-work
    /// comparison, not in the paper's figures).
    TagSs,
    /// Radios never sleep (sanity baseline, not in the paper's figures).
    AlwaysOn,
}

/// The single protocol-name table: display, parsing, and documentation
/// all read from here, so a variant cannot drift out of sync with its
/// string form.
const PROTOCOL_NAMES: [(Protocol, &str); 8] = [
    (Protocol::NtsSs, "NTS-SS"),
    (Protocol::StsSs, "STS-SS"),
    (Protocol::DtsSs, "DTS-SS"),
    (Protocol::Sync, "SYNC"),
    (Protocol::Psm, "PSM"),
    (Protocol::Span, "SPAN"),
    (Protocol::TagSs, "TAG-SS"),
    (Protocol::AlwaysOn, "ALWAYS-ON"),
];

impl Protocol {
    /// Every protocol the factory can build.
    pub fn all() -> [Protocol; 8] {
        PROTOCOL_NAMES.map(|(p, _)| p)
    }

    /// All protocols the paper plots (Figures 3–7).
    pub fn paper_set() -> [Protocol; 6] {
        [
            Protocol::DtsSs,
            Protocol::StsSs,
            Protocol::NtsSs,
            Protocol::Psm,
            Protocol::Span,
            Protocol::Sync,
        ]
    }

    /// The three ESSAT variants.
    pub fn essat_set() -> [Protocol; 3] {
        [Protocol::DtsSs, Protocol::StsSs, Protocol::NtsSs]
    }

    /// Display name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        PROTOCOL_NAMES
            .iter()
            .find(|(p, _)| *p == self)
            .map(|(_, name)| *name)
            .expect("every variant is in PROTOCOL_NAMES")
    }

    /// Builds the node's power-management policy — the one place the
    /// protocol choice turns into behaviour.
    ///
    /// `node` matters only to protocols that assign roles per node
    /// (SPAN's coordinator backbone); `env` carries the run-level
    /// context those assignments need.
    pub fn build_policy(
        cfg: &ExperimentConfig,
        node: NodeId,
        env: &PolicyEnv<'_>,
    ) -> Box<dyn PowerPolicy<Payload>> {
        let t_be = cfg.radio.break_even();
        let t_on = cfg.radio.turn_on;
        let essat = |name, shaper: Box<dyn TrafficShaper>| {
            Box::new(EssatPolicy::new(name, shaper, t_be, t_on)) as Box<dyn PowerPolicy<Payload>>
        };
        match cfg.protocol {
            Protocol::NtsSs => essat("NTS-SS", Box::new(Nts::new())),
            Protocol::StsSs => essat("STS-SS", Box::new(Sts::with_config(cfg.sts))),
            Protocol::DtsSs => essat("DTS-SS", Box::new(Dts::with_config(cfg.dts))),
            Protocol::TagSs => essat("TAG-SS", Box::new(Tag::new())),
            Protocol::Sync => Box::new(SyncPolicy::new(SyncSchedule::paper(), env.run_end)),
            Protocol::Psm => Box::new(PsmPolicy::new(PsmSchedule::paper(), env.run_end)),
            Protocol::AlwaysOn => Box::new(AlwaysOnPolicy::new("ALWAYS-ON")),
            Protocol::Span => {
                let bb = env
                    .backbone
                    .as_ref()
                    .expect("PolicyEnv::new builds the SPAN backbone");
                if bb.is_coordinator(node) {
                    Box::new(AlwaysOnPolicy::new("ALWAYS-ON"))
                } else {
                    // Leaves (and non-members) run NTS-SS, per the
                    // paper's modified SPAN setup.
                    essat("NTS-SS", Box::new(Nts::new()))
                }
            }
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error for [`Protocol::from_str`]: the input matched no protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError {
    input: String,
}

impl std::fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown protocol `{}`; expected one of: ", self.input)?;
        for (i, (_, name)) in PROTOCOL_NAMES.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(name)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for Protocol {
    type Err = ParseProtocolError;

    /// Parses the canonical figure label, case-insensitively and
    /// tolerating `_` for `-` (`"DTS-SS"`, `"dts-ss"`, `"dts_ss"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().replace('_', "-");
        PROTOCOL_NAMES
            .iter()
            .find(|(_, name)| name.eq_ignore_ascii_case(&norm))
            .map(|(p, _)| *p)
            .ok_or_else(|| ParseProtocolError {
                input: s.to_string(),
            })
    }
}

/// A per-node policy constructor: the simulator consults it once per
/// node at world construction. [`Protocol::build_policy`] is the
/// default; custom experiments pass their own to
/// [`crate::sim::World::run_with`].
pub type PolicyFactory<'f> =
    dyn Fn(&ExperimentConfig, NodeId, &PolicyEnv<'_>) -> Box<dyn PowerPolicy<Payload>> + 'f;

/// Run-level context handed to the policy factory alongside the
/// configuration: the routing tree, the run horizon, and any
/// protocol-wide precomputation (currently SPAN's coordinator
/// backbone).
#[derive(Debug)]
pub struct PolicyEnv<'a> {
    /// The routing tree the run starts from.
    pub tree: &'a RoutingTree,
    /// End of the run (schedule chains stop here).
    pub run_end: SimTime,
    /// SPAN's coordinator assignment, built once per run when the
    /// configured protocol needs it.
    pub backbone: Option<SpanBackbone>,
}

impl<'a> PolicyEnv<'a> {
    /// Prepares the factory context for one run, including any
    /// protocol-wide precomputation the per-node factory calls need.
    pub fn new(
        cfg: &ExperimentConfig,
        tree: &'a RoutingTree,
        node_count: usize,
        run_end: SimTime,
    ) -> Self {
        let backbone = match cfg.protocol {
            Protocol::Span => Some(SpanBackbone::from_tree(tree, node_count)),
            _ => None,
        };
        PolicyEnv {
            tree,
            run_end,
            backbone,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadSpec;
    use essat_net::geometry::Area;
    use essat_net::topology::Topology;
    use essat_sim::rng::SimRng;

    #[test]
    fn display_parse_round_trips_all_variants() {
        for p in Protocol::all() {
            let shown = p.to_string();
            assert_eq!(shown.parse::<Protocol>(), Ok(p), "{shown}");
            // Tolerant forms round-trip too.
            assert_eq!(shown.to_lowercase().parse::<Protocol>(), Ok(p));
            assert_eq!(shown.replace('-', "_").parse::<Protocol>(), Ok(p));
        }
    }

    #[test]
    fn unknown_protocol_rejected_with_catalogue() {
        let err = "S-MAC".parse::<Protocol>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("S-MAC"));
        assert!(msg.contains("DTS-SS") && msg.contains("ALWAYS-ON"));
    }

    #[test]
    fn labels_stable() {
        assert_eq!(Protocol::DtsSs.to_string(), "DTS-SS");
        assert_eq!(Protocol::Span.label(), "SPAN");
        assert_eq!(Protocol::paper_set().len(), 6);
        assert_eq!(Protocol::essat_set().len(), 3);
        assert_eq!(Protocol::all().len(), 8);
    }

    #[test]
    fn factory_builds_every_protocol() {
        let mut rng = SimRng::seed_from_u64(7);
        let topo = Topology::random(20, Area::new(300.0, 300.0), 125.0, &mut rng);
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, None);
        for p in Protocol::all() {
            let cfg = ExperimentConfig::quick(p, WorkloadSpec::paper(1.0), 3);
            let run_end = SimTime::ZERO + cfg.duration;
            let env = PolicyEnv::new(&cfg, &tree, topo.node_count(), run_end);
            let policy = Protocol::build_policy(&cfg, root, &env);
            match p {
                // SPAN's root is a non-leaf: an always-on coordinator.
                Protocol::Span | Protocol::AlwaysOn => assert_eq!(policy.name(), "ALWAYS-ON"),
                other => assert_eq!(policy.name(), other.label()),
            }
        }
    }

    #[test]
    fn span_factory_assigns_roles_per_node() {
        let mut rng = SimRng::seed_from_u64(11);
        let topo = Topology::random(30, Area::new(300.0, 300.0), 125.0, &mut rng);
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, None);
        let cfg = ExperimentConfig::quick(Protocol::Span, WorkloadSpec::paper(1.0), 3);
        let env = PolicyEnv::new(&cfg, &tree, topo.node_count(), SimTime::from_secs(50));
        let bb = env.backbone.as_ref().expect("span builds a backbone");
        for &m in tree.members() {
            let policy = Protocol::build_policy(&cfg, m, &env);
            if bb.is_coordinator(m) {
                assert_eq!(policy.name(), "ALWAYS-ON");
                assert!(!tree.is_leaf(m));
            } else {
                assert_eq!(policy.name(), "NTS-SS");
            }
        }
    }
}
