//! Multi-run experiment execution and summarisation.
//!
//! The paper averages every data point over five runs with re-drawn node
//! positions and query phases, reporting 90% confidence intervals.
//! [`run_many`] reproduces that protocol (one derived seed per run,
//! executed on worker threads — runs are independent and deterministic
//! per seed), and [`Summary`] carries the aggregated statistics the
//! figures print.

use std::thread;

use essat_obs::profile::RunTimings;
use essat_obs::Probe;
use essat_sim::stats::{Confidence, OnlineStats};

use crate::config::ExperimentConfig;
use crate::metrics::RunResult;
use crate::protocol::Protocol;
use crate::sim::{World, WorldScratch};

/// Runs a single experiment.
pub fn run_one(cfg: &ExperimentConfig) -> RunResult {
    World::run(cfg)
}

/// Runs a single experiment with an observability [`Probe`] attached,
/// returning the result together with the probe (carrying whatever it
/// recorded).
///
/// Probes observe through read-only seams and cannot touch the event
/// queue or any RNG, so the result — including its digest — is
/// byte-identical to [`run_one`] on the same configuration (pinned by
/// `tests/probes.rs`).
pub fn run_probed<P: Probe>(cfg: &ExperimentConfig, probe: P) -> (RunResult, P) {
    let mut scratch = WorldScratch::new();
    let mut timings = RunTimings::default();
    let (result, probe) = World::run_instrumented(
        cfg,
        &Protocol::build_policy,
        None,
        &mut scratch,
        None,
        probe,
        &mut timings,
    );
    (result.expect("uncapped run cannot exhaust a budget"), probe)
}

/// Runs `runs` independent repetitions (seeds `seed, seed+1, …`),
/// in parallel, returning results ordered by seed.
pub fn run_many(cfg: &ExperimentConfig, runs: u32) -> Vec<RunResult> {
    assert!(runs > 0, "need at least one run");
    let configs: Vec<ExperimentConfig> = (0..runs)
        .map(|i| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(i as u64);
            c
        })
        .collect();
    thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|c| scope.spawn(move || World::run(c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation thread panicked"))
            .collect()
    })
}

/// Aggregated statistics over repeated runs of one configuration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Per-run average node duty cycle (percent).
    pub duty_pct: OnlineStats,
    /// Per-run average query latency (seconds).
    pub latency_s: OnlineStats,
    /// Per-run delivery ratio.
    pub delivery: OnlineStats,
    /// Per-run phase-update overhead (bits per report).
    pub phase_overhead_bits: OnlineStats,
    /// Number of runs.
    pub runs: u32,
}

impl Summary {
    /// Summarises a set of runs.
    pub fn from_runs(results: &[RunResult]) -> Self {
        let mut duty = OnlineStats::new();
        let mut lat = OnlineStats::new();
        let mut del = OnlineStats::new();
        let mut ovh = OnlineStats::new();
        for r in results {
            duty.add(r.avg_duty_cycle_pct());
            lat.add(r.avg_latency_s());
            del.add(r.delivery_ratio());
            ovh.add(r.phase_overhead_bits_per_report());
        }
        Summary {
            duty_pct: duty,
            latency_s: lat,
            delivery: del,
            phase_overhead_bits: ovh,
            runs: results.len() as u32,
        }
    }

    /// Mean duty cycle in percent.
    pub fn duty_mean(&self) -> f64 {
        self.duty_pct.mean()
    }

    /// 90% CI half-width of the duty cycle, the paper's reporting style.
    pub fn duty_ci90(&self) -> f64 {
        self.duty_pct.ci_halfwidth(Confidence::P90)
    }

    /// Mean query latency in seconds.
    pub fn latency_mean(&self) -> f64 {
        self.latency_s.mean()
    }

    /// 90% CI half-width of the latency.
    pub fn latency_ci90(&self) -> f64 {
        self.latency_s.ci_halfwidth(Confidence::P90)
    }
}

/// Runs a configuration `runs` times and summarises.
pub fn run_summary(cfg: &ExperimentConfig, runs: u32) -> Summary {
    Summary::from_runs(&run_many(cfg, runs))
}
