//! The simulation sanitizer: whole-world invariant checks woven into
//! event dispatch, compiled in only with the `sanitize` feature.
//!
//! The checker runs a cheap per-event probe (event-time monotonicity —
//! the queue never delivers the past) and a full sweep every
//! [`SWEEP_PERIOD`] events plus once at run end. The sweep asserts the
//! structural invariants every protocol implicitly leans on:
//!
//! * **Mirror consistency** — the structure-of-arrays
//!   `radio_active` / `active_since` hot flags agree exactly with each
//!   node's [`essat_net::radio::Radio`] state machine.
//! * **Energy monotonicity** — a live node's projected energy
//!   ([`essat_net::radio::Radio::energy_j_at`]) never decreases.
//!   (Dead nodes are settled at death and consume nothing; they are
//!   excluded, and their books re-enter the check after revival.)
//! * **Routing-tree consistency** — the root is a member, every
//!   member's parent chain reaches the root, and parent/children
//!   links are symmetric — under churn, repair, and rejoin.
//!
//! More invariants live at their natural sites: no frame is ever
//! delivered to a dead node (asserted at the MAC `Deliver` action);
//! every never-died node's radio accounting settles to exactly the run
//! length, split across the three state counters (asserted in
//! `finalize_into`); and **no stale event ever dispatches** — a
//! MAC-timer expiry, radio wake-up, chain policy timer, or collection
//! timeout that reaches its handler must be the exact event its owner's
//! stored [`essat_sim::queue::EventId`] handle names (asserted at each
//! dispatch site), since superseded timers are truly cancelled on the
//! queue rather than filtered at delivery. When the feature is off none
//! of this exists — the hot path carries zero cost.

use essat_obs::Probe;
use essat_sim::time::SimTime;

use super::world::World;

/// Events between two full invariant sweeps. Cheap enough to leave on
/// in CI at quick scale, frequent enough that a violation is caught
/// close to the event that introduced it.
const SWEEP_PERIOD: u32 = 256;

/// Sanitizer state carried by the [`World`] (one per run).
#[derive(Debug)]
pub(crate) struct Sanitizer {
    countdown: u32,
    last_now: SimTime,
    last_energy: Vec<f64>,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer {
            countdown: SWEEP_PERIOD,
            last_now: SimTime::ZERO,
            last_energy: Vec::new(),
        }
    }
}

impl<P: Probe> World<P> {
    /// Per-event probe: time monotonicity, plus the periodic sweep.
    pub(crate) fn sanitize_step(&mut self, now: SimTime) {
        assert!(
            now >= self.san.last_now,
            "sanitizer: event delivered at {now}, after the queue already reached {}",
            self.san.last_now
        );
        self.san.last_now = now;
        self.san.countdown -= 1;
        if self.san.countdown == 0 {
            self.san.countdown = SWEEP_PERIOD;
            self.sanitize_sweep(now);
        }
    }

    /// The full invariant sweep (also called once at run end).
    pub(crate) fn sanitize_sweep(&mut self, now: SimTime) {
        if self.san.last_energy.is_empty() {
            self.san.last_energy = vec![0.0; self.nodes.len()];
        }
        for i in 0..self.nodes.len() {
            if self.hot.dead[i] {
                // Settled at death; a revival resets the radio's clock
                // to the revival instant, so its books re-enter the
                // monotonicity check from the settled-at-death total.
                continue;
            }
            let n = &self.nodes[i];
            assert_eq!(
                self.hot.radio_active[i],
                n.radio.is_active(),
                "sanitizer: node {i} radio_active mirror out of sync at {now}"
            );
            let since = n.radio.active_since().unwrap_or(SimTime::MAX);
            assert_eq!(
                self.hot.active_since[i], since,
                "sanitizer: node {i} active_since mirror out of sync at {now}"
            );
            let e = n.radio.energy_j_at(now);
            assert!(
                e >= self.san.last_energy[i] - 1e-12,
                "sanitizer: node {i} energy decreased ({} J -> {e} J) at {now}",
                self.san.last_energy[i]
            );
            self.san.last_energy[i] = e;
        }
        self.sanitize_tree(now);
        self.sanitize_repair(now);
    }

    /// Self-healing must be invisible on a run that cannot fault: no
    /// repair timer ever armed, no repair ever counted. This is the
    /// machine-checked form of the zero-cost claim behind the golden
    /// digests staying byte-identical with repair enabled.
    fn sanitize_repair(&self, now: SimTime) {
        if self.faults_possible() {
            return;
        }
        for (i, ev) in self.repair.timer_ev.iter().enumerate() {
            assert!(
                ev.is_none(),
                "sanitizer: repair timer armed at node {i} on a fault-free run at {now}"
            );
        }
        assert_eq!(
            self.repair.repairs, 0,
            "sanitizer: repair ran on a fault-free run at {now}"
        );
        assert_eq!(
            self.repair.redispatches, 0,
            "sanitizer: report redispatched on a fault-free run at {now}"
        );
    }

    /// Routing-tree structural consistency.
    fn sanitize_tree(&self, now: SimTime) {
        assert!(
            self.tree.is_member(self.root),
            "sanitizer: root dropped out of the routing tree at {now}"
        );
        let limit = self.nodes.len();
        for &m in self.tree.members() {
            for &c in self.tree.children(m) {
                assert!(
                    self.tree.is_member(c),
                    "sanitizer: {m} lists non-member child {c} at {now}"
                );
                assert_eq!(
                    self.tree.parent(c),
                    Some(m),
                    "sanitizer: child link {m}->{c} has no matching parent link at {now}"
                );
            }
            if m == self.root {
                assert!(
                    self.tree.parent(m).is_none(),
                    "sanitizer: root has a parent at {now}"
                );
                continue;
            }
            // Walk the parent chain; it must reach the root in fewer
            // steps than there are nodes (i.e. no cycles, no dangling
            // parents).
            let mut cur = m;
            let mut steps = 0usize;
            loop {
                let p = self.tree.parent(cur).unwrap_or_else(|| {
                    panic!("sanitizer: member {m} chain dangles at {cur} (time {now})")
                });
                assert!(
                    self.tree.is_member(p),
                    "sanitizer: member {m} has non-member ancestor {p} at {now}"
                );
                assert!(
                    self.tree.children(p).contains(&cur),
                    "sanitizer: parent link {cur}->{p} has no matching child link at {now}"
                );
                if p == self.root {
                    break;
                }
                cur = p;
                steps += 1;
                assert!(
                    steps < limit,
                    "sanitizer: member {m} parent chain does not reach the root at {now}"
                );
            }
        }
    }
}
