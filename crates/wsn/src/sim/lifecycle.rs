//! Node lifecycle: failures, churn recovery, battery depletion, and
//! the §4.3 routing-tree repair.

use essat_core::policy::SleepTrigger;
use essat_core::shaper::TreeInfo;
use essat_net::ids::NodeId;
use essat_net::mac::Mac;
use essat_obs::Probe;
use essat_query::model::QueryId;
use essat_sim::engine::Context;
use essat_sim::time::SimTime;

use super::events::Ev;
use super::world::World;

impl<P: Probe> World<P> {
    pub(crate) fn handle_node_fail(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        self.kill_node(node, ctx);
        // Detectors at the neighbours drive the repair.
    }

    /// Marks `node` dead (scripted failure, churn, or battery
    /// depletion), settles its energy accounting, cancels the timers it
    /// owns on the queue, and records the network-lifetime marks.
    pub(crate) fn kill_node(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        {
            let i = node.index();
            if self.hot.dead[i] {
                return;
            }
            self.hot.dead[i] = true;
            let n = &mut self.nodes[i];
            n.died_at = Some(now);
            n.radio.settle(now);
            // A dead node's MAC timers and chain policy schedules must
            // not fire; surrender their handles and cancel them. The
            // pending radio wake (if any) survives — a revival before
            // it fires still honours it, and the dispatch dead-guard
            // drops it otherwise.
            n.mac.cancel_all_timers();
            while let Some(id) = n.mac.pop_cancelled() {
                ctx.cancel(id);
            }
            let mut chain = std::mem::take(&mut self.chain_ev[i]);
            for id in chain.drain(..) {
                ctx.cancel(id);
            }
            self.chain_ev[i] = chain;
            // The dying node's pending repair timer must not fire, and
            // a dead node stops accumulating orphan time.
            if let Some(id) = self.repair.timer_ev[i].take() {
                ctx.cancel(id);
            }
            self.repair.target[i] = None;
            self.repair.armed_at[i] = None;
            self.repair.backoff[i] = 0;
            self.settle_orphan(i, now);
        }
        self.probe.on_node_down(
            now,
            node.index() as u32,
            self.hot.battery_dead[node.index()],
        );
        if self.hot.member[node.index()] {
            self.lifetime.deaths.push((now, node));
            if self.lifetime.first_death.is_none() {
                self.lifetime.first_death = Some(now);
            }
            self.check_partition_opened(now);
        }
    }

    /// True once some live tree member has no path of live nodes to the
    /// root (or the root itself is dead) — the lifetime figure's
    /// "time to partition" mark. Collection-aware: a live build-time
    /// member that fell *out of the routing tree* (an orphan subtree no
    /// repair has re-attached yet) is partitioned from collection even
    /// when a physical path exists. Only evaluated on deaths and
    /// repairs, so the BFS cost is negligible.
    pub(crate) fn is_partitioned(&self) -> bool {
        if self.hot.dead[self.root.index()] {
            return true;
        }
        let mut alive = Vec::new();
        for m in self.topo.nodes() {
            if !self.hot.member[m.index()] || self.hot.dead[m.index()] {
                continue;
            }
            if !self.tree.is_member(m) {
                return true; // live member orphaned from the tree
            }
            alive.push(m);
        }
        !self.topo.is_connected_subset(self.root, &alive)
    }

    /// Scenario churn recovery. The node comes back with a fresh MAC
    /// and an `Active` radio (its spent battery is *not* refilled) and
    /// re-enters the tree: in place if the failure detectors never
    /// removed it, otherwise as a leaf under its best live neighbour
    /// (an idealised re-join — §4.3 only specifies departure repair).
    ///
    /// A node whose death was caused by **battery depletion** stays
    /// dead: churn models transient outages (reboots, interference),
    /// not battery swaps, and a revived flat battery would just re-die
    /// at the next `BatteryCheck` after a zombie interval of activity.
    pub(crate) fn handle_node_recover(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        if !self.hot.dead[node.index()] || self.hot.battery_dead[node.index()] {
            return;
        }
        // Fresh lower layers; the MAC RNG gets a new derived stream per
        // revival so replays stay deterministic.
        let mac_rng = {
            let revival = self.nodes[node.index()].revivals + 1;
            let stream = node.as_u32() as u64 + self.cfg.nodes as u64 * revival;
            self.master.derive2(4, stream)
        };
        {
            let i = node.index();
            self.hot.dead[i] = false;
            self.hot.radio_active[i] = true;
            self.hot.active_since[i] = now;
            let n = &mut self.nodes[i];
            n.died_at = None;
            n.revivals += 1;
            n.radio.resurrect(now);
            // The outgoing MAC may still hold timer handles (timers
            // armed while the node was dead no-op at dispatch but are
            // better off the queue entirely).
            n.mac.cancel_all_timers();
            while let Some(id) = n.mac.pop_cancelled() {
                ctx.cancel(id);
            }
            let old = std::mem::replace(&mut n.mac, Mac::new(node, self.cfg.mac, mac_rng));
            let ms = old.stats();
            self.mac_lost.enqueued += ms.enqueued;
            self.mac_lost.data_tx += ms.data_tx;
            self.mac_lost.delivered += ms.delivered;
            self.mac_lost.failed += ms.failed;
            self.mac_lost.retries += ms.retries;
            for r in n.rounds.values_mut() {
                if let Some(id) = r.timeout_ev.take() {
                    ctx.cancel(id);
                }
            }
            n.rounds.clear();
            n.loss = essat_core::maintenance::LossDetector::new();
            n.child_fail =
                essat_core::maintenance::FailureDetector::new(super::node::CHILD_FAIL_THRESHOLD);
            n.parent_fail =
                essat_core::maintenance::FailureDetector::new(super::node::PARENT_FAIL_THRESHOLD);
            n.stale_phase.clear();
            n.recheck_on_wake = false;
        }
        self.probe.on_node_up(now, node.index() as u32);
        self.probe.on_radio_state(now, node.index() as u32, true);
        self.lifetime.recoveries += 1;
        if self.hot.member[node.index()] {
            if self.tree.is_member(node) {
                // Still in the tree: resume schedules where they stand.
                self.refresh_node_schedule(node, now);
                self.restart_round_chains(node, ctx);
            } else {
                self.rejoin_tree(node, ctx);
            }
            if self.tree.is_member(node) {
                self.check_partition_healed(now);
            } else if self.repair.orphaned_since[node.index()].is_none() {
                // Revived but still cut off: live-and-orphaned time
                // starts accumulating now.
                self.repair.orphaned_since[node.index()] = Some(now);
            }
        }
        // Re-arm the policy's schedule chain (it stopped at death) and
        // reset its per-interval state. Any chain events armed in the
        // meantime (a dead node's one-shot timers can still run) are
        // cancelled so the fresh chain is the only one ticking.
        {
            let i = node.index();
            let mut chain = std::mem::take(&mut self.chain_ev[i]);
            for id in chain.drain(..) {
                ctx.cancel(id);
            }
            self.chain_ev[i] = chain;
            let mut acts = self.take_acts();
            self.nodes[node.index()].policy.on_revive(now, &mut acts);
            self.exec_policy_actions(node, &mut acts, ctx);
            self.put_acts(acts);
        }
        if !self.hot.member[node.index()] {
            // Never part of the tree: revive and go straight back to
            // sleep, as after setup.
            let i = node.index();
            if self.setup_over && self.hot.radio_active[i] && self.nodes[i].mac.can_suspend() {
                self.suspend_radio(node, ctx);
            }
            return;
        }
        self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
    }

    /// Restarts the per-query round chains of a revived node from the
    /// next round boundary (the chains break while a node is dead).
    pub(crate) fn restart_round_chains(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let qis: Vec<usize> = self.nodes[node.index()]
            .participating
            .iter()
            .copied()
            .collect();
        for qi in qis {
            let q = self.query(qi);
            let k0 = World::next_round_at(&q, now);
            self.refuse_rounds_before(node, qi, k0);
            let at = q.round_start(k0);
            if at < self.run_end {
                ctx.schedule_at(
                    self.to_wall(node, at).max(now),
                    Ev::RoundStart {
                        node,
                        query: qi,
                        round: k0,
                    },
                );
            }
        }
    }

    /// A revived node has no data for rounds that began while it was
    /// dead: mark them done so straggler reports cannot reopen them
    /// (which would re-release rounds the policy already advanced past).
    pub(crate) fn refuse_rounds_before(&mut self, node: NodeId, qi: usize, k0: u64) {
        if k0 == 0 {
            return;
        }
        self.nodes[node.index()]
            .done
            .entry(qi)
            .and_modify(|d| *d = (*d).max(k0 - 1))
            .or_insert(k0 - 1);
    }

    /// Re-attaches a recovered node that the repair machinery had
    /// removed from the tree, then re-registers its queries and
    /// refreshes every node whose schedule the rank changes touch
    /// (mirrors [`World::repair_tree`]).
    pub(crate) fn rejoin_tree(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let old_rank: Vec<u32> = self.topo.nodes().map(|n| self.tree.rank(n)).collect();
        let old_max = self.tree.max_rank();
        let Some(parent) = self.tree.rejoin_node(&self.topo, node) else {
            return; // still cut off; a later recovery may bridge it back
        };
        self.settle_orphan(node.index(), now);
        self.readmit_node(node, parent, &old_rank, old_max, ctx);
    }

    /// Re-registers a just-re-attached node's queries from scratch and
    /// refreshes every node whose schedule the rank changes touch. The
    /// shared tail of [`World::rejoin_tree`] (churn recovery) and the
    /// self-healing adoption sweep: the caller has already put `node`
    /// under `parent` in the tree and captured the pre-surgery ranks.
    pub(crate) fn readmit_node(
        &mut self,
        node: NodeId,
        parent: NodeId,
        old_rank: &[u32],
        old_max: u32,
        ctx: &mut Context<'_, Ev>,
    ) {
        let now = ctx.now();
        // Back in the tree: any pending self-rescue timer is moot.
        self.disarm_repair(node, node, ctx);
        {
            let n = &mut self.nodes[node.index()];
            n.participating.clear();
            n.expected_children.clear();
            for qi in 0..self.queries.len() {
                n.policy.forget_query(QueryId::new(qi as u32));
            }
        }
        for qi in 0..self.queries.len() {
            if let Some((round, at)) = self.register_query_at(node, qi, now) {
                self.refuse_rounds_before(node, qi, round);
                ctx.schedule_at(
                    self.to_wall(node, at).max(now),
                    Ev::RoundStart {
                        node,
                        query: qi,
                        round,
                    },
                );
            }
        }
        let max_changed = self.tree.max_rank() != old_max;
        for m in self.topo.nodes() {
            if m == node || !self.tree.is_member(m) {
                continue;
            }
            let rank_changed = self.tree.rank(m) != old_rank[m.index()];
            let gained_child = parent == m;
            if rank_changed || gained_child || max_changed {
                self.refresh_node_schedule(m, now);
                self.refresh_wake(m, ctx);
            }
        }
    }

    /// The periodic battery sweep: kill nodes whose cumulative radio
    /// energy exceeds the scenario's capacity.
    ///
    /// The scan walks the structure-of-arrays `dead` flags (cache-
    /// linear) and reads each live node's energy through the
    /// non-mutating [`essat_net::radio::Radio::energy_j_at`], so the
    /// periodic sweep no longer rewrites every radio's accounting; a
    /// node's books are settled exactly once, at death or run end.
    pub(crate) fn handle_battery_check(&mut self, ctx: &mut Context<'_, Ev>) {
        let Some(b) = self.scenario.as_ref().and_then(|s| s.battery) else {
            return;
        };
        let now = ctx.now();
        // Chunked two-pass sweep. Pass 1 scans the SoA `dead` flags a
        // cache-line-sized chunk at a time — the live count per chunk is
        // a branch-free accumulation, so a fully-dead chunk (common late
        // in lifetime runs) costs one test — and only live nodes pay for
        // the energy projection. Doomed nodes land in a recycled scratch
        // list; pass 2 does the (rare, mutation-heavy) kills.
        const CHUNK: usize = 64;
        let mut doomed = std::mem::take(&mut self.sweep_scratch);
        doomed.clear();
        let n = self.hot.dead.len();
        let mut base = 0;
        while base < n {
            let end = (base + CHUNK).min(n);
            let chunk = &self.hot.dead[base..end];
            let live = chunk.iter().fold(0u32, |a, &d| a + !d as u32);
            if live != 0 {
                for (off, &dead) in chunk.iter().enumerate() {
                    if !dead && self.nodes[base + off].radio.energy_j_at(now) >= b.capacity_j {
                        doomed.push((base + off) as u32);
                    }
                }
            }
            base = end;
        }
        for &i in &doomed {
            // Battery deaths are permanent: churn recovery must not
            // resurrect a node with an empty battery.
            self.hot.battery_dead[i as usize] = true;
            self.kill_node(NodeId::new(i), ctx);
        }
        self.sweep_scratch = doomed;
        let next = now + b.check_period;
        if next < self.run_end {
            ctx.schedule_at(next, Ev::BatteryCheck);
        }
    }

    /// Routing-layer repair after `failed` is declared dead: re-parent
    /// orphans, recompute ranks, and notify every node whose schedule
    /// depends on the topology (§4.3).
    pub(crate) fn repair_tree(&mut self, failed: NodeId, ctx: &mut Context<'_, Ev>) {
        if !self.tree.is_member(failed) || failed == self.root {
            return;
        }
        let now = ctx.now();
        let old_parent = self.tree.parent(failed);
        let old_rank: Vec<u32> = self.topo.nodes().map(|n| self.tree.rank(n)).collect();
        let old_max = self.tree.max_rank();
        let was_member: Vec<bool> = self.topo.nodes().map(|n| self.tree.is_member(n)).collect();
        // With self-healing on, orphans pick re-attachment parents by
        // link quality (dead candidates vetoed); the flat legacy rule
        // otherwise.
        let moved = if self.repair_active() {
            self.with_quality(|tree, topo, q| tree.fail_node_by(topo, failed, q))
        } else {
            self.tree.fail_node(&self.topo, failed)
        };

        // The failed node — and any orphan subtree that could not
        // re-attach and therefore dropped out of the tree — stops
        // participating entirely. Without this, dropped nodes keep
        // running their query machinery against a tree that no longer
        // contains them (or their children).
        for m in self.topo.nodes() {
            if !was_member[m.index()] || self.tree.is_member(m) {
                continue;
            }
            let n = &mut self.nodes[m.index()];
            n.participating.clear();
            for r in n.rounds.values_mut() {
                if let Some(id) = r.timeout_ev.take() {
                    ctx.cancel(id);
                }
            }
            n.rounds.clear();
            n.expected_children.clear();
            for qi in 0..self.queries.len() {
                n.policy.forget_query(QueryId::new(qi as u32));
            }
            // A *live* dropped node is now an orphan: start its
            // orphan-seconds clock and (self-healing only) arm a
            // self-rescue timer so it periodically tries to get
            // re-adopted even if nobody else repairs nearby.
            if !self.hot.dead[m.index()] {
                if self.repair.orphaned_since[m.index()].is_none() {
                    self.repair.orphaned_since[m.index()] = Some(now);
                }
                self.arm_repair(m, m, ctx);
            }
        }

        // Its old parent drops every dependency on it.
        if let Some(p) = old_parent {
            self.drop_child_dependency(p, failed, ctx);
        }

        // Nodes affected by rank changes or re-parenting refresh their
        // schedules.
        let max_changed = self.tree.max_rank() != old_max;
        for m in self.topo.nodes() {
            if !self.tree.is_member(m) {
                continue;
            }
            let rank_changed = self.tree.rank(m) != old_rank[m.index()];
            let reparented = moved.contains(&m);
            let gained_child = moved.iter().any(|&o| self.tree.parent(o) == Some(m));
            if !(rank_changed || reparented || gained_child || max_changed) {
                continue;
            }
            self.refresh_node_schedule(m, now);
            self.refresh_wake(m, ctx);
        }
        // Self-healing re-admits rescuable orphans immediately, *before*
        // the partition check: a subtree that re-attaches in the same
        // instant was never observably partitioned (no zero-length
        // episode), and only genuinely stranded orphans — their rescue
        // timers armed above — open one.
        if self.repair_active() {
            self.adoption_sweep(ctx);
        }
        self.check_partition_opened(now);
    }

    /// `p` forgets everything it expected from `lost`: expected-children
    /// lists, loss/failure detectors, and open rounds blocked on the
    /// child's report (which may now complete). Shared by the §4.3
    /// declare-failed repair and the self-healing re-parent (where the
    /// abandoned parent must likewise stop waiting).
    pub(crate) fn drop_child_dependency(
        &mut self,
        p: NodeId,
        lost: NodeId,
        ctx: &mut Context<'_, Ev>,
    ) {
        let qids: Vec<usize> = self.nodes[p.index()]
            .participating
            .iter()
            .copied()
            .collect();
        for qi in qids {
            let q = self.query(qi);
            let n = &mut self.nodes[p.index()];
            if let Some(kids) = n.expected_children.get_mut(&qi) {
                kids.retain(|&c| c != lost);
            }
            n.policy.on_child_removed(&q, lost);
            n.loss.remove_child(lost);
            n.child_fail.remove(lost);
            // Unblock open rounds that waited on the lost child.
            let open: Vec<u64> = n
                .rounds
                .iter()
                .filter(|(rk, _)| rk.query == q.id)
                .map(|(rk, _)| rk.round)
                .collect();
            for k in open {
                let key = essat_query::round::RoundKey {
                    query: q.id,
                    round: k,
                };
                if let Some(r) = self.nodes[p.index()].rounds.get_mut(&key) {
                    r.agg.remove_child(lost);
                }
                self.maybe_complete(p, qi, k, ctx);
            }
        }
    }

    /// Re-derives a node's expected-children lists and policy schedule
    /// state from the current tree.
    pub(crate) fn refresh_node_schedule(&mut self, node: NodeId, now: SimTime) {
        let is_root = node == self.root;
        let kids_now: Vec<NodeId> = self.tree.children(node).to_vec();
        let (own_rank, max_rank, own_level, max_level, kid_ranks) = self.tree_view(node);
        // Returned to the pool at the end of the function.
        let qids: Vec<usize> = self.nodes[node.index()]
            .participating
            .iter()
            .copied()
            .collect();
        for qi in qids {
            let q = self.query(qi);
            let n = &mut self.nodes[node.index()];
            let old_kids = n.expected_children.insert(qi, kids_now.clone());
            let info = TreeInfo {
                own_rank,
                max_rank,
                own_level,
                max_level,
                children: &kid_ranks,
            };
            n.policy
                .on_topology_change(&q, &info, is_root, now, &kids_now, old_kids.as_deref());
        }
        self.put_kids(kid_ranks);
    }
}
