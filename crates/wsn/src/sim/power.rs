//! Power and link-layer plumbing: executing policy actions, MAC action
//! fan-out, radio transitions, and the sleep checkpoints.
//!
//! This is where [`PolicyAction`]s become engine events. The executor
//! applies whatever the node's [`essat_core::policy::PowerPolicy`]
//! emitted, strictly in order, and never decides protocol behaviour on
//! its own.

use essat_baselines::psm::ATIM_BYTES;
use essat_core::policy::{NodeView, PolicyAction, PolicyTimer, SleepTrigger};
use essat_net::channel::TxId;
use essat_net::frame::{Dest, Frame, FrameKind};
use essat_net::ids::NodeId;
use essat_net::mac::MacAction;
use essat_net::radio::TransitionOutcome;
use essat_sim::engine::Context;
use essat_sim::time::SimTime;

use super::events::Ev;
use super::world::World;
use crate::payload::Payload;

impl World {
    /// Snapshot of a node's lower layers for a policy call.
    pub(crate) fn node_view(&self, node: NodeId, now: SimTime) -> NodeView {
        let n = &self.nodes[node.index()];
        NodeView {
            now,
            dead: n.dead,
            radio_active: n.radio.is_active(),
            mac_quiescent: n.mac.is_quiescent(),
            mac_can_suspend: n.mac.can_suspend(),
            may_sleep: self.setup_over && !self.in_forced_window(now),
            turn_off: n.radio.params().turn_off,
        }
    }

    /// A recycled action buffer (policies run on every event; steady-
    /// state execution must not allocate).
    pub(crate) fn take_acts(&mut self) -> Vec<PolicyAction<Payload>> {
        self.act_pool.pop().unwrap_or_default()
    }

    /// Returns an action buffer to the pool.
    pub(crate) fn put_acts(&mut self, mut acts: Vec<PolicyAction<Payload>>) {
        acts.clear();
        self.act_pool.push(acts);
    }

    /// Applies policy actions in emission order.
    pub(crate) fn exec_policy_actions(
        &mut self,
        node: NodeId,
        acts: &mut Vec<PolicyAction<Payload>>,
        ctx: &mut Context<'_, Ev>,
    ) {
        for action in acts.drain(..) {
            match action {
                PolicyAction::WakeRadio => self.wake_radio(node, ctx),
                PolicyAction::SetTimer { timer, at } => {
                    let gen = self.nodes[node.index()].sched_gen;
                    ctx.schedule_at(at, Ev::Policy { node, timer, gen });
                }
                PolicyAction::SendAtim { dest } => {
                    let frame = {
                        let n = &mut self.nodes[node.index()];
                        Frame {
                            id: n.mac.alloc_frame_id(),
                            src: node,
                            dest: Dest::Unicast(dest),
                            kind: FrameKind::Data,
                            bytes: ATIM_BYTES,
                            payload: Payload::Atim,
                        }
                    };
                    self.enqueue_frame(node, frame, ctx);
                }
                PolicyAction::Enqueue(frame) => self.enqueue_frame(node, frame, ctx),
                PolicyAction::Sleep { wake_at } => {
                    self.suspend_radio(node, ctx);
                    let n = &mut self.nodes[node.index()];
                    n.wake_gen += 1;
                    if let Some(at) = wake_at {
                        let gen = n.wake_gen;
                        ctx.schedule_at(at, Ev::RadioWake { node, gen });
                    }
                }
                PolicyAction::Suspend => self.suspend_radio(node, ctx),
            }
        }
    }

    /// The radio-suspend handshake shared by every sleep path: park
    /// the MAC, start the ON→OFF transition, and schedule its
    /// completion. Callers are responsible for the guards (the radio
    /// must be active).
    pub(crate) fn suspend_radio(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let n = &mut self.nodes[node.index()];
        n.mac.radio_slept(now);
        let d = n.radio.begin_sleep(now).expect("radio is active");
        ctx.schedule_after(d, Ev::RadioDone { node });
    }

    /// Gives the node's policy a chance to sleep (`checkState` call
    /// sites and protocol-agnostic boundaries).
    pub(crate) fn sleep_checkpoint(
        &mut self,
        node: NodeId,
        trigger: SleepTrigger,
        ctx: &mut Context<'_, Ev>,
    ) {
        let view = self.node_view(node, ctx.now());
        let mut acts = self.take_acts();
        self.nodes[node.index()]
            .policy
            .sleep_decision(trigger, &view, &mut acts);
        self.exec_policy_actions(node, &mut acts, ctx);
        self.put_acts(acts);
    }

    /// A policy timer expired: route it back into the policy. Chain
    /// timers (SYNC edges, PSM beacons) are generation-guarded so a
    /// churn-revived node's re-armed chain is not duplicated by a stale
    /// pending expiry.
    pub(crate) fn handle_policy_timer(
        &mut self,
        node: NodeId,
        timer: PolicyTimer,
        gen: u64,
        ctx: &mut Context<'_, Ev>,
    ) {
        {
            let n = &self.nodes[node.index()];
            if timer.is_chain() && (n.dead || gen != n.sched_gen) {
                return;
            }
        }
        let view = self.node_view(node, ctx.now());
        let mut acts = self.take_acts();
        self.nodes[node.index()]
            .policy
            .on_timer(timer, &view, &mut acts);
        self.exec_policy_actions(node, &mut acts, ctx);
        self.put_acts(acts);
    }

    // ------------------------------------------------------------------
    // MAC plumbing
    // ------------------------------------------------------------------

    pub(crate) fn exec_mac_actions(
        &mut self,
        node: NodeId,
        actions: Vec<MacAction<Payload>>,
        ctx: &mut Context<'_, Ev>,
    ) {
        for action in actions {
            match action {
                MacAction::SetTimer { kind, gen, after } => {
                    ctx.schedule_after(after, Ev::MacTimer { node, kind, gen });
                }
                MacAction::StartTx { frame, airtime } => {
                    let start = self.channel.begin_tx(ctx.now(), node, airtime);
                    for i in 0..start.now_busy.len() {
                        let h = start.now_busy[i];
                        let hn = &mut self.nodes[h.index()];
                        if !hn.dead && hn.radio.is_active() {
                            let acts = hn.mac.carrier_busy(ctx.now());
                            self.exec_mac_actions(h, acts, ctx);
                        }
                    }
                    self.channel.recycle_nodes(start.now_busy);
                    ctx.schedule_after(
                        airtime,
                        Ev::TxEnd {
                            sender: node,
                            tx: start.id,
                            frame,
                        },
                    );
                }
                MacAction::Deliver { frame } => self.handle_delivery(node, frame, ctx),
                MacAction::TxDone { frame, .. } => self.handle_tx_done(node, frame, ctx),
                MacAction::TxFailed { frame, .. } => self.handle_tx_failed(node, frame, ctx),
            }
        }
    }

    pub(crate) fn enqueue_frame(
        &mut self,
        node: NodeId,
        frame: Frame<Payload>,
        ctx: &mut Context<'_, Ev>,
    ) {
        let actions = self.nodes[node.index()].mac.enqueue(frame, ctx.now());
        self.exec_mac_actions(node, actions, ctx);
    }

    // ------------------------------------------------------------------
    // Radio control
    // ------------------------------------------------------------------

    /// After a repair touched a sleeping node's expectations, re-arm
    /// its wake-up from the policy's earliest commitment.
    pub(crate) fn refresh_wake(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let n = &mut self.nodes[node.index()];
        if n.dead {
            return;
        }
        if n.radio.is_active() {
            return; // awake: normal event flow handles it
        }
        let Some(earliest) = n.policy.earliest_commitment() else {
            return;
        };
        n.wake_gen += 1;
        let gen = n.wake_gen;
        let at = earliest.saturating_sub(n.radio.params().turn_on).max(now);
        ctx.schedule_at(at, Ev::RadioWake { node, gen });
    }

    /// Begin waking the radio if it is off (or queue the wake if it is
    /// mid-transition).
    pub(crate) fn wake_radio(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let n = &mut self.nodes[node.index()];
        if n.dead {
            return;
        }
        if n.radio.is_off() {
            let d = n.radio.begin_wake(now).expect("radio is off");
            ctx.schedule_after(d, Ev::RadioDone { node });
        } else {
            // Active / turning on: nothing. Turning off: queue the wake.
            let _ = n.radio.begin_wake(now);
        }
    }

    pub(crate) fn handle_radio_done(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        if self.nodes[node.index()].dead {
            return;
        }
        let outcome = self.nodes[node.index()].radio.finish_transition(now);
        match outcome {
            TransitionOutcome::NowOff => {}
            TransitionOutcome::NowActive => {
                let busy = self.channel.carrier_busy(node);
                let actions = self.nodes[node.index()].mac.radio_woke(now, busy);
                self.exec_mac_actions(node, actions, ctx);
                // A traffic-phase-skipped round advanced this node's
                // expectations while the radio was still turning on for
                // them; re-run the checkpoint now that it is active so
                // the node sleeps through the quiet round instead of
                // idling until the next event.
                if self.nodes[node.index()].recheck_on_wake {
                    self.nodes[node.index()].recheck_on_wake = false;
                    self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
                }
            }
            TransitionOutcome::OffWakeQueued => {
                let n = &mut self.nodes[node.index()];
                let d = n.radio.begin_wake(now).expect("just turned off");
                ctx.schedule_after(d, Ev::RadioDone { node });
            }
        }
    }

    pub(crate) fn handle_radio_wake(&mut self, node: NodeId, gen: u64, ctx: &mut Context<'_, Ev>) {
        {
            let n = &self.nodes[node.index()];
            if n.dead || gen != n.wake_gen {
                return;
            }
        }
        self.wake_radio(node, ctx);
    }

    pub(crate) fn handle_tx_end(
        &mut self,
        sender: NodeId,
        tx: TxId,
        frame: Frame<Payload>,
        ctx: &mut Context<'_, Ev>,
    ) {
        let now = ctx.now();
        let end = self.channel.end_tx(now, tx);
        for i in 0..end.now_idle.len() {
            let h = end.now_idle[i];
            let hn = &mut self.nodes[h.index()];
            if !hn.dead && hn.radio.is_active() {
                let acts = hn.mac.carrier_idle(now);
                self.exec_mac_actions(h, acts, ctx);
            }
        }
        if !self.nodes[sender.index()].dead {
            let acts = self.nodes[sender.index()].mac.tx_ended(now);
            self.exec_mac_actions(sender, acts, ctx);
        }
        for i in 0..end.clean_receivers.len() {
            let r = end.clean_receivers[i];
            let n = &self.nodes[r.index()];
            if n.dead {
                continue;
            }
            // The receiver must have been awake for the entire frame.
            let awake_whole_frame = n
                .radio
                .active_since()
                .map(|t| t <= end.started)
                .unwrap_or(false);
            if awake_whole_frame {
                // `Frame<Payload>` is `Copy`: the fan-out to receivers
                // is a bitwise copy, not an allocation.
                let acts = self.nodes[r.index()].mac.frame_arrived(frame, now);
                self.exec_mac_actions(r, acts, ctx);
            }
        }
        self.channel.recycle_nodes(end.now_idle);
        self.channel.recycle_nodes(end.clean_receivers);
        self.channel.recycle_nodes(end.corrupted_receivers);
        self.sleep_checkpoint(sender, SleepTrigger::Quiesce, ctx);
    }
}
