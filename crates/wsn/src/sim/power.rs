//! Power and link-layer plumbing: executing policy actions, MAC action
//! fan-out, radio transitions, and the sleep checkpoints.
//!
//! This is where [`PolicyAction`]s become engine events. The executor
//! applies whatever the node's [`essat_core::policy::PowerPolicy`]
//! emitted, strictly in order, and never decides protocol behaviour on
//! its own.

use essat_baselines::psm::ATIM_BYTES;
use essat_core::policy::{NodeView, PolicyAction, PolicyTimer, SleepTrigger};
use essat_net::channel::TxId;
use essat_net::frame::{Dest, Frame, FrameKind};
use essat_net::ids::NodeId;
use essat_net::mac::MacAction;
use essat_net::radio::TransitionOutcome;
use essat_obs::{PolicyActionKind, Probe};
use essat_sim::engine::Context;
use essat_sim::time::SimTime;

use super::events::Ev;
use super::world::World;
use crate::payload::Payload;

impl<P: Probe> World<P> {
    /// Snapshot of a node's lower layers for a policy call.
    pub(crate) fn node_view(&self, node: NodeId, now: SimTime) -> NodeView {
        let i = node.index();
        let n = &self.nodes[i];
        NodeView {
            now,
            dead: self.hot.dead[i],
            radio_active: self.hot.radio_active[i],
            mac_quiescent: n.mac.is_quiescent(),
            mac_can_suspend: n.mac.can_suspend(),
            may_sleep: self.setup_over && !self.in_forced_window(now),
            turn_off: n.radio.params().turn_off,
        }
    }

    /// A recycled action buffer (policies run on every event; steady-
    /// state execution must not allocate).
    pub(crate) fn take_acts(&mut self) -> Vec<PolicyAction<Payload>> {
        self.act_pool.pop().unwrap_or_default()
    }

    /// Returns an action buffer to the pool.
    pub(crate) fn put_acts(&mut self, mut acts: Vec<PolicyAction<Payload>>) {
        acts.clear();
        self.act_pool.push(acts);
    }

    /// Applies policy actions in emission order.
    pub(crate) fn exec_policy_actions(
        &mut self,
        node: NodeId,
        acts: &mut Vec<PolicyAction<Payload>>,
        ctx: &mut Context<'_, Ev>,
    ) {
        for action in acts.drain(..) {
            if self.probe.enabled() {
                let kind = match &action {
                    PolicyAction::WakeRadio => PolicyActionKind::WakeRadio,
                    PolicyAction::SetTimer { .. } => PolicyActionKind::SetTimer,
                    PolicyAction::SendAtim { .. } => PolicyActionKind::SendAtim,
                    PolicyAction::Enqueue(_) => PolicyActionKind::Enqueue,
                    PolicyAction::Sleep { .. } | PolicyAction::Suspend => PolicyActionKind::Sleep,
                };
                self.probe
                    .on_policy_action(ctx.now(), node.index() as u32, kind);
            }
            match action {
                PolicyAction::WakeRadio => self.wake_radio(node, ctx),
                PolicyAction::SetTimer { timer, at } => {
                    let wall = self.to_wall(node, at).max(ctx.now());
                    let id = ctx.schedule_at(
                        wall,
                        Ev::Policy {
                            node,
                            timer,
                            local: at,
                        },
                    );
                    if timer.is_chain() {
                        // Track chain-timer events so churn (death /
                        // revival) can cancel the whole chain instead of
                        // letting stale links fire into a re-armed one.
                        // Consumed ids linger until this lazy compaction;
                        // chains hold ~1 pending link, so the list stays
                        // tiny.
                        let list = &mut self.chain_ev[node.index()];
                        list.retain(|&old| ctx.is_pending(old));
                        list.push(id);
                    }
                }
                PolicyAction::SendAtim { dest } => {
                    let frame = {
                        let n = &mut self.nodes[node.index()];
                        Frame {
                            id: n.mac.alloc_frame_id(),
                            src: node,
                            dest: Dest::Unicast(dest),
                            kind: FrameKind::Data,
                            bytes: ATIM_BYTES,
                            payload: Payload::Atim,
                        }
                    };
                    self.enqueue_frame(node, frame, ctx);
                }
                PolicyAction::Enqueue(frame) => self.enqueue_frame(node, frame, ctx),
                PolicyAction::Sleep { wake_at } => {
                    self.suspend_radio(node, ctx);
                    // A newer sleep decision supersedes any pending
                    // wake-up: cancel it outright.
                    if let Some(prev) = self.hot.wake_ev[node.index()].take() {
                        ctx.cancel(prev);
                    }
                    if let Some(at) = wake_at {
                        // Wake early by the guard time: desynced clocks
                        // make the planned instant unreliable, so buy
                        // tolerance with a little extra on-time.
                        let guard = self.guard_at(at);
                        let mut wall = self.to_wall(node, at);
                        if !guard.is_zero() {
                            wall = wall.saturating_sub(guard);
                            self.guard_wake_ns += guard.as_nanos();
                        }
                        let id = ctx.schedule_at(wall.max(ctx.now()), Ev::RadioWake { node });
                        self.hot.wake_ev[node.index()] = Some(id);
                    }
                }
                PolicyAction::Suspend => self.suspend_radio(node, ctx),
            }
        }
    }

    /// The radio-suspend handshake shared by every sleep path: park
    /// the MAC, start the ON→OFF transition, and schedule its
    /// completion. Callers are responsible for the guards (the radio
    /// must be active).
    pub(crate) fn suspend_radio(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let i = node.index();
        let d = {
            let n = &mut self.nodes[i];
            n.mac.radio_slept(now);
            n.radio.begin_sleep(now).expect("radio is active")
        };
        // `radio_slept` disarmed every MAC timer; cancel their expiry
        // events so none ride the queue stale.
        self.drain_mac_cancels(node, ctx);
        self.hot.radio_active[i] = false;
        self.hot.active_since[i] = SimTime::MAX;
        self.probe.on_radio_state(now, i as u32, false);
        ctx.schedule_after(d, Ev::RadioDone { node });
    }

    /// Gives the node's policy a chance to sleep (`checkState` call
    /// sites and protocol-agnostic boundaries).
    pub(crate) fn sleep_checkpoint(
        &mut self,
        node: NodeId,
        trigger: SleepTrigger,
        ctx: &mut Context<'_, Ev>,
    ) {
        self.probe
            .on_sleep_checkpoint(ctx.now(), node.index() as u32);
        let view = self.node_view(node, ctx.now());
        let mut acts = self.take_acts();
        self.nodes[node.index()]
            .policy
            .sleep_decision(trigger, &view, &mut acts);
        self.exec_policy_actions(node, &mut acts, ctx);
        self.put_acts(acts);
    }

    /// A policy timer expired: route it back into the policy. Chain
    /// timers (SYNC edges, PSM beacons) are tracked by handle in
    /// `chain_ev`, and churn (death / revival) cancels the whole chain,
    /// so a re-armed chain is never duplicated by a stale pending
    /// expiry; the dead-guard below covers chain links armed *while*
    /// the node was dead (a dead node's non-chain timers still run).
    ///
    /// The policy's view carries `local` — the schedule time it armed,
    /// i.e. what its own (possibly skewed) clock reads at expiry — not
    /// the wall clock. A schedule-driven policy fed the wall clock
    /// would see a fast node's timer fire *before* the edge it asked
    /// for, re-arm the very same edge, and spin forever at one instant.
    pub(crate) fn handle_policy_timer(
        &mut self,
        node: NodeId,
        timer: PolicyTimer,
        local: SimTime,
        ctx: &mut Context<'_, Ev>,
    ) {
        // Repair timers belong to the executor's self-healing layer,
        // not to any policy: intercept before the policy dispatch.
        if let PolicyTimer::Repair { target } = timer {
            self.handle_repair_timer(node, target, ctx);
            return;
        }
        if timer.is_chain() {
            let i = node.index();
            let id = ctx.event_id();
            let list = &mut self.chain_ev[i];
            #[cfg(feature = "sanitize")]
            assert!(
                list.contains(&id),
                "sanitizer: untracked chain policy timer dispatched at node {node}"
            );
            // This link is consumed; drop its handle from the chain set.
            if let Some(pos) = list.iter().position(|&x| x == id) {
                list.swap_remove(pos);
            }
            if self.hot.dead[i] {
                return;
            }
        }
        let view = self.node_view(node, local);
        let mut acts = self.take_acts();
        self.nodes[node.index()]
            .policy
            .on_timer(timer, &view, &mut acts);
        self.exec_policy_actions(node, &mut acts, ctx);
        self.put_acts(acts);
    }

    // ------------------------------------------------------------------
    // MAC plumbing
    // ------------------------------------------------------------------

    /// A recycled MAC-action buffer (every MAC entry point on the event
    /// path writes into one of these; steady state must not allocate).
    pub(crate) fn take_macts(&mut self) -> Vec<MacAction<Payload>> {
        self.mact_pool.pop().unwrap_or_default()
    }

    /// Returns a MAC-action buffer to the pool.
    pub(crate) fn put_macts(&mut self, mut acts: Vec<MacAction<Payload>>) {
        acts.clear();
        self.mact_pool.push(acts);
    }

    /// Cancels the expiry events of every timer `node`'s MAC disarmed
    /// since the last drain. Called after any MAC entry point that can
    /// disarm timers — this is the seam that turns the MAC's surrendered
    /// handles into real `queue.cancel` calls.
    pub(crate) fn drain_mac_cancels(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        while let Some(id) = self.nodes[node.index()].mac.pop_cancelled() {
            ctx.cancel(id);
        }
    }

    pub(crate) fn exec_mac_actions(
        &mut self,
        node: NodeId,
        actions: &mut Vec<MacAction<Payload>>,
        ctx: &mut Context<'_, Ev>,
    ) {
        // The MAC call that produced `actions` may also have disarmed
        // timers; cancel those expiry events before executing anything.
        self.drain_mac_cancels(node, ctx);
        for action in actions.drain(..) {
            match action {
                MacAction::SetTimer { kind, after } => {
                    let id = ctx.schedule_after(after, Ev::MacTimer { node, kind });
                    if let Some(stale) = self.nodes[node.index()].mac.timer_scheduled(kind, id) {
                        ctx.cancel(stale);
                    }
                }
                MacAction::StartTx { frame, airtime } => {
                    self.probe.on_tx_start(
                        ctx.now(),
                        node.index() as u32,
                        airtime.as_nanos(),
                        frame.bytes,
                    );
                    let start = self.channel.begin_tx(ctx.now(), node, airtime);
                    for i in 0..start.now_busy.len() {
                        let hn = start.now_busy[i];
                        let h = hn.index();
                        if !self.hot.dead[h] && self.hot.radio_active[h] {
                            // carrier_busy never emits actions, but it
                            // can disarm Difs/Backoff timers.
                            self.nodes[h].mac.carrier_busy(ctx.now());
                            self.drain_mac_cancels(hn, ctx);
                        }
                    }
                    self.channel.recycle_nodes(start.now_busy);
                    // Park the frame beside the in-flight transmission;
                    // `handle_tx_end` reclaims it by slot.
                    let si = start.id.slot_index();
                    if si >= self.tx_frames.len() {
                        self.tx_frames.resize_with(si + 1, || None);
                    }
                    self.tx_frames[si] = Some(frame);
                    ctx.schedule_after(
                        airtime,
                        Ev::TxEnd {
                            sender: node,
                            tx: start.id,
                        },
                    );
                }
                MacAction::Deliver { frame } => {
                    // A dead node's MAC is parked at death and every
                    // path into it is dead-guarded; a delivery here
                    // means a guard was bypassed.
                    #[cfg(feature = "sanitize")]
                    assert!(
                        !self.hot.dead[node.index()],
                        "sanitizer: frame delivered to dead node {node}"
                    );
                    self.handle_delivery(node, frame, ctx)
                }
                MacAction::TxDone { frame, attempts } => {
                    self.handle_tx_done(node, frame, attempts, ctx)
                }
                MacAction::TxFailed { frame, attempts } => {
                    self.handle_tx_failed(node, frame, attempts, ctx)
                }
            }
        }
    }

    pub(crate) fn enqueue_frame(
        &mut self,
        node: NodeId,
        frame: Frame<Payload>,
        ctx: &mut Context<'_, Ev>,
    ) {
        let mut acts = self.take_macts();
        self.nodes[node.index()]
            .mac
            .enqueue_into(frame, ctx.now(), &mut acts);
        self.exec_mac_actions(node, &mut acts, ctx);
        self.put_macts(acts);
    }

    // ------------------------------------------------------------------
    // Radio control
    // ------------------------------------------------------------------

    /// After a repair touched a sleeping node's expectations, re-arm
    /// its wake-up from the policy's earliest commitment.
    pub(crate) fn refresh_wake(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let i = node.index();
        if self.hot.dead[i] {
            return;
        }
        if self.hot.radio_active[i] {
            return; // awake: normal event flow handles it
        }
        let n = &self.nodes[i];
        let Some(earliest) = n.policy.earliest_commitment() else {
            return;
        };
        let turn_on = n.radio.params().turn_on;
        let guard = self.guard_at(earliest);
        let mut at = self.to_wall(node, earliest).saturating_sub(turn_on);
        if !guard.is_zero() {
            at = at.saturating_sub(guard);
            self.guard_wake_ns += guard.as_nanos();
        }
        if let Some(prev) = self.hot.wake_ev[i].take() {
            ctx.cancel(prev);
        }
        let id = ctx.schedule_at(at.max(now), Ev::RadioWake { node });
        self.hot.wake_ev[i] = Some(id);
    }

    /// Begin waking the radio if it is off (or queue the wake if it is
    /// mid-transition).
    pub(crate) fn wake_radio(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        if self.hot.dead[node.index()] {
            return;
        }
        let n = &mut self.nodes[node.index()];
        if n.radio.is_off() {
            let d = n.radio.begin_wake(now).expect("radio is off");
            ctx.schedule_after(d, Ev::RadioDone { node });
        } else {
            // Active / turning on: nothing. Turning off: queue the wake.
            let _ = n.radio.begin_wake(now);
        }
    }

    pub(crate) fn handle_radio_done(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        if self.hot.dead[node.index()] {
            return;
        }
        let outcome = self.nodes[node.index()].radio.finish_transition(now);
        match outcome {
            TransitionOutcome::NowOff => {}
            TransitionOutcome::NowActive => {
                self.hot.radio_active[node.index()] = true;
                self.hot.active_since[node.index()] = now;
                self.probe.on_radio_state(now, node.index() as u32, true);
                let busy = self.channel.carrier_busy(node);
                let mut acts = self.take_macts();
                self.nodes[node.index()]
                    .mac
                    .radio_woke_into(now, busy, &mut acts);
                self.exec_mac_actions(node, &mut acts, ctx);
                self.put_macts(acts);
                // A traffic-phase-skipped round advanced this node's
                // expectations while the radio was still turning on for
                // them; re-run the checkpoint now that it is active so
                // the node sleeps through the quiet round instead of
                // idling until the next event.
                if self.nodes[node.index()].recheck_on_wake {
                    self.nodes[node.index()].recheck_on_wake = false;
                    self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
                }
            }
            TransitionOutcome::OffWakeQueued => {
                let n = &mut self.nodes[node.index()];
                let d = n.radio.begin_wake(now).expect("just turned off");
                ctx.schedule_after(d, Ev::RadioDone { node });
            }
        }
    }

    pub(crate) fn handle_radio_wake(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) {
        let i = node.index();
        // Superseded wake-ups are cancelled at supersession, so a
        // dispatched wake is always the stored one; it is consumed here.
        let stored = self.hot.wake_ev[i].take();
        #[cfg(feature = "sanitize")]
        assert_eq!(
            stored,
            Some(ctx.event_id()),
            "sanitizer: stale radio wake dispatched at node {node}"
        );
        #[cfg(not(feature = "sanitize"))]
        let _ = stored;
        // Death does not cancel the pending wake (a node revived before
        // it fires still honours it, matching pre-handle semantics), so
        // a wake can dispatch for a still-dead node: drop it.
        if self.hot.dead[i] {
            return;
        }
        self.wake_radio(node, ctx);
    }

    pub(crate) fn handle_tx_end(&mut self, sender: NodeId, tx: TxId, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let frame = self.tx_frames[tx.slot_index()]
            .take()
            .expect("in-flight transmission has a parked frame");
        let mut end = std::mem::take(&mut self.tx_end_buf);
        self.channel.end_tx_into(now, tx, &mut end);
        let mut acts = self.take_macts();
        for i in 0..end.now_idle().len() {
            let h = end.now_idle()[i];
            let hi = h.index();
            if !self.hot.dead[hi] && self.hot.radio_active[hi] {
                self.nodes[hi].mac.carrier_idle_into(now, &mut acts);
                self.exec_mac_actions(h, &mut acts, ctx);
            }
        }
        if !self.hot.dead[sender.index()] {
            self.nodes[sender.index()].mac.tx_ended_into(now, &mut acts);
            self.exec_mac_actions(sender, &mut acts, ctx);
        }
        let mut delivered: u32 = 0;
        for i in 0..end.clean().len() {
            let r = end.clean()[i];
            let ri = r.index();
            if self.hot.dead[ri] {
                continue;
            }
            // The receiver must have been awake for the entire frame
            // (`active_since` is `SimTime::MAX` while not fully active).
            if self.hot.active_since[ri] <= end.started {
                delivered += 1;
                self.probe.on_rx(now, ri as u32, sender.index() as u32);
                // `Frame<Payload>` is `Copy`: the fan-out to receivers
                // is a bitwise copy, not an allocation.
                self.nodes[ri].mac.frame_arrived_into(frame, now, &mut acts);
                self.exec_mac_actions(r, &mut acts, ctx);
            }
        }
        self.put_macts(acts);
        if self.probe.enabled() {
            self.probe
                .on_tx_end(now, sender.index() as u32, delivered, end.corrupted_len());
        }
        self.tx_end_buf = end;
        self.sleep_checkpoint(sender, SleepTrigger::Quiesce, ctx);
    }
}
