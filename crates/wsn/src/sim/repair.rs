//! In-protocol self-healing: link-quality estimation, repair timers,
//! and deadline-aware retransmission budgets.
//!
//! The paper's §4.3 maintenance machinery *detects* failures (the
//! [`essat_core::maintenance::FailureDetector`]s in each node's stack);
//! this module decides what to do about them. Three pieces:
//!
//! * **Link-quality EWMA** — every unicast report outcome on the
//!   tx-end seam updates a seeded per-directed-link estimate
//!   (`q' = (1-α)q + α·outcome`, one step per MAC attempt). Pure
//!   arithmetic: it never touches the event queue or any RNG, so a
//!   fault-free run is bit-for-bit unchanged with repair enabled.
//! * **Repair timers with exponential backoff** — a tripped detector
//!   arms a [`PolicyTimer::Repair`] instead of repairing synchronously.
//!   The timer holds a real [`EventId`] handle: hearing from the
//!   suspect again *cancels the event on the queue* (the PR 9
//!   cancel-on-disarm discipline), and a dispatched expiry re-verifies
//!   the detection before touching the tree. A failed repair re-arms
//!   with doubled delay up to [`crate::config::RepairConfig`]'s cap.
//! * **Quality-driven re-parenting** — a node that lost its parent
//!   moves itself (subtree and all) under the best live neighbour by
//!   (depth, link quality, lowest id); after any repair an adoption
//!   sweep re-admits orphaned subtrees to fixpoint, which is what lets
//!   a partitioned collection tree actually recover.
//!
//! The layer activates only when the run can fault at all
//! ([`World::faults_possible`]): with `repair.enabled = false` — or on
//! an idealised fault-free configuration, where MAC retry exhaustion
//! can only come from plain contention — the legacy synchronous §4.3
//! path runs unchanged, byte-for-byte. The former is the A/B the
//! `self_healing` figure measures; the latter is what keeps the golden
//! digests stable with repair enabled by default.

use essat_core::policy::PolicyTimer;
use essat_net::frame::{Dest, Frame};
use essat_net::ids::NodeId;
use essat_net::topology::Topology;
use essat_obs::Probe;
use essat_query::round::RoundKey;
use essat_query::tree::RoutingTree;
use essat_sim::engine::Context;
use essat_sim::queue::EventId;
use essat_sim::time::{SimDuration, SimTime};

use super::events::Ev;
use super::world::World;
use crate::config::RepairConfig;
use crate::payload::Payload;

/// One directed-link EWMA fold: the estimate after a unicast MAC cycle
/// that took `attempts` tries and ended in `delivered`. A success after
/// `a` attempts is `a - 1` failure steps (`q *= 1 - α`) followed by one
/// success step (`q = (1-α)q + α`); an exhausted cycle is `a` failure
/// steps. Pure arithmetic — public so the `micro/link_quality_ewma`
/// bench measures exactly the code the simulator runs.
pub fn link_ewma_step(mut slot: f64, alpha: f64, attempts: u32, delivered: bool) -> f64 {
    let failures = if delivered {
        attempts.saturating_sub(1)
    } else {
        attempts
    };
    for _ in 0..failures {
        slot *= 1.0 - alpha;
    }
    if delivered {
        slot = (1.0 - alpha) * slot + alpha;
    }
    slot
}

/// Self-healing state carried by the [`World`]: per-node repair timers
/// (structure-of-arrays, like the `Hot` block), the flat directed
/// link-quality matrix, and the run's repair counters.
#[derive(Debug, Default)]
pub(crate) struct RepairState {
    /// Directed link-quality EWMA, `[src * n + dst]`. Empty when
    /// repair is disabled (the quality closure then reads flat 1.0).
    pub(crate) link_q: Vec<f64>,
    /// Handle of each node's pending repair timer. Disarms cancel the
    /// event on the queue through this handle; a dispatched expiry is
    /// therefore always the armed one.
    pub(crate) timer_ev: Vec<Option<EventId>>,
    /// The suspected-failed neighbour the armed timer targets.
    pub(crate) target: Vec<Option<NodeId>>,
    /// Backoff exponent for the next re-arm (reset on success/disarm).
    pub(crate) backoff: Vec<u32>,
    /// When the detector first tripped (the reparent-latency metric
    /// measures from here to the successful repair).
    pub(crate) armed_at: Vec<Option<SimTime>>,
    /// When a live build-time member lost tree membership (the
    /// orphan-node-seconds metric accumulates until re-adoption, death,
    /// or run end).
    pub(crate) orphaned_since: Vec<Option<SimTime>>,
    /// Successful repairs (re-parent or declare-failed-and-heal).
    pub(crate) repairs: u64,
    /// Total detection-to-repair latency over all repairs.
    pub(crate) reparent_latency_ns: u64,
    /// Total live-but-orphaned node-time.
    pub(crate) orphan_node_ns: u64,
    /// Reports re-dispatched under the deadline budget.
    pub(crate) redispatches: u64,
}

impl RepairState {
    /// `active` is the *resolved* gate: repair enabled in config **and**
    /// the run can fault at all ([`World::faults_possible`]). On an
    /// idealised fault-free run the layer allocates nothing and the
    /// legacy event stream is preserved byte-for-byte.
    pub(crate) fn new(n: usize, active: bool, cfg: &RepairConfig) -> RepairState {
        RepairState {
            link_q: if active {
                vec![cfg.ewma_seed; n * n]
            } else {
                Vec::new()
            },
            timer_ev: vec![None; n],
            target: vec![None; n],
            backoff: vec![0; n],
            armed_at: vec![None; n],
            orphaned_since: vec![None; n],
            repairs: 0,
            reparent_latency_ns: 0,
            orphan_node_ns: 0,
            redispatches: 0,
        }
    }
}

impl<P: Probe> World<P> {
    /// The resolved self-healing gate: enabled in config *and* the run
    /// can fault (see the module docs for why both are required).
    pub(crate) fn repair_active(&self) -> bool {
        self.cfg.repair.enabled && self.faults_possible()
    }

    // ------------------------------------------------------------------
    // Link-quality estimation
    // ------------------------------------------------------------------

    /// Folds a unicast MAC outcome into the `src -> dst` link estimate
    /// via [`link_ewma_step`]. Pure arithmetic — no events, no RNG — so
    /// the estimate is free on the fault-free event stream.
    pub(crate) fn observe_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        attempts: u32,
        delivered: bool,
    ) {
        if self.repair.link_q.is_empty() {
            return; // repair disabled
        }
        let a = self.cfg.repair.ewma_alpha;
        let n = self.topo.node_count();
        let slot = &mut self.repair.link_q[src.index() * n + dst.index()];
        *slot = link_ewma_step(*slot, a, attempts, delivered);
    }

    /// Runs `f` with the tree, the topology, and the directed
    /// link-quality closure the tree's repair operations consume.
    /// Dead candidates read `-inf` — the tree skips non-finite
    /// qualities, so a repair never attaches anyone under a corpse.
    pub(crate) fn with_quality<R>(
        &mut self,
        f: impl FnOnce(&mut RoutingTree, &Topology, &dyn Fn(NodeId, NodeId) -> f64) -> R,
    ) -> R {
        let lq = std::mem::take(&mut self.repair.link_q);
        let n = self.topo.node_count();
        let dead = &self.hot.dead;
        let quality = |s: NodeId, d: NodeId| -> f64 {
            if dead[d.index()] {
                return f64::NEG_INFINITY;
            }
            if lq.is_empty() {
                1.0
            } else {
                lq[s.index() * n + d.index()]
            }
        };
        let r = f(&mut self.tree, &self.topo, &quality);
        self.repair.link_q = lq;
        r
    }

    // ------------------------------------------------------------------
    // Repair timers (arm / disarm / fire)
    // ------------------------------------------------------------------

    /// A §4.3 failure detector at `node` tripped against `peer`. With
    /// repair enabled this arms the backoff timer; disabled, it runs
    /// the legacy synchronous declare-failed repair.
    pub(crate) fn on_peer_suspect(
        &mut self,
        node: NodeId,
        peer: NodeId,
        ctx: &mut Context<'_, Ev>,
    ) {
        if self.repair_active() {
            self.arm_repair(node, peer, ctx);
        } else {
            self.repair_tree(peer, ctx);
        }
    }

    /// Arms `node`'s repair timer against `target` (at most one in
    /// flight per node; re-trips while armed are absorbed).
    pub(crate) fn arm_repair(&mut self, node: NodeId, target: NodeId, ctx: &mut Context<'_, Ev>) {
        if !self.repair_active() {
            return;
        }
        let i = node.index();
        if self.repair.timer_ev[i].is_some() {
            return;
        }
        if self.repair.armed_at[i].is_none() {
            self.repair.armed_at[i] = Some(ctx.now());
        }
        self.schedule_repair(node, target, ctx);
    }

    /// `node` heard from `heard` again: the suspicion is withdrawn and
    /// the pending repair event is cancelled on the queue.
    pub(crate) fn disarm_repair(&mut self, node: NodeId, heard: NodeId, ctx: &mut Context<'_, Ev>) {
        let i = node.index();
        if self.repair.target[i] != Some(heard) {
            return;
        }
        if let Some(id) = self.repair.timer_ev[i].take() {
            ctx.cancel(id);
        }
        self.repair.target[i] = None;
        self.repair.armed_at[i] = None;
        self.repair.backoff[i] = 0;
    }

    fn schedule_repair(&mut self, node: NodeId, target: NodeId, ctx: &mut Context<'_, Ev>) {
        let i = node.index();
        let at = ctx.now() + self.repair_backoff_delay(i);
        let id = ctx.schedule_at(
            at,
            Ev::Policy {
                node,
                timer: PolicyTimer::Repair { target },
                local: at,
            },
        );
        self.repair.timer_ev[i] = Some(id);
        self.repair.target[i] = Some(target);
    }

    /// `backoff_base * 2^level`, capped — the schedule DESIGN.md's
    /// self-healing section documents.
    fn repair_backoff_delay(&self, i: usize) -> SimDuration {
        let r = &self.cfg.repair;
        let d = r.backoff_base * (1u64 << self.repair.backoff[i].min(16));
        if d > r.backoff_cap {
            r.backoff_cap
        } else {
            d
        }
    }

    fn rearm_repair(&mut self, node: NodeId, target: NodeId, ctx: &mut Context<'_, Ev>) {
        let i = node.index();
        self.repair.backoff[i] = self.repair.backoff[i].saturating_add(1);
        self.schedule_repair(node, target, ctx);
    }

    fn finish_repair(&mut self, i: usize) {
        self.repair.armed_at[i] = None;
        self.repair.backoff[i] = 0;
    }

    /// A repair timer expired. The stored handle is consumed (and
    /// asserted against the dispatched event under `sanitize`); the
    /// detection is re-verified before the tree is touched, so a
    /// suspicion healed between arming and expiry is a no-op.
    pub(crate) fn handle_repair_timer(
        &mut self,
        node: NodeId,
        target: NodeId,
        ctx: &mut Context<'_, Ev>,
    ) {
        let i = node.index();
        let stored = self.repair.timer_ev[i].take();
        #[cfg(feature = "sanitize")]
        assert_eq!(
            stored,
            Some(ctx.event_id()),
            "sanitizer: stale repair timer dispatched at node {node}"
        );
        #[cfg(not(feature = "sanitize"))]
        let _ = stored;
        self.repair.target[i] = None;
        if self.hot.dead[i] {
            self.finish_repair(i);
            return;
        }
        let now = ctx.now();
        // The detector itself fell out of the tree while waiting (an
        // ancestor's repair dropped its subtree): orphan self-rescue.
        if !self.tree.is_member(node) {
            self.adoption_sweep(ctx);
            if self.tree.is_member(node) {
                self.finish_repair(i);
                self.check_partition_healed(now);
            } else {
                self.rearm_repair(node, target, ctx);
            }
            return;
        }
        // Re-verify: is the peer still a tripped detector's target in
        // the same tree relation it was suspected under?
        let parent_case = self.tree.parent(node) == Some(target);
        let child_case = self.tree.is_member(target) && self.tree.parent(target) == Some(node);
        let still_failed = if parent_case {
            let d = &self.nodes[i].parent_fail;
            d.miss_count(target) >= d.threshold()
        } else if child_case {
            let d = &self.nodes[i].child_fail;
            d.miss_count(target) >= d.threshold()
        } else {
            false
        };
        if !still_failed || target == self.root {
            self.finish_repair(i);
            return;
        }
        if parent_case {
            // Move self — subtree and all — away from the silent parent.
            if self.reparent_self(node, ctx) {
                self.repair.repairs += 1;
                if let Some(t0) = self.repair.armed_at[i] {
                    self.repair.reparent_latency_ns += now.saturating_duration_since(t0).as_nanos();
                }
                self.nodes[i].parent_fail.remove(target);
                self.adoption_sweep(ctx);
                self.finish_repair(i);
                #[cfg(feature = "sanitize")]
                self.sanitize_after_repair(&[node], now);
                self.check_partition_healed(now);
            } else {
                self.rearm_repair(node, target, ctx);
            }
        } else {
            // Declare the silent child failed (§4.3) and heal around it.
            self.repair_tree(target, ctx);
            self.repair.repairs += 1;
            if let Some(t0) = self.repair.armed_at[i] {
                self.repair.reparent_latency_ns += now.saturating_duration_since(t0).as_nanos();
            }
            self.adoption_sweep(ctx);
            self.finish_repair(i);
            #[cfg(feature = "sanitize")]
            self.sanitize_after_repair(&[], now);
            self.check_partition_healed(now);
        }
    }

    // ------------------------------------------------------------------
    // Tree surgery
    // ------------------------------------------------------------------

    /// Moves `node` (with its subtree) under its best live neighbour by
    /// (depth, link quality, lowest id). Returns false when no valid
    /// candidate exists — the caller re-arms with backoff.
    pub(crate) fn reparent_self(&mut self, node: NodeId, ctx: &mut Context<'_, Ev>) -> bool {
        let now = ctx.now();
        let old_parent = self.tree.parent(node);
        let old_rank: Vec<u32> = self.topo.nodes().map(|n| self.tree.rank(n)).collect();
        let old_max = self.tree.max_rank();
        let Some(new_parent) = self.with_quality(|tree, topo, q| tree.reparent(topo, node, q))
        else {
            return false;
        };
        // The abandoned parent drops every dependency on this node.
        if let Some(p) = old_parent {
            self.drop_child_dependency(p, node, ctx);
        }
        // Everyone whose schedule the move touched re-derives it.
        let max_changed = self.tree.max_rank() != old_max;
        for m in self.topo.nodes() {
            if !self.tree.is_member(m) {
                continue;
            }
            let rank_changed = self.tree.rank(m) != old_rank[m.index()];
            let touched = m == node || Some(m) == old_parent || m == new_parent;
            if rank_changed || touched || max_changed {
                self.refresh_node_schedule(m, now);
                self.refresh_wake(m, ctx);
            }
        }
        true
    }

    /// Re-admits orphaned live members under their best-quality member
    /// neighbours, to fixpoint — an adoption can make the next orphan
    /// reachable, which is exactly how a partitioned subtree chains its
    /// way back to the root.
    pub(crate) fn adoption_sweep(&mut self, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        loop {
            let mut adopted = false;
            for idx in 0..self.topo.node_count() {
                let node = NodeId::new(idx as u32);
                if node == self.root
                    || self.hot.dead[idx]
                    || !self.hot.member[idx]
                    || self.tree.is_member(node)
                {
                    continue;
                }
                let old_rank: Vec<u32> = self.topo.nodes().map(|n| self.tree.rank(n)).collect();
                let old_max = self.tree.max_rank();
                let Some(parent) =
                    self.with_quality(|tree, topo, q| tree.adopt_orphan(topo, node, q))
                else {
                    continue;
                };
                adopted = true;
                self.settle_orphan(idx, now);
                self.readmit_node(node, parent, &old_rank, old_max, ctx);
                #[cfg(feature = "sanitize")]
                self.sanitize_after_repair(&[node], now);
            }
            if !adopted {
                break;
            }
        }
    }

    /// Closes a node's orphan-seconds accounting interval, if open.
    pub(crate) fn settle_orphan(&mut self, i: usize, now: SimTime) {
        if let Some(since) = self.repair.orphaned_since[i].take() {
            self.repair.orphan_node_ns += now.saturating_duration_since(since).as_nanos();
        }
    }

    // ------------------------------------------------------------------
    // Deadline-aware retransmission budget
    // ------------------------------------------------------------------

    /// A report's MAC retry cycle just failed. Re-dispatch it toward
    /// the current parent iff another full cycle can still land before
    /// the round's deadline (minus slack) and the per-round budget is
    /// not exhausted: `now + retry_cost <= deadline - slack`. Returns
    /// true when the report was re-queued (the caller then skips the
    /// failure path — the round is still live).
    pub(crate) fn try_redispatch(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        mut frame: Frame<Payload>,
        ctx: &mut Context<'_, Ev>,
    ) -> bool {
        let r = self.cfg.repair;
        if !self.repair_active() || r.max_redispatch == 0 {
            return false;
        }
        let Some(parent) = self.tree.parent(node) else {
            return false;
        };
        let q = self.query(qi);
        let now = ctx.now();
        let mac = self.cfg.mac;
        let retry_cost =
            (frame.airtime(mac.bitrate_bps) + mac.ack_timeout()) * mac.retry_limit as u64;
        let deadline = q.round_start(k) + q.deadline;
        if now + retry_cost > deadline.saturating_sub(r.budget_slack) {
            return false; // hopeless: the deadline cannot be met
        }
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let Some(rs) = self.nodes[node.index()].rounds.get_mut(&key) else {
            return false;
        };
        if rs.redispatches >= r.max_redispatch {
            return false;
        }
        rs.redispatches += 1;
        self.repair.redispatches += 1;
        // A repair may have moved this node since the first dispatch;
        // aim at the current parent.
        frame.dest = Dest::Unicast(parent);
        self.enqueue_frame(node, frame, ctx);
        true
    }

    // ------------------------------------------------------------------
    // Partition episode accounting
    // ------------------------------------------------------------------

    /// Opens a partition episode if the network just became
    /// partitioned (called on deaths and after tree repairs drop
    /// orphans).
    pub(crate) fn check_partition_opened(&mut self, now: SimTime) {
        if self.lifetime.partitioned_since.is_none() && self.is_partitioned() {
            self.lifetime.mark_partitioned(now);
        }
    }

    /// Closes the open partition episode if the network healed (called
    /// after revivals, rejoins, and adoption sweeps).
    pub(crate) fn check_partition_healed(&mut self, now: SimTime) {
        if self.lifetime.partitioned_since.is_some() && !self.is_partitioned() {
            self.lifetime.mark_recovered(now);
        }
    }

    /// Post-repair invariants: the tree stays acyclic and consistent,
    /// and every node a repair just (re-)attached hangs under a live
    /// parent — a repair must never adopt anyone into a corpse's
    /// subtree.
    #[cfg(feature = "sanitize")]
    pub(crate) fn sanitize_after_repair(&self, touched: &[NodeId], now: SimTime) {
        self.tree.check_invariants();
        for &m in touched {
            if let Some(p) = self.tree.parent(m) {
                assert!(
                    !self.hot.dead[p.index()],
                    "sanitizer: repair attached {m} under dead parent {p} at {now}"
                );
            }
        }
    }
}
