//! The [`World`]: one simulation run over the discrete-event engine.

use std::collections::{BTreeMap, BTreeSet};

use essat_core::policy::{PolicyAction, SleepTrigger};
use essat_net::channel::{Channel, TxEndBuf};
use essat_net::frame::Frame;
use essat_net::ids::NodeId;
use essat_net::mac::Mac;
use essat_net::radio::Radio;
use essat_net::topology::Topology;
use essat_obs::profile::RunTimings;
use essat_obs::{NullProbe, Probe, SampleView};
use essat_query::aggregate::AggState;
use essat_query::model::{Query, QueryId};
use essat_query::tree::RoutingTree;
use essat_scenario::compile::CompiledScenario;
use essat_scenario::gilbert::GilbertElliott;
use essat_sim::engine::{Context, Engine, Model};
use essat_sim::queue::EventId;
use essat_sim::rng::SimRng;
use essat_sim::stats::{Histogram, OnlineStats};
use essat_sim::time::SimTime;

use super::events::Ev;
use super::node::{NodeState, RadioSnapshot, CHILD_FAIL_THRESHOLD, PARENT_FAIL_THRESHOLD};
use super::pool::{BuildCache, Prebuilt, WorldScratch};
use crate::config::{ExperimentConfig, SetupMode};
use crate::metrics::{LifetimeStats, MacTotals, NodeMetrics, QueryMetrics, RunResult};
use crate::payload::Payload;
use crate::protocol::{PolicyEnv, PolicyFactory, Protocol};

/// Fine-grained sleep-interval histogram: 0.5 ms bins up to 1 s.
const SLEEP_HIST_BIN_S: f64 = 0.0005;
const SLEEP_HIST_BINS: usize = 2000;

/// Cache-linear per-node hot state, structure-of-arrays.
///
/// These are the scalars consulted by (nearly) every event — the dead /
/// member guards, the radio-mode test in the per-receiver transmission
/// fan-out, the pending wake-up handles — plus the flags the
/// periodic `BatteryCheck` sweep scans. Keeping them in flat arrays
/// indexed by node keeps those whole-network walks inside a handful of
/// cache lines instead of striding across the ~half-KB
/// [`NodeState`](super::node::NodeState) records.
///
/// `radio_active` / `active_since` mirror the per-node
/// [`essat_net::radio::Radio`] state machine exactly; every transition
/// goes through a `World` method (`suspend_radio`, `wake_radio`,
/// `handle_radio_done`, churn revival), which updates the mirror in the
/// same breath.
#[derive(Debug, Default)]
pub(crate) struct Hot {
    /// Node is dead (scripted failure, churn, or battery depletion).
    pub(crate) dead: Vec<bool>,
    /// Node joined the routing tree at build time.
    pub(crate) member: Vec<bool>,
    /// Mirror of `radio.is_active()`.
    pub(crate) radio_active: Vec<bool>,
    /// Mirror of `radio.active_since()`; `SimTime::MAX` while the radio
    /// is not fully active.
    pub(crate) active_since: Vec<SimTime>,
    /// Handle of the node's pending Safe-Sleep wake-up, if any. A newer
    /// sleep decision cancels the superseded event on the queue through
    /// this handle instead of letting it dispatch stale.
    pub(crate) wake_ev: Vec<Option<EventId>>,
    /// Death was caused by battery depletion: permanent — churn
    /// `resurrect` events must not revive a node with an empty battery.
    pub(crate) battery_dead: Vec<bool>,
}

impl Hot {
    fn new(n: usize, tree: &RoutingTree) -> Hot {
        Hot {
            dead: vec![false; n],
            member: (0..n)
                .map(|i| tree.is_member(NodeId::new(i as u32)))
                .collect(),
            radio_active: vec![true; n],
            active_since: vec![SimTime::ZERO; n],
            wake_ev: vec![None; n],
            battery_dead: vec![false; n],
        }
    }
}

/// One simulation run: the [`Model`] driven by the engine.
///
/// The `World` owns the topology, the routing tree, the shared channel,
/// and a per-node stack (radio + MAC + power policy + query agent). It
/// is a protocol-agnostic executor: all power-management behaviour
/// lives behind each node's [`essat_core::policy::PowerPolicy`], built
/// once per run by the policy factory (default:
/// [`Protocol::build_policy`]).
///
/// The world is generic over an [`essat_obs::Probe`]: a read-only
/// observer notified at the same structural seams the `sanitize`
/// feature checks. The default [`NullProbe`] monomorphizes every hook
/// away, so the probe-free hot path is unchanged; attaching a real
/// probe cannot perturb the run (probes see shared views only — the
/// digest-equality tests in `tests/probes.rs` pin this).
#[derive(Debug)]
pub struct World<P: Probe = NullProbe> {
    pub(crate) cfg: ExperimentConfig,
    /// Master RNG (kept for deriving fresh per-node streams mid-run,
    /// e.g. the MAC of a churn-revived node).
    pub(crate) master: SimRng,
    /// Immutable for the whole run; shared across jobs by the sweep
    /// executor's build cache.
    pub(crate) topo: std::sync::Arc<Topology>,
    pub(crate) tree: RoutingTree,
    pub(crate) root: NodeId,
    pub(crate) channel: Channel,
    /// Compiled dynamic-environment scenario, if any.
    pub(crate) scenario: Option<CompiledScenario>,
    pub(crate) queries: Vec<Query>,
    pub(crate) source_count: Vec<u64>,
    pub(crate) nodes: Vec<NodeState>,
    /// Structure-of-arrays hot node state (see [`Hot`]).
    pub(crate) hot: Hot,
    /// Handles of each node's pending *chain* policy timers (SYNC
    /// edges / PSM beacons): the self-perpetuating schedules a churn
    /// death or recovery must truly cancel on the queue. Non-chain
    /// policy timers are one-shots and stay untracked.
    pub(crate) chain_ev: Vec<Vec<EventId>>,
    pub(crate) setup_over: bool,
    pub(crate) forced_windows: Vec<(SimTime, SimTime)>,
    pub(crate) run_end: SimTime,
    pub(crate) measure_from: SimTime,
    // accumulated metrics
    pub(crate) qmetrics: Vec<QueryMetrics>,
    pub(crate) phase_piggybacks: u64,
    pub(crate) phase_requests: u64,
    pub(crate) reports_sent: u64,
    /// Child reports still missing when a collection timeout fired.
    pub(crate) missed_reports: u64,
    /// Piggybacked phase updates that resolved a known-stale phase.
    pub(crate) resync_events: u64,
    /// Total guard-time lead added to radio wake-ups (clock-drift
    /// tolerance bought with energy; see
    /// [`crate::config::GuardTime`]).
    pub(crate) guard_wake_ns: u64,
    /// Invariant checker (compiled in only with the `sanitize`
    /// feature).
    #[cfg(feature = "sanitize")]
    pub(crate) san: super::sanitizer::Sanitizer,
    /// Deaths / partition / recovery marks for the lifetime figures.
    pub(crate) lifetime: LifetimeStats,
    /// Self-healing state: link-quality EWMA, per-node repair timers,
    /// orphan accounting, and the run's repair counters (see
    /// [`super::repair`]).
    pub(crate) repair: super::repair::RepairState,
    /// MAC counters of MACs replaced by churn revivals (so totals keep
    /// the pre-death traffic).
    pub(crate) mac_lost: MacTotals,
    /// Recycled `(child, rank)` buffers for [`World::tree_view`], so the
    /// per-event tree snapshots allocate only until the pool warms up.
    pub(crate) kid_pool: Vec<Vec<(NodeId, u32)>>,
    /// Recycled policy-action buffers (same purpose as `kid_pool`).
    pub(crate) act_pool: Vec<Vec<PolicyAction<Payload>>>,
    /// Recycled MAC-action buffers (same purpose as `kid_pool`).
    pub(crate) mact_pool: Vec<Vec<essat_net::mac::MacAction<Payload>>>,
    /// In-flight frames, indexed by the channel's transmission slot.
    ///
    /// The frame body used to travel inside `Ev::TxEnd`, which made
    /// every queue slot as large as the fattest frame (120 B) and every
    /// push/pop copy it; parking frames here keeps the event alphabet
    /// at pointer-ish sizes for the 40M-event runs.
    pub(crate) tx_frames: Vec<Option<Frame<Payload>>>,
    /// Recycled flat tx-end outcome buffer: the channel partitions each
    /// finished transmission's clean / corrupted / now-idle fan-out into
    /// this one contiguous list instead of three per-call vectors.
    pub(crate) tx_end_buf: TxEndBuf,
    /// Recycled scratch for the whole-network sweeps (battery doom
    /// list, boundary checkpoint work lists).
    pub(crate) sweep_scratch: Vec<u32>,
    /// The attached observability probe ([`NullProbe`] by default).
    pub(crate) probe: P,
}

impl World {
    /// Builds the world and the initial event list for `cfg`, with the
    /// default policy factory ([`Protocol::build_policy`]).
    pub fn new(cfg: ExperimentConfig) -> (World, Vec<(SimTime, Ev)>) {
        Self::new_with(cfg, &Protocol::build_policy)
    }

    /// Builds the world with a custom policy factory — the plugin seam:
    /// the factory is consulted once per node and may return any
    /// [`essat_core::policy::PowerPolicy`] implementation, including
    /// ones defined outside this workspace.
    pub fn new_with(
        cfg: ExperimentConfig,
        factory: &PolicyFactory<'_>,
    ) -> (World, Vec<(SimTime, Ev)>) {
        let mut initial = Vec::new();
        let world = World::new_prebuilt(cfg, factory, None, &mut initial, NullProbe);
        (world, initial)
    }
}

impl<P: Probe> World<P> {
    /// [`World::new_with`] over an optional cached build block,
    /// appending the initial event list to a caller-recycled buffer —
    /// the sweep executor's construction path. The probe is installed
    /// before any event runs (and told about the scenario's scripted
    /// clock glitches, which are compiled ahead of time).
    pub(crate) fn new_prebuilt(
        cfg: ExperimentConfig,
        factory: &PolicyFactory<'_>,
        pre: Option<std::sync::Arc<Prebuilt>>,
        initial: &mut Vec<(SimTime, Ev)>,
        probe: P,
    ) -> World<P> {
        cfg.validate();
        let master = SimRng::seed_from_u64(cfg.seed);
        let mut phase_rng = master.derive(2);
        let channel_rng = master.derive(3);

        // The topology, pristine routing tree and channel adjacency are
        // pure functions of (cfg shape, seed); take them from the cache
        // when the executor provides one, else build them here (the
        // builder consumes the same `master.derive(1)` stream either
        // way, so cached and fresh construction are indistinguishable).
        let pre = match pre {
            Some(p) => p,
            None => std::sync::Arc::new(Prebuilt::build(&cfg)),
        };
        let topo = std::sync::Arc::clone(&pre.topo);
        let root = pre.root;
        let tree = pre.tree.clone();

        let mut channel = Channel::with_adjacency(std::sync::Arc::clone(&pre.adj), channel_rng);
        channel.set_drop_probability(cfg.drop_probability);

        // Dynamic environment: compile the scenario (or replay its
        // recorded trace) and install the bursty-link process.
        let scenario = cfg
            .scenario
            .as_ref()
            .map(|s| s.resolve(cfg.nodes, root.as_u32(), cfg.duration, cfg.seed));
        if let Some(ge) = scenario.as_ref().and_then(|s| s.link) {
            channel.set_loss_model(Box::new(GilbertElliott::new(
                topo.node_count(),
                ge,
                master.derive(7),
            )));
        }

        // Queries: three classes at rate ratio 6:3:2.
        let rates = cfg.workload.class_rates();
        let mut queries = Vec::new();
        for &rate in &rates {
            for _ in 0..cfg.workload.queries_per_class {
                let id = QueryId::new(queries.len() as u32);
                let period = essat_sim::time::SimDuration::from_rate_hz(rate);
                let phase = SimTime::from_secs_f64(
                    phase_rng.range_f64(0.0, cfg.workload.phase_window.as_secs_f64()),
                );
                let mut q = Query::periodic(id, period, phase, cfg.workload.op);
                if let Some(d) = cfg.workload.deadline {
                    q = q.with_deadline(d);
                }
                queries.push(q);
            }
        }
        let member_count = tree.member_count() as u64;
        let source_count = queries.iter().map(|_| member_count).collect();

        let run_end = SimTime::ZERO + cfg.duration;
        let measure_from = SimTime::ZERO + cfg.setup_slot;

        // The policy factory sees the finished tree (SPAN derives its
        // backbone from it) and builds one policy per node.
        let env = PolicyEnv::new(&cfg, &tree, topo.node_count(), run_end);
        let hot = Hot::new(topo.node_count(), &tree);
        let nodes = topo
            .nodes()
            .map(|id| NodeState {
                policy: factory(&cfg, id, &env),
                radio: Radio::new(cfg.radio),
                mac: Mac::new(id, cfg.mac, master.derive2(4, id.as_u32() as u64)),
                died_at: None,
                participating: BTreeSet::new(),
                expected_children: BTreeMap::new(),
                rounds: BTreeMap::new(),
                done: BTreeMap::new(),
                loss: essat_core::maintenance::LossDetector::new(),
                child_fail: essat_core::maintenance::FailureDetector::new(CHILD_FAIL_THRESHOLD),
                parent_fail: essat_core::maintenance::FailureDetector::new(PARENT_FAIL_THRESHOLD),
                stale_phase: BTreeSet::new(),
                next_round: BTreeMap::new(),
                revivals: 0,
                recheck_on_wake: false,
                registered: BTreeSet::new(),
                snap: RadioSnapshot::default(),
                rank0: tree.rank(id),
                level0: tree.level(id).unwrap_or(0),
            })
            .collect();

        let qmetrics = queries
            .iter()
            .map(|q| QueryMetrics {
                query: q.id,
                rate_hz: q.rate_hz(),
                latency: OnlineStats::new(),
                rounds_completed: 0,
                rounds_full: 0,
                delivered_readings: 0,
                expected_readings: 0,
                records: Vec::new(),
            })
            .collect();

        let mut forced_windows = Vec::new();
        if cfg.setup_mode == SetupMode::Flooded {
            for q in &queries {
                let start = q.phase.saturating_sub(cfg.setup_slot);
                forced_windows.push((start, start + cfg.setup_slot));
            }
        }

        let topo_nodes = topo.node_count();
        let repair_active = cfg.repair.enabled
            && (scenario.as_ref().is_some_and(|s| s.can_fault())
                || !cfg.node_failures.is_empty()
                || cfg.drop_probability > 0.0);
        let repair = super::repair::RepairState::new(topo_nodes, repair_active, &cfg.repair);
        let mut world = World {
            cfg,
            master,
            topo,
            tree,
            root,
            channel,
            scenario,
            queries,
            source_count,
            nodes,
            hot,
            chain_ev: vec![Vec::new(); topo_nodes],
            setup_over: false,
            forced_windows,
            run_end,
            measure_from,
            qmetrics,
            phase_piggybacks: 0,
            phase_requests: 0,
            reports_sent: 0,
            missed_reports: 0,
            resync_events: 0,
            guard_wake_ns: 0,
            #[cfg(feature = "sanitize")]
            san: super::sanitizer::Sanitizer::default(),
            lifetime: LifetimeStats::default(),
            repair,
            mac_lost: MacTotals::default(),
            kid_pool: Vec::new(),
            act_pool: Vec::new(),
            mact_pool: Vec::new(),
            tx_frames: Vec::new(),
            tx_end_buf: TxEndBuf::default(),
            sweep_scratch: Vec::new(),
            probe,
        };

        // Scripted clock glitches are part of the compiled scenario,
        // not the event stream; report them to the probe up front.
        if world.probe.enabled() {
            if let Some(s) = &world.scenario {
                for g in &s.glitches {
                    world.probe.on_clock_glitch(g.at, g.node, g.delta_ns);
                }
            }
        }

        initial.push((world.measure_from, Ev::SetupEnd));

        match world.cfg.setup_mode {
            SetupMode::Idealized => {
                // Pre-register every query at every relevant node.
                for qi in 0..world.queries.len() {
                    for node in world.tree.members().to_vec() {
                        if let Some((round, at)) = world.register_query_at(node, qi, SimTime::ZERO)
                        {
                            initial.push((
                                world.to_wall(node, at),
                                Ev::RoundStart {
                                    node,
                                    query: qi,
                                    round,
                                },
                            ));
                        }
                    }
                }
            }
            SetupMode::Flooded => {
                for (qi, q) in world.queries.iter().enumerate() {
                    let issue = q.phase.saturating_sub(world.cfg.setup_slot);
                    initial.push((issue, Ev::FloodIssue { query: qi }));
                    for node in world.tree.members() {
                        initial.push((issue, Ev::ForceWake { node: *node }));
                    }
                }
                for &(_, end) in &world.forced_windows.clone() {
                    initial.push((end, Ev::ForcedWindowEnd));
                }
            }
        }

        // Policy schedule chains (SYNC edges / PSM beacons, …): each
        // member's policy may arm its initial timers.
        {
            let mut acts = Vec::new();
            for m in world.tree.members().to_vec() {
                world.nodes[m.index()].policy.initial_actions(&mut acts);
                for a in acts.drain(..) {
                    match a {
                        PolicyAction::SetTimer { timer, at } => {
                            initial.push((
                                world.to_wall(m, at),
                                Ev::Policy {
                                    node: m,
                                    timer,
                                    local: at,
                                },
                            ));
                        }
                        other => panic!("initial_actions may only arm timers, got {other:?}"),
                    }
                }
            }
        }

        // Scripted failures.
        for &(at, node) in &world.cfg.node_failures.clone() {
            initial.push((
                at,
                Ev::NodeFail {
                    node: NodeId::new(node),
                },
            ));
        }

        // Scenario event stream: churn + the battery sweep chain.
        if let Some(s) = &world.scenario {
            for e in &s.events {
                let node = NodeId::new(e.node);
                let ev = if e.up {
                    Ev::NodeRecover { node }
                } else {
                    Ev::NodeFail { node }
                };
                initial.push((e.at, ev));
            }
            if let Some(b) = s.battery {
                initial.push((SimTime::ZERO + b.check_period, Ev::BatteryCheck));
            }
        }

        world
    }
}

impl World {
    /// Runs a full experiment and returns its metrics.
    pub fn run(cfg: &ExperimentConfig) -> RunResult {
        Self::run_with(cfg, &Protocol::build_policy)
    }

    /// Runs a full experiment with a custom policy factory.
    pub fn run_with(cfg: &ExperimentConfig, factory: &PolicyFactory<'_>) -> RunResult {
        let mut scratch = WorldScratch::new();
        Self::run_pooled(cfg, factory, None, &mut scratch)
    }

    /// Runs a full experiment recycling a worker's scratch allocations
    /// across calls and (optionally) sharing immutable build products
    /// through a [`BuildCache`] — the sweep executor's hot path. The
    /// result is byte-identical to [`World::run_with`] (pinned by
    /// `tests/determinism.rs`); only the allocator traffic differs.
    pub fn run_pooled(
        cfg: &ExperimentConfig,
        factory: &PolicyFactory<'_>,
        cache: Option<&BuildCache>,
        scratch: &mut WorldScratch,
    ) -> RunResult {
        Self::run_pooled_capped(cfg, factory, cache, scratch, None)
            .expect("uncapped run cannot exhaust a budget")
    }

    /// [`World::run_pooled`] under a deterministic event budget: the
    /// run is abandoned (returning `None`) once it has processed
    /// `budget` events without reaching the configured duration. The
    /// sweep executor's runaway guard — an event count, not a wall
    /// clock, so the same job trips (or doesn't) identically on every
    /// machine and thread count.
    pub fn run_pooled_capped(
        cfg: &ExperimentConfig,
        factory: &PolicyFactory<'_>,
        cache: Option<&BuildCache>,
        scratch: &mut WorldScratch,
        budget: Option<u64>,
    ) -> Option<RunResult> {
        let mut timings = RunTimings::default();
        Self::run_pooled_timed(cfg, factory, cache, scratch, budget, &mut timings)
    }

    /// [`World::run_pooled_capped`], accumulating per-phase wall-clock
    /// timings (build / run / finalize) into `timings` — the executor's
    /// profiling path. The timings are measurement only; they never
    /// influence the run.
    pub fn run_pooled_timed(
        cfg: &ExperimentConfig,
        factory: &PolicyFactory<'_>,
        cache: Option<&BuildCache>,
        scratch: &mut WorldScratch,
        budget: Option<u64>,
        timings: &mut RunTimings,
    ) -> Option<RunResult> {
        World::run_instrumented(cfg, factory, cache, scratch, budget, NullProbe, timings).0
    }

    /// Deterministic synthetic sensor reading.
    ///
    /// (On the non-generic impl so `World::reading(...)` resolves
    /// without a probe type annotation — it is a pure function.)
    pub(crate) fn reading(node: NodeId, k: u64) -> AggState {
        AggState::from_reading(((node.index() as u64 * 31 + k * 7) % 101) as f64)
    }
}

impl<P: Probe> World<P> {
    /// The fully general run path: [`World::run_pooled_capped`] with an
    /// attached probe and per-phase wall-clock timing. Returns the
    /// probe so callers can drain what it recorded; the result is
    /// `None` only when an event budget was exhausted.
    ///
    /// The result is byte-identical for every probe (including
    /// [`NullProbe`]) — probes observe, they cannot perturb.
    pub fn run_instrumented(
        cfg: &ExperimentConfig,
        factory: &PolicyFactory<'_>,
        cache: Option<&BuildCache>,
        scratch: &mut WorldScratch,
        budget: Option<u64>,
        probe: P,
        timings: &mut RunTimings,
    ) -> (Option<RunResult>, P) {
        let t_build = std::time::Instant::now();
        let pre = cache.map(|c| c.get_or_build(cfg));
        let mut initial = std::mem::take(&mut scratch.initial);
        initial.clear();
        let mut world = World::new_prebuilt(cfg.clone(), factory, pre, &mut initial, probe);
        world.adopt_scratch(scratch);
        let run_end = world.run_end;
        let mut engine = Engine::with_queue(world, std::mem::take(&mut scratch.queue));
        for (at, ev) in initial.drain(..) {
            // Initial chain policy timers must be tracked like every
            // later one, or churn cancellation would miss them.
            let chain_node = match &ev {
                Ev::Policy { node, timer, .. } if timer.is_chain() => Some(*node),
                _ => None,
            };
            let id = engine.schedule_at(at, ev);
            if let Some(n) = chain_node {
                engine.model_mut().chain_ev[n.index()].push(id);
            }
        }
        scratch.initial = initial;
        timings.build += t_build.elapsed();
        let t_run = std::time::Instant::now();
        let reached_end = match budget {
            Some(b) => engine.run_until_capped(run_end, b),
            None => {
                engine.run_until(run_end);
                true
            }
        };
        let events = engine.processed();
        let peak = engine.peak_pending() as u64;
        let (world, mut queue) = engine.into_parts();
        queue.clear();
        scratch.queue = queue;
        timings.run += t_run.elapsed();
        if !reached_end {
            // Budget exhausted: drop the world (its pools are rebuilt
            // on the worker's next run) and report the abandonment.
            return (None, world.probe);
        }
        let t_fin = std::time::Instant::now();
        let (result, probe) = world.finalize_into(run_end, events, peak, Some(scratch));
        timings.finalize += t_fin.elapsed();
        (Some(result), probe)
    }

    /// Moves a scratch's warmed buffer pools into this (fresh) world.
    pub(crate) fn adopt_scratch(&mut self, scratch: &mut WorldScratch) {
        std::mem::swap(&mut self.kid_pool, &mut scratch.kid_pool);
        std::mem::swap(&mut self.act_pool, &mut scratch.act_pool);
        std::mem::swap(&mut self.mact_pool, &mut scratch.mact_pool);
        std::mem::swap(&mut self.tx_frames, &mut scratch.tx_frames);
        self.channel.adopt_pools(&mut scratch.channel);
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    pub(crate) fn query(&self, qi: usize) -> Query {
        self.queries[qi].clone()
    }

    /// Maps a node-local schedule instant to wall (engine) time under
    /// the scenario's clock-fault model.
    ///
    /// Policies reason in their node's local clock; the engine runs on
    /// true time. A node whose clock reads `at` when the true time is
    /// `at - err(at)` fires its timer at that wall instant, so positive
    /// clock error makes a node act *early* and negative error late —
    /// exactly the desync Safe Sleep's wake-lead and DTS's phase-shifted
    /// schedules must survive. The identity map without clock faults,
    /// so fault-free runs are bit-for-bit unchanged.
    pub(crate) fn to_wall(&self, node: NodeId, at: SimTime) -> SimTime {
        let Some(s) = &self.scenario else { return at };
        if !s.has_clock_faults() {
            return at;
        }
        let err = s.clock_err_ns(node.as_u32(), at) as i128;
        let wall = at.as_nanos() as i128 - err;
        SimTime::from_nanos(wall.clamp(0, u64::MAX as i128) as u64)
    }

    /// The adaptive guard time at local instant `t` (see
    /// [`crate::config::GuardTime`]): wake-ups lead their target by this
    /// much and collection timeouts stretch by it, so schedules tolerate
    /// the clock error accumulated by `t`.
    pub(crate) fn guard_at(&self, t: SimTime) -> essat_sim::time::SimDuration {
        self.cfg.clock_guard.at(t)
    }

    /// `(own_rank, max_rank, own_level, max_level, children-with-ranks)`
    /// for `node`, from the current tree.
    ///
    /// The children vector comes from [`World::kid_pool`]; hand it back
    /// with [`World::put_kids`] when done so steady-state event handling
    /// does not allocate.
    pub(crate) fn tree_view(&mut self, node: NodeId) -> (u32, u32, u32, u32, Vec<(NodeId, u32)>) {
        let mut kids = self.kid_pool.pop().unwrap_or_default();
        kids.extend(
            self.tree
                .children(node)
                .iter()
                .map(|&c| (c, self.tree.rank(c))),
        );
        (
            self.tree.rank(node),
            self.tree.max_rank(),
            self.tree.level(node).unwrap_or(0),
            self.tree.max_level(),
            kids,
        )
    }

    /// Returns a [`World::tree_view`] children buffer to the pool.
    pub(crate) fn put_kids(&mut self, mut kids: Vec<(NodeId, u32)>) {
        kids.clear();
        self.kid_pool.push(kids);
    }

    /// Whether this configuration can inject any fault at all (a
    /// scenario that actually perturbs the run, scripted failures, or
    /// loss injection). The self-healing layer only activates when it
    /// can — an idealised fault-free run keeps the legacy event stream
    /// byte-identical (the golden-digest guarantee), and the sanitizer
    /// asserts no repair timer ever arms there. A scenario that compiles
    /// to nothing (e.g. `clock_drift(0)`) doesn't count, so its control
    /// arm stays bit-identical to having no scenario at all. MAC retry
    /// exhaustion from plain contention is legacy §4.3 territory either
    /// way.
    pub(crate) fn faults_possible(&self) -> bool {
        self.scenario.as_ref().is_some_and(|s| s.can_fault())
            || !self.cfg.node_failures.is_empty()
            || self.cfg.drop_probability > 0.0
    }

    pub(crate) fn is_source(&self, node: NodeId, qi: usize) -> bool {
        self.tree.is_member(node) && self.queries[qi].sources.contains(node)
    }

    pub(crate) fn in_forced_window(&self, now: SimTime) -> bool {
        self.forced_windows
            .iter()
            .any(|&(s, e)| now >= s && now < e)
    }

    /// Whether round `k` of `q` is active under the scenario's traffic
    /// phases (always, without a scenario). A pure function of the
    /// compiled schedule, so every node agrees without signalling.
    pub(crate) fn round_is_active(&self, q: &Query, k: u64) -> bool {
        match &self.scenario {
            Some(s) => s.round_active(q.round_start(k), k),
            None => true,
        }
    }

    // ------------------------------------------------------------------
    // Setup & finalisation
    // ------------------------------------------------------------------

    pub(crate) fn handle_setup_end(&mut self, ctx: &mut Context<'_, Ev>) {
        self.setup_over = true;
        let now = ctx.now();
        // Metrics snapshot (dead radios were settled at death; settling
        // them again would bill the dead span).
        for i in 0..self.nodes.len() {
            let n = &mut self.nodes[i];
            if !self.hot.dead[i] {
                n.radio.settle(now);
            }
            n.snap = RadioSnapshot {
                active: n.radio.active_ns(),
                off: n.radio.off_ns(),
                trans: n.radio.transition_ns(),
                energy: n.radio.energy_j(),
            };
        }
        // First sleep decisions: one in-order sweep straight over the
        // SoA flags (no id-list materialisation — scheduling order, and
        // therefore seq tie-breaks, must match the per-node path
        // exactly). Non-members sleep for the rest of the run.
        for i in 0..self.hot.dead.len() {
            if self.hot.dead[i] {
                continue;
            }
            let node = NodeId::new(i as u32);
            if !self.hot.member[i] {
                if self.hot.radio_active[i] && self.nodes[i].mac.can_suspend() {
                    self.suspend_radio(node, ctx);
                }
                continue;
            }
            self.sleep_checkpoint(node, SleepTrigger::Boundary, ctx);
        }
    }

    pub(crate) fn handle_forced_window_end(&mut self, ctx: &mut Context<'_, Ev>) {
        if !self.setup_over {
            return;
        }
        // Whole-network boundary sweep, straight over the Hot arrays —
        // no id-list materialisation.
        for i in 0..self.hot.dead.len() {
            self.sleep_checkpoint(NodeId::new(i as u32), SleepTrigger::Boundary, ctx);
        }
    }

    pub(crate) fn handle_flood_issue(&mut self, qi: usize, ctx: &mut Context<'_, Ev>) {
        let root = self.root;
        if let Some((round, at)) = self.register_query_at(root, qi, ctx.now()) {
            ctx.schedule_at(
                self.to_wall(root, at).max(ctx.now()),
                Ev::RoundStart {
                    node: root,
                    query: qi,
                    round,
                },
            );
        }
        self.nodes[root.index()].registered.insert(qi);
        let frame = {
            let n = &mut self.nodes[root.index()];
            essat_net::frame::Frame {
                id: n.mac.alloc_frame_id(),
                src: root,
                dest: essat_net::frame::Dest::Broadcast,
                kind: essat_net::frame::FrameKind::Data,
                bytes: crate::payload::sizes::QUERY_SETUP_BYTES,
                payload: Payload::QuerySetup {
                    query: QueryId::new(qi as u32),
                    hops: 0,
                },
            }
        };
        self.enqueue_frame(root, frame, ctx);
    }

    /// Collects the run's metrics; with a scratch, salvages the world's
    /// warmed buffer pools into it for the worker's next run. Returns
    /// the probe alongside the result so callers can drain what it
    /// recorded.
    pub(crate) fn finalize_into(
        mut self,
        end: SimTime,
        events_processed: u64,
        peak_queue_depth: u64,
        scratch: Option<&mut WorldScratch>,
    ) -> (RunResult, P) {
        // A node still orphaned at run end is right-censored: its
        // open orphan interval closes at the measurement boundary.
        for i in 0..self.nodes.len() {
            if !self.hot.dead[i] {
                self.settle_orphan(i, end);
            }
        }
        #[cfg(feature = "sanitize")]
        self.sanitize_sweep(end);
        // Last probe callback, before radios settle: the view's
        // projections at `end` equal the settled books, so a sampler's
        // final row matches the `RunResult` node totals exactly.
        if self.probe.enabled() {
            let view = WorldView {
                nodes: &self.nodes,
                hot: &self.hot,
            };
            self.probe.on_run_end(end, &view);
        }
        if let Some(s) = scratch {
            s.kid_pool.append(&mut self.kid_pool);
            s.act_pool.append(&mut self.act_pool);
            s.mact_pool.append(&mut self.mact_pool);
            self.tx_frames.clear();
            std::mem::swap(&mut self.tx_frames, &mut s.tx_frames);
            self.channel.harvest_pools(&mut s.channel);
        }
        let mut node_metrics = Vec::new();
        let mut sleep_hist = Histogram::new(SLEEP_HIST_BIN_S, SLEEP_HIST_BINS);
        let mut mac = MacTotals::default();
        for i in 0..self.nodes.len() {
            let id = NodeId::new(i as u32);
            let n = &mut self.nodes[i];
            if !self.hot.dead[i] {
                n.radio.settle(end);
            }
            // Settlement: a node that never died must have its whole
            // run accounted, split exactly across the three states.
            #[cfg(feature = "sanitize")]
            if !self.hot.dead[i] && n.revivals == 0 {
                assert_eq!(
                    n.radio.active_ns() + n.radio.off_ns() + n.radio.transition_ns(),
                    end.as_nanos(),
                    "sanitizer: node {i} radio accounting does not settle to the run length"
                );
            }
            if !self.hot.member[i] {
                continue;
            }
            let active = n.radio.active_ns() - n.snap.active;
            let off = n.radio.off_ns() - n.snap.off;
            let trans = n.radio.transition_ns() - n.snap.trans;
            let total = active + off + trans;
            // A dead radio's books are settled at death, so `total`
            // already clamps to the node's death time. A node that died
            // *before* the window opened (or a zero-length window) has
            // no measured span at all — it was never active in the
            // window, so its duty cycle is 0, not the former 1.0
            // (tests/fault_injection.rs pins this).
            let duty = if total == 0 {
                0.0
            } else {
                (active + trans) as f64 / total as f64
            };
            node_metrics.push(NodeMetrics {
                node: id,
                rank: n.rank0,
                level: n.level0,
                duty_cycle: duty,
                energy_j: n.radio.energy_j() - n.snap.energy,
            });
            for si in n.radio.sleep_intervals() {
                if si.started >= self.measure_from {
                    sleep_hist.add(si.length().as_secs_f64());
                }
            }
            let ms = n.mac.stats();
            mac.enqueued += ms.enqueued;
            mac.data_tx += ms.data_tx;
            mac.delivered += ms.delivered;
            mac.failed += ms.failed;
            mac.retries += ms.retries;
        }
        // MACs replaced by churn revivals contributed traffic too.
        mac.enqueued += self.mac_lost.enqueued;
        mac.data_tx += self.mac_lost.data_tx;
        mac.delivered += self.mac_lost.delivered;
        mac.failed += self.mac_lost.failed;
        mac.retries += self.mac_lost.retries;
        let ch = self.channel.stats();
        let result = RunResult {
            seed: self.cfg.seed,
            measured_from: self.measure_from,
            measured_until: end,
            nodes: node_metrics,
            queries: std::mem::take(&mut self.qmetrics),
            sleep_intervals: sleep_hist,
            phase_piggybacks: self.phase_piggybacks,
            phase_requests: self.phase_requests,
            reports_sent: self.reports_sent,
            missed_reports: self.missed_reports,
            resync_events: self.resync_events,
            guard_wake_ns: self.guard_wake_ns,
            mac,
            lifetime: std::mem::take(&mut self.lifetime),
            repairs: self.repair.repairs,
            reparent_latency_ns: self.repair.reparent_latency_ns,
            orphan_node_ns: self.repair.orphan_node_ns,
            redispatches: self.repair.redispatches,
            channel_transmissions: ch.transmissions,
            channel_collisions: ch.collisions,
            events_processed,
            peak_queue_depth,
        };
        (result, self.probe)
    }

    /// The routing tree (tests & examples inspect structure).
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The compiled scenario driving this run, if any (tests record its
    /// trace for replay).
    pub fn scenario(&self) -> Option<&CompiledScenario> {
        self.scenario.as_ref()
    }

    /// Notifies the probe of an event dispatch. With [`NullProbe`] the
    /// `enabled()` check constant-folds to `false` and the whole call
    /// (view construction included) disappears from the hot path.
    fn probe_event(&mut self, now: SimTime, kind: &'static str) {
        if !self.probe.enabled() {
            return;
        }
        let view = WorldView {
            nodes: &self.nodes,
            hot: &self.hot,
        };
        self.probe.on_event(now, kind, &view);
    }
}

/// The read-only per-node projection handed to probes: borrows only
/// the node stacks and the hot flags, so it can coexist with a
/// mutable borrow of the probe itself.
struct WorldView<'a> {
    nodes: &'a [NodeState],
    hot: &'a Hot,
}

impl SampleView for WorldView<'_> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn is_alive(&self, node: usize) -> bool {
        !self.hot.dead[node]
    }

    fn in_tree(&self, node: usize) -> bool {
        self.hot.member[node]
    }

    fn energy_j(&self, node: usize, now: SimTime) -> f64 {
        let n = &self.nodes[node];
        // Dead radios were settled at death; projecting them to `now`
        // would bill the dead span.
        let e = if self.hot.dead[node] {
            n.radio.energy_j()
        } else {
            n.radio.energy_j_at(now)
        };
        e - n.snap.energy
    }

    fn duty_cycle(&self, node: usize, now: SimTime) -> f64 {
        let n = &self.nodes[node];
        let (active, off, trans) = if self.hot.dead[node] {
            (
                n.radio.active_ns(),
                n.radio.off_ns(),
                n.radio.transition_ns(),
            )
        } else {
            n.radio.counters_at(now)
        };
        let active = active - n.snap.active;
        let off = off - n.snap.off;
        let trans = trans - n.snap.trans;
        let total = active + off + trans;
        if total == 0 {
            0.0
        } else {
            (active + trans) as f64 / total as f64
        }
    }

    fn queue_depth(&self, node: usize) -> usize {
        self.nodes[node].mac.queue_len()
    }
}

impl<P: Probe> Model for World<P> {
    type Event = Ev;

    fn handle(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
        #[cfg(feature = "sanitize")]
        self.sanitize_step(ctx.now());
        self.probe_event(ctx.now(), event.label());
        match event {
            Ev::SetupEnd => self.handle_setup_end(ctx),
            Ev::ForcedWindowEnd => self.handle_forced_window_end(ctx),
            Ev::RoundStart { node, query, round } => {
                self.handle_round_start(node, query, round, ctx)
            }
            Ev::CollectionTimeout { node, query, round } => {
                self.handle_collection_timeout(node, query, round, ctx)
            }
            Ev::ReleaseReport { node, query, round } => {
                if !self.hot.dead[node.index()] {
                    self.do_send(node, query, round, ctx);
                }
            }
            Ev::MacTimer { node, kind } => {
                // Disarmed timers were cancelled on the queue, so an
                // expiry that dispatches is the armed one — no staleness
                // check. The dead guard stays: death cancels the MAC's
                // timers, but a timer armed *while dead* (a dead node's
                // one-shot policy timer may still enqueue) must no-op.
                if !self.hot.dead[node.index()] {
                    #[cfg(feature = "sanitize")]
                    assert_eq!(
                        self.nodes[node.index()].mac.timer_event(kind),
                        Some(ctx.event_id()),
                        "sanitizer: stale MAC timer dispatched at node {node}"
                    );
                    let mut acts = self.take_macts();
                    self.nodes[node.index()]
                        .mac
                        .timer_fired_into(kind, ctx.now(), &mut acts);
                    self.exec_mac_actions(node, &mut acts, ctx);
                    self.put_macts(acts);
                    self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
                }
            }
            Ev::TxEnd { sender, tx } => self.handle_tx_end(sender, tx, ctx),
            Ev::RadioDone { node } => self.handle_radio_done(node, ctx),
            Ev::RadioWake { node } => self.handle_radio_wake(node, ctx),
            Ev::Policy { node, timer, local } => self.handle_policy_timer(node, timer, local, ctx),
            Ev::NodeFail { node } => self.handle_node_fail(node, ctx),
            Ev::NodeRecover { node } => self.handle_node_recover(node, ctx),
            Ev::BatteryCheck => self.handle_battery_check(ctx),
            Ev::FloodIssue { query } => self.handle_flood_issue(query, ctx),
            Ev::ForceWake { node } => self.wake_radio(node, ctx),
        }
    }
}
