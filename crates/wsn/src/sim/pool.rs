//! Sweep-wide reuse: the per-worker scratch pool and the shared
//! immutable build cache.
//!
//! A paper figure is hundreds of independent runs, and before this
//! module each of them paid the same two fixed costs: (1) allocating a
//! fresh event-queue slab, channel buffer pools and policy/MAC action
//! buffers, all of which immediately re-grow to the same steady-state
//! shapes, and (2) re-deriving the identical topology, routing tree and
//! channel adjacency for every protocol and repetition sharing a
//! `(topology parameters, seed)` sweep point.
//!
//! [`WorldScratch`] fixes (1): a sweep worker keeps one scratch per
//! thread and threads it through
//! [`World::run_pooled`](super::world::World::run_pooled), which adopts
//! the warmed allocations at construction and salvages them at
//! finalise. [`BuildCache`] fixes (2): a lock-guarded map from the
//! build inputs to an [`Arc`]-shared immutable `Prebuilt` block
//! (topology + pristine routing tree + channel CSR adjacency). Runs
//! clone the cheap mutable tree from the pristine copy and share the
//! rest by reference.
//!
//! Neither pool affects behaviour: recycled buffers arrive empty, the
//! cache is a pure function of the same inputs `World::new` hashes from
//! the config, and `tests/determinism.rs` pins pooled runs byte-for-byte
//! against fresh construction.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use essat_core::policy::PolicyAction;
use essat_net::channel::{ChannelAdjacency, ChannelPools};
use essat_net::frame::Frame;
use essat_net::geometry::Area;
use essat_net::ids::NodeId;
use essat_net::mac::MacAction;
use essat_net::topology::Topology;
use essat_query::tree::RoutingTree;
use essat_sim::queue::EventQueue;
use essat_sim::rng::SimRng;
use essat_sim::time::SimTime;

use super::events::Ev;
#[cfg(test)]
use super::world::World;
use crate::config::ExperimentConfig;
use crate::payload::Payload;

/// A worker's recyclable run state: everything a
/// [`World`](super::world::World) allocates that the *next* run on the
/// same thread can reuse — the event-queue slab and wheel buckets, the
/// channel's receiver/corruption buffer pools, the policy- and
/// MAC-action buffers, and the tree-view child buffers. See
/// [`World::run_pooled`](super::world::World::run_pooled).
#[derive(Debug, Default)]
pub struct WorldScratch {
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) initial: Vec<(SimTime, Ev)>,
    pub(crate) kid_pool: Vec<Vec<(NodeId, u32)>>,
    pub(crate) act_pool: Vec<Vec<PolicyAction<Payload>>>,
    pub(crate) mact_pool: Vec<Vec<MacAction<Payload>>>,
    pub(crate) tx_frames: Vec<Option<Frame<Payload>>>,
    pub(crate) channel: ChannelPools,
}

impl WorldScratch {
    /// An empty scratch (pools warm up over the first run).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The immutable products of world construction that depend only on
/// `(nodes, area, range, interference range, tree radius, seed)`:
/// shared across every protocol and repetition at the same sweep point.
#[derive(Debug)]
pub(crate) struct Prebuilt {
    pub(crate) topo: Arc<Topology>,
    pub(crate) root: NodeId,
    /// Pristine tree; runs clone it (failures/churn mutate their copy).
    pub(crate) tree: RoutingTree,
    pub(crate) adj: Arc<ChannelAdjacency>,
}

impl Prebuilt {
    /// Builds the block exactly as `World::new` would: same RNG stream
    /// (`master.derive(1)`), same construction order — so cached and
    /// fresh worlds are indistinguishable.
    pub(crate) fn build(cfg: &ExperimentConfig) -> Prebuilt {
        let master = SimRng::seed_from_u64(cfg.seed);
        let mut topo_rng = master.derive(1);
        let area = Area::new(cfg.area_side, cfg.area_side);
        let mut topo = Topology::random(cfg.nodes, area, cfg.range, &mut topo_rng);
        if let Some(ir) = cfg.interference_range {
            topo = topo.with_interference_range(ir);
        }
        let root = topo.closest_to_center();
        let tree = RoutingTree::build(&topo, root, Some(cfg.tree_radius));
        let adj = Arc::new(ChannelAdjacency::build(&topo));
        Prebuilt {
            topo: Arc::new(topo),
            root,
            tree,
            adj,
        }
    }
}

/// Everything [`Prebuilt::build`] reads from the config, as a hashable
/// key (floats by bit pattern — configs are constructed, not computed,
/// so bitwise equality is the right notion of "same sweep point").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BuildKey {
    nodes: u32,
    area_side: u64,
    range: u64,
    interference_range: Option<u64>,
    tree_radius: u64,
    seed: u64,
}

impl BuildKey {
    fn of(cfg: &ExperimentConfig) -> BuildKey {
        BuildKey {
            nodes: cfg.nodes,
            area_side: cfg.area_side.to_bits(),
            range: cfg.range.to_bits(),
            interference_range: cfg.interference_range.map(f64::to_bits),
            tree_radius: cfg.tree_radius.to_bits(),
            seed: cfg.seed,
        }
    }
}

/// Shared, thread-safe cache of prebuilt topology / routing-tree /
/// channel-adjacency blocks for one sweep.
///
/// The executor creates one per job list and hands it to every worker;
/// repetitions and protocols at the same `(topology, seed)` point then
/// build the topology, routing tree and channel adjacency **once**.
#[derive(Debug, Default)]
pub struct BuildCache {
    map: Mutex<HashMap<BuildKey, Arc<Prebuilt>>>,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct sweep points built so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("build cache poisoned").len()
    }

    /// True if nothing has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn get_or_build(&self, cfg: &ExperimentConfig) -> Arc<Prebuilt> {
        let key = BuildKey::of(cfg);
        let mut map = self.map.lock().expect("build cache poisoned");
        // The lock is held across a miss's build: topologies are cheap
        // relative to a run, and this keeps duplicate concurrent builds
        // from racing each other.
        map.entry(key)
            .or_insert_with(|| Arc::new(Prebuilt::build(cfg)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Protocol, WorkloadSpec};

    #[test]
    fn cache_shares_across_protocols_and_reps() {
        let cache = BuildCache::new();
        let a = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 7);
        let b = ExperimentConfig::quick(Protocol::Sync, WorkloadSpec::paper(5.0), 7);
        let p1 = cache.get_or_build(&a);
        let p2 = cache.get_or_build(&b);
        assert!(
            Arc::ptr_eq(&p1, &p2),
            "same (topology, seed) point must share one build"
        );
        assert_eq!(cache.len(), 1);
        // A different seed is a different point.
        let c = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(1.0), 8);
        let p3 = cache.get_or_build(&c);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn prebuilt_matches_fresh_world() {
        let cfg = ExperimentConfig::quick(Protocol::NtsSs, WorkloadSpec::paper(1.0), 11);
        let pre = Prebuilt::build(&cfg);
        let (world, _) = World::new(cfg);
        assert_eq!(pre.root, world.root);
        assert_eq!(pre.tree, *world.tree());
        assert_eq!(pre.topo.node_count(), world.topology().node_count());
    }
}
