//! The integrated simulator: layered per-node stacks composed over the
//! discrete-event engine.
//!
//! One [`World`] is one simulation run. The module is a
//! protocol-agnostic *executor* split along the stack's layers:
//!
//! * `events` — the closed event alphabet ([`Ev`]).
//! * `node` — the per-node stack: radio + CSMA/CA MAC + power policy +
//!   query-agent state.
//! * `world` — construction (topology, tree, channel, scenario,
//!   queries, per-node policies via the factory), setup/finalisation,
//!   and the engine [`essat_sim::engine::Model`] dispatch.
//! * `rounds` — the shared query service: per-round aggregation,
//!   collection timeouts, loss detection, §4.3 failure recovery.
//! * `power` — policy-action execution, MAC plumbing, radio
//!   transitions, and sleep checkpoints.
//! * `lifecycle` — scripted failures, scenario churn with recovery,
//!   battery depletion, and routing-tree repair.
//! * `repair` — the self-healing layer: link-quality EWMA estimation,
//!   backoff repair timers, quality-driven re-parenting/adoption, and
//!   deadline-aware retransmission budgets.
//!
//! Protocol behaviour lives *entirely* behind
//! [`essat_core::policy::PowerPolicy`]: the ESSAT modes (a
//! [`essat_core::shaper::TrafficShaper`] + Safe Sleep) in `essat-core`,
//! the SYNC/PSM/always-on baselines in `essat-baselines`, and anything
//! else through [`World::run_with`]'s factory seam. The executor
//! never matches on the configured protocol.

mod events;
mod lifecycle;
mod node;
mod pool;
mod power;
mod repair;
mod rounds;
#[cfg(feature = "sanitize")]
mod sanitizer;
mod world;

pub use events::Ev;
pub use pool::{BuildCache, WorldScratch};
pub use repair::link_ewma_step;
pub use world::World;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, Protocol, SetupMode, WorkloadSpec};
    use essat_baselines::sync::SyncSchedule;
    use essat_sim::time::{SimDuration, SimTime};

    fn quick_cfg(protocol: Protocol, seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(1.0), seed);
        cfg.duration = SimDuration::from_secs(12);
        cfg
    }

    #[test]
    fn world_builds_paper_workload() {
        let (world, initial) = World::new(quick_cfg(Protocol::DtsSs, 1));
        assert_eq!(world.queries.len(), 3, "one query per class");
        // Rate ratio 6:3:2.
        let p0 = world.queries[0].period;
        let p1 = world.queries[1].period;
        let p2 = world.queries[2].period;
        assert_eq!(p1, p0 * 2);
        assert_eq!(p2, p0 * 3);
        // Phases within the window.
        for q in &world.queries {
            assert!(q.phase <= SimTime::from_secs(10));
        }
        // Setup end + round starts + (per-protocol chains) scheduled.
        assert!(initial.len() > world.tree.member_count());
        // The tree is rooted near the centre and valid.
        world.tree().check_invariants();
    }

    #[test]
    fn factory_assigns_policies_per_node() {
        // Every DTS node runs the DTS-SS policy…
        let (world, _) = World::new(quick_cfg(Protocol::DtsSs, 1));
        for n in &world.nodes {
            assert_eq!(n.policy.name(), "DTS-SS");
        }
        // …while SPAN mixes roles per node (see below).
        let (world, _) = World::new(quick_cfg(Protocol::Sync, 1));
        for n in &world.nodes {
            assert_eq!(n.policy.name(), "SYNC");
        }
    }

    #[test]
    fn span_assigns_coordinators_always_on() {
        let (world, _) = World::new(quick_cfg(Protocol::Span, 2));
        let mut coordinators = 0;
        let mut leaves = 0;
        for &m in world.tree.members().to_vec().iter() {
            match world.nodes[m.index()].policy.name() {
                "ALWAYS-ON" => {
                    coordinators += 1;
                    assert!(!world.tree.is_leaf(m), "coordinators are non-leaves");
                }
                "NTS-SS" => {
                    leaves += 1;
                    assert!(world.tree.is_leaf(m), "sleepers are leaves");
                }
                other => panic!("unexpected policy {other:?}"),
            }
        }
        assert!(coordinators > 0 && leaves > 0);
    }

    #[test]
    fn collection_deadline_mode_specific() {
        let (mut world, _) = World::new(quick_cfg(Protocol::Sync, 3));
        // Pick an interior member.
        let node = world
            .tree
            .members()
            .iter()
            .copied()
            .find(|&m| !world.tree.is_leaf(m))
            .expect("interior node");
        world.nodes[node.index()].participating.insert(0);
        let d_sync = world.collection_deadline(node, 0, 0);
        let q = world.query(0);
        // SYNC: at least one schedule period of grace.
        assert!(d_sync >= q.round_start(0) + SyncSchedule::paper().period());
    }

    #[test]
    fn readings_are_deterministic() {
        use essat_net::ids::NodeId;
        assert_eq!(
            World::reading(NodeId::new(3), 7),
            World::reading(NodeId::new(3), 7)
        );
        assert_ne!(
            World::reading(NodeId::new(3), 7),
            World::reading(NodeId::new(4), 7)
        );
    }

    #[test]
    fn register_skips_childless_nonsources() {
        let (mut world, _) = World::new(quick_cfg(Protocol::DtsSs, 4));
        // With SourceSet::All every member registers...
        let member = world.tree.members()[0];
        // Re-registration for an already-registered query returns the
        // next round time rather than None.
        let at = world.register_query_at(member, 0, SimTime::ZERO);
        assert!(at.is_some());
        // Non-members never register.
        let non_member = world.topo.nodes().find(|&n| !world.tree.is_member(n));
        if let Some(nm) = non_member {
            assert!(world.register_query_at(nm, 0, SimTime::ZERO).is_none());
        }
    }

    #[test]
    fn psm_nodes_run_the_psm_policy() {
        let (world, _) = World::new(quick_cfg(Protocol::Psm, 5));
        for &m in world.tree.members() {
            assert_eq!(world.nodes[m.index()].policy.name(), "PSM");
        }
    }

    #[test]
    fn run_to_completion_settles_all_radios() {
        let r = World::run(&quick_cfg(Protocol::DtsSs, 6));
        // Every member contributes a node metric with a sane duty cycle.
        assert!(!r.nodes.is_empty());
        for n in &r.nodes {
            assert!((0.0..=1.0).contains(&n.duty_cycle), "{:?}", n);
            assert!(n.energy_j >= 0.0);
        }
        // Time accounting: window matches config.
        assert_eq!(r.measured_until, SimTime::from_secs(12));
    }

    #[test]
    fn forced_windows_only_in_flooded_mode() {
        let (ideal, _) = World::new(quick_cfg(Protocol::DtsSs, 7));
        assert!(ideal.forced_windows.is_empty());
        let mut cfg = quick_cfg(Protocol::DtsSs, 7);
        cfg.setup_mode = SetupMode::Flooded;
        let (flooded, initial) = World::new(cfg);
        assert_eq!(flooded.forced_windows.len(), 3);
        assert!(initial
            .iter()
            .any(|(_, e)| matches!(e, Ev::FloodIssue { .. })));
    }

    #[test]
    fn custom_factory_plugs_in() {
        // The factory seam accepts policies built outside
        // `Protocol::build_policy` — here, always-on regardless of the
        // configured protocol.
        use essat_baselines::policy::AlwaysOnPolicy;
        let cfg = quick_cfg(Protocol::DtsSs, 8);
        let r = World::run_with(&cfg, &|_cfg, _node, _env| {
            Box::new(AlwaysOnPolicy::new("CUSTOM"))
        });
        // Nobody ever sleeps: full duty cycle everywhere.
        for n in &r.nodes {
            assert_eq!(n.duty_cycle, 1.0, "{n:?}");
        }
    }
}
