//! The simulator's event alphabet.
//!
//! Everything the engine can deliver to the [`super::World`]. Protocol
//! behaviour never adds variants here: policies arm [`PolicyTimer`]s
//! through the generic [`Ev::Policy`] event, so the alphabet is closed
//! over the executor's own machinery (rounds, MAC, radio, lifecycle).

use essat_core::policy::PolicyTimer;
use essat_net::channel::TxId;
use essat_net::ids::NodeId;
use essat_net::mac::MacTimer;
use essat_sim::time::SimTime;

/// Simulation events.
#[derive(Debug)]
pub enum Ev {
    /// End of the setup slot: metrics snapshot + first sleep decisions.
    SetupEnd,
    /// A forced-awake window (flooded query dissemination) closed.
    ForcedWindowEnd,
    /// Round `round` of query `query` begins at `node` (local sampling).
    RoundStart {
        /// Sampling node.
        node: NodeId,
        /// Query index.
        query: usize,
        /// Round number.
        round: u64,
    },
    /// Collection timeout for `(node, query, round)`. Superseded
    /// timeouts (deadline refreshes, early round completion) are truly
    /// cancelled via the handle stored in the round state, so a
    /// dispatched timeout is always current.
    CollectionTimeout {
        /// Aggregating node.
        node: NodeId,
        /// Query index.
        query: usize,
        /// Round number.
        round: u64,
    },
    /// A buffered report reaches its policy release time.
    ReleaseReport {
        /// Sending node.
        node: NodeId,
        /// Query index.
        query: usize,
        /// Round number.
        round: u64,
    },
    /// MAC timer expiry. Disarmed timers are cancelled on the queue
    /// (the MAC surrenders their handles), so an expiry that dispatches
    /// is always the armed one.
    MacTimer {
        /// Owning node.
        node: NodeId,
        /// Timer class.
        kind: MacTimer,
    },
    /// A transmission leaves the air. The frame body is parked in the
    /// world's `tx_frames` side table (indexed by the transmission
    /// slot) rather than carried here, so the whole event alphabet
    /// stays small enough that queue slots are cheap to copy.
    TxEnd {
        /// Transmitting node.
        sender: NodeId,
        /// Channel handle.
        tx: TxId,
    },
    /// A radio power transition completes.
    RadioDone {
        /// Owning node.
        node: NodeId,
    },
    /// Safe-Sleep-scheduled wake-up (`t_wakeup − t_OFF→ON`). A newer
    /// sleep decision cancels the superseded wake-up via the handle in
    /// `Hot::wake_ev` instead of letting it fire stale.
    RadioWake {
        /// Owning node.
        node: NodeId,
    },
    /// A policy timer expired (SYNC edges, PSM windows, …).
    Policy {
        /// Owning node.
        node: NodeId,
        /// Which timer.
        timer: PolicyTimer,
        /// The schedule time the policy armed — what the node's local
        /// clock reads when the timer fires. Under clock faults the
        /// event is dispatched at the wall-converted instant, but the
        /// policy must see its own clock, or schedule-driven policies
        /// would re-arm the same edge forever.
        local: SimTime,
    },
    /// Scripted or scenario node failure.
    NodeFail {
        /// The failing node.
        node: NodeId,
    },
    /// Scenario churn recovery: a dead node comes back.
    NodeRecover {
        /// The recovering node.
        node: NodeId,
    },
    /// Periodic battery-depletion sweep (scenario battery model).
    BatteryCheck,
    /// Flooded setup: the root issues a query announcement.
    FloodIssue {
        /// Query index.
        query: usize,
    },
    /// Flooded setup: wake everyone for the setup window.
    ForceWake {
        /// Node to wake.
        node: NodeId,
    },
}

impl Ev {
    /// Stable label for the event's variant, used by observability
    /// probes (the per-dispatch hook reports which alphabet entry is
    /// being handled).
    pub fn label(&self) -> &'static str {
        match self {
            Ev::SetupEnd => "setup_end",
            Ev::ForcedWindowEnd => "forced_window_end",
            Ev::RoundStart { .. } => "round_start",
            Ev::CollectionTimeout { .. } => "collection_timeout",
            Ev::ReleaseReport { .. } => "release_report",
            Ev::MacTimer { .. } => "mac_timer",
            Ev::TxEnd { .. } => "tx_end",
            Ev::RadioDone { .. } => "radio_done",
            Ev::RadioWake { .. } => "radio_wake",
            Ev::Policy { .. } => "policy",
            Ev::NodeFail { .. } => "node_fail",
            Ev::NodeRecover { .. } => "node_recover",
            Ev::BatteryCheck => "battery_check",
            Ev::FloodIssue { .. } => "flood_issue",
            Ev::ForceWake { .. } => "force_wake",
        }
    }
}
