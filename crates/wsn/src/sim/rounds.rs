//! The query agent: round lifecycle, aggregation, and report handling.
//!
//! Every protocol shares this service: per-round aggregation with
//! per-policy collection timeouts, loss detection, and the §4.3
//! failure recovery. Timing decisions (deadlines, release instants,
//! buffering) are delegated to the node's
//! [`essat_core::policy::PowerPolicy`].

use essat_core::maintenance::LossObservation;
use essat_core::policy::SleepTrigger;
use essat_core::shaper::TreeInfo;
use essat_net::frame::{Dest, Frame, FrameKind, PAPER_REPORT_BYTES};
use essat_net::ids::NodeId;
use essat_obs::Probe;
use essat_query::aggregate::AggState;
use essat_query::model::{Query, QueryId};
use essat_query::round::RoundKey;
use essat_sim::engine::Context;
use essat_sim::time::SimTime;

use super::events::Ev;
use super::node::RoundState;
use super::world::World;
use crate::payload::{sizes, Payload};

impl World {
    /// The first round of `q` starting at or after `now`. A round
    /// boundary landing exactly on `now` is *included* — a node
    /// revived (or rejoined) precisely at a round start runs that
    /// round rather than silently waiting out a full period.
    ///
    /// (A pure function, kept on the non-generic impl so call sites
    /// need no probe type annotation.)
    pub(crate) fn next_round_at(q: &Query, now: SimTime) -> u64 {
        match q.round_at(now) {
            None => 0,
            Some(k) if q.round_start(k) == now => k,
            Some(k) => k + 1,
        }
    }
}

impl<P: Probe> World<P> {
    /// Registers query `qi` at `node`. Returns the node's first round
    /// `(index, start time)` if the node participates.
    pub(crate) fn register_query_at(
        &mut self,
        node: NodeId,
        qi: usize,
        now: SimTime,
    ) -> Option<(u64, SimTime)> {
        if !self.tree.is_member(node) || self.hot.dead[node.index()] {
            return None;
        }
        let q = self.query(qi);
        let kids: Vec<NodeId> = self.tree.children(node).to_vec();
        let is_src = self.is_source(node, qi);
        if !is_src && kids.is_empty() {
            return None; // nothing to sample, nothing to relay
        }
        let is_root = node == self.root;
        let (own_rank, max_rank, own_level, max_level, kid_ranks) = self.tree_view(node);
        let n = &mut self.nodes[node.index()];
        n.participating.insert(qi);
        n.registered.insert(qi);
        n.expected_children.insert(qi, kids);
        let info = TreeInfo {
            own_rank,
            max_rank,
            own_level,
            max_level,
            children: &kid_ranks,
        };
        n.policy.on_register(&q, &info, is_root);
        self.put_kids(kid_ranks);
        // First round this node can still run.
        let k0 = World::next_round_at(&q, now);
        let at = q.round_start(k0);
        (at < self.run_end).then_some((k0, at))
    }

    /// Checks staleness and opens the round's collection state.
    pub(crate) fn open_round(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        ctx: &mut Context<'_, Ev>,
    ) -> bool {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        {
            let n = &self.nodes[node.index()];
            if n.rounds.contains_key(&key) {
                return true;
            }
            if n.done.get(&qi).map(|&d| k <= d).unwrap_or(false) {
                return false; // round already finished
            }
        }
        let expected = self.nodes[node.index()]
            .expected_children
            .get(&qi)
            .cloned()
            .unwrap_or_default();
        let deadline = if expected.is_empty() {
            None
        } else {
            Some(self.collection_deadline(node, qi, k))
        };
        let timeout_ev = deadline.map(|d| {
            // Stretch the timeout by the guard so desynced children get
            // the extra slack their skewed releases need.
            let wall = self.to_wall(node, d) + self.guard_at(d);
            ctx.schedule_at(
                wall.max(ctx.now()),
                Ev::CollectionTimeout {
                    node,
                    query: qi,
                    round: k,
                },
            )
        });
        let n = &mut self.nodes[node.index()];
        let state = RoundState {
            agg: essat_query::round::RoundAggregator::new(&expected),
            timeout_ev,
            deadline,
            piggyback: None,
            release_planned: false,
            redispatches: 0,
        };
        n.rounds.insert(key, state);
        true
    }

    /// The collection deadline under the node's power policy.
    pub(crate) fn collection_deadline(&mut self, node: NodeId, qi: usize, k: u64) -> SimTime {
        let q = self.query(qi);
        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let info = TreeInfo {
            own_rank,
            max_rank,
            own_level,
            max_level,
            children: &kids,
        };
        let deadline = self.nodes[node.index()]
            .policy
            .collection_deadline(&q, k, &info);
        self.put_kids(kids);
        deadline
    }

    pub(crate) fn handle_round_start(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        ctx: &mut Context<'_, Ev>,
    ) {
        {
            if self.hot.dead[node.index()] || !self.nodes[node.index()].participating.contains(&qi)
            {
                return;
            }
        }
        {
            // Churn recovery can re-arm a chain whose old event is
            // still pending; the per-query cursor drops duplicates.
            let n = &mut self.nodes[node.index()];
            let next = n.next_round.entry(qi).or_insert(0);
            if k < *next {
                return;
            }
            *next = k + 1;
        }
        self.probe
            .on_round_start(ctx.now(), node.index() as u32, qi as u32, k);
        let q = self.query(qi);
        if self.round_is_active(&q, k) {
            if self.open_round(node, qi, k, ctx) && self.is_source(node, qi) {
                let key = RoundKey {
                    query: q.id,
                    round: k,
                };
                let reading = World::reading(node, k);
                if let Some(r) = self.nodes[node.index()].rounds.get_mut(&key) {
                    r.agg.add_own(reading);
                }
            }
            self.maybe_complete(node, qi, k, ctx);
        } else {
            self.skip_round(node, qi, k, ctx);
        }
        // Chain the next round (on this node's clock).
        let next = q.round_start(k + 1);
        if next < self.run_end {
            ctx.schedule_at(
                self.to_wall(node, next).max(ctx.now()),
                Ev::RoundStart {
                    node,
                    query: qi,
                    round: k + 1,
                },
            );
        }
        self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
    }

    /// A traffic-phase-silenced round: nothing is sampled, collected,
    /// or sent — but the policy's expectations must still advance past
    /// the round, or Safe Sleep would pin the node awake on a stale
    /// past expectation for the rest of the quiet phase.
    pub(crate) fn skip_round(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        ctx: &mut Context<'_, Ev>,
    ) {
        let q = self.query(qi);
        let is_root = node == self.root;
        let expected = self.nodes[node.index()]
            .expected_children
            .get(&qi)
            .cloned()
            .unwrap_or_default();
        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let _ = ctx;
        let n = &mut self.nodes[node.index()];
        // Mark the round finished so a straggler report cannot reopen it.
        n.done
            .entry(qi)
            .and_modify(|d| *d = (*d).max(k))
            .or_insert(k);
        let info = TreeInfo {
            own_rank,
            max_rank,
            own_level,
            max_level,
            children: &kids,
        };
        n.policy.on_round_skipped(&q, k, &expected, is_root, &info);
        if !self.hot.dead[node.index()] && !self.hot.radio_active[node.index()] {
            // The radio is mid-turn-on for the expectation we just
            // moved; have the wake-up completion re-run the checkpoint.
            n.recheck_on_wake = true;
        }
        self.put_kids(kids);
    }

    /// Checks readiness and plans the release when ready.
    pub(crate) fn maybe_complete(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        ctx: &mut Context<'_, Ev>,
    ) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let ready = {
            let n = &self.nodes[node.index()];
            match n.rounds.get(&key) {
                None => false,
                Some(r) => {
                    !r.release_planned
                        && r.agg.children_complete()
                        && (!self.is_source(node, qi) || r.agg.own_added())
                }
            }
        };
        if !ready {
            return;
        }
        self.finish_round(node, qi, k, true, ctx);
    }

    /// Completes a round: at the root, record metrics; elsewhere, plan
    /// the report release. `full` is false on the timeout path.
    pub(crate) fn finish_round(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        full: bool,
        ctx: &mut Context<'_, Ev>,
    ) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let now = ctx.now();
        if node == self.root {
            let Some(mut r) = self.nodes[node.index()].rounds.remove(&key) else {
                return;
            };
            if let Some(id) = r.timeout_ev.take() {
                ctx.cancel(id);
            }
            let agg = r.agg.seal();
            let n = &mut self.nodes[node.index()];
            n.done
                .entry(qi)
                .and_modify(|d| *d = (*d).max(k))
                .or_insert(k);
            // "Full" means every expected source reading arrived — the
            // root's children being complete is not enough, since their
            // aggregates may themselves be partial.
            let full = full && agg.count() == self.source_count[qi];
            self.probe
                .on_round_sealed(now, node.index() as u32, qi as u32, k, full);
            // A fast clock can finish a round at a wall instant before
            // the agreed round start — clamp, don't underflow.
            let latency_s = now
                .saturating_duration_since(q.round_start(k))
                .as_secs_f64();
            let qm = &mut self.qmetrics[qi];
            qm.latency.add(latency_s);
            qm.rounds_completed += 1;
            if full {
                qm.rounds_full += 1;
            }
            qm.delivered_readings += agg.count();
            qm.expected_readings += self.source_count[qi];
            qm.records.push(crate::metrics::RoundRecord {
                round: k,
                at: now,
                latency_s,
                full,
                readings: agg.count(),
            });
            return;
        }
        // Non-root: plan the release according to the power policy.
        let mut send_now = false;
        let mut send_at = now;
        {
            let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
            let info = TreeInfo {
                own_rank,
                max_rank,
                own_level,
                max_level,
                children: &kids,
            };
            let n = &mut self.nodes[node.index()];
            let Some(r) = n.rounds.get_mut(&key) else {
                self.put_kids(kids);
                return;
            };
            r.release_planned = true;
            // The round is closing; its timeout must not fire.
            if let Some(id) = r.timeout_ev.take() {
                ctx.cancel(id);
            }
            let rel = n.policy.plan_release(&q, k, now, &info);
            r.piggyback = rel.piggyback;
            if rel.send_at <= now {
                send_now = true;
            } else {
                send_at = rel.send_at;
            }
            self.put_kids(kids);
        }
        if send_now {
            self.do_send(node, qi, k, ctx);
        } else {
            ctx.schedule_at(
                self.to_wall(node, send_at).max(now),
                Ev::ReleaseReport {
                    node,
                    query: qi,
                    round: k,
                },
            );
        }
    }

    /// Seals the round and hands the report towards the parent through
    /// the policy's dispatch seam (PSM buffers, everyone else
    /// forwards).
    pub(crate) fn do_send(&mut self, node: NodeId, qi: usize, k: u64, ctx: &mut Context<'_, Ev>) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let Some(parent) = self.tree.parent(node) else {
            // Detached from the tree (declared failed): drop silently.
            if let Some(mut r) = self.nodes[node.index()].rounds.remove(&key) {
                if let Some(id) = r.timeout_ev.take() {
                    ctx.cancel(id);
                }
            }
            return;
        };
        let (agg, piggyback) = {
            let n = &mut self.nodes[node.index()];
            let Some(r) = n.rounds.get_mut(&key) else {
                return;
            };
            (r.agg.seal(), r.piggyback)
        };
        {
            let n = &mut self.nodes[node.index()];
            n.done
                .entry(qi)
                .and_modify(|d| *d = (*d).max(k))
                .or_insert(k);
        }
        if piggyback.is_some() {
            self.phase_piggybacks += 1;
        }
        let frame = {
            let n = &mut self.nodes[node.index()];
            Frame {
                id: n.mac.alloc_frame_id(),
                src: node,
                dest: Dest::Unicast(parent),
                kind: FrameKind::Data,
                bytes: PAPER_REPORT_BYTES,
                payload: Payload::Report {
                    query: q.id,
                    round: k,
                    agg,
                    piggyback,
                },
            }
        };
        let view = self.node_view(node, ctx.now());
        let mut acts = self.take_acts();
        self.nodes[node.index()]
            .policy
            .dispatch_report(frame, parent, &view, &mut acts);
        self.exec_policy_actions(node, &mut acts, ctx);
        self.put_acts(acts);
    }

    pub(crate) fn handle_collection_timeout(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        ctx: &mut Context<'_, Ev>,
    ) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        // Superseded timeouts are cancelled on the queue, so a dispatch
        // is always the live one; the guards below are defensive.
        let missing = {
            let n = &mut self.nodes[node.index()];
            match n.rounds.get_mut(&key) {
                None => return,
                Some(r) if r.release_planned => return,
                Some(r) => {
                    #[cfg(feature = "sanitize")]
                    assert_eq!(
                        r.timeout_ev,
                        Some(ctx.event_id()),
                        "sanitizer: stale collection timeout dispatched at node {node}"
                    );
                    r.timeout_ev = None; // consumed by this dispatch
                    r.agg.missing()
                }
            }
        };
        self.missed_reports += missing.len() as u64;
        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let mut failed_children = Vec::new();
        {
            let info = TreeInfo {
                own_rank,
                max_rank,
                own_level,
                max_level,
                children: &kids,
            };
            let n = &mut self.nodes[node.index()];
            for &c in &missing {
                n.policy.on_child_timeout(&q, c, k, &info);
                if n.child_fail.miss(c) {
                    failed_children.push(c);
                }
            }
        }
        self.put_kids(kids);
        for c in failed_children {
            if self.tree.is_member(c) && self.tree.parent(c) == Some(node) {
                self.on_peer_suspect(node, c, ctx);
            }
        }
        // Forward the partial aggregate (§4.3).
        self.finish_round(node, qi, k, false, ctx);
        self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
    }

    // ------------------------------------------------------------------
    // Frame handling
    // ------------------------------------------------------------------

    pub(crate) fn handle_delivery(
        &mut self,
        node: NodeId,
        frame: Frame<Payload>,
        ctx: &mut Context<'_, Ev>,
    ) {
        if self.hot.dead[node.index()] {
            return;
        }
        match frame.payload {
            Payload::Report {
                query,
                round,
                agg,
                piggyback,
            } => {
                self.handle_report(node, frame.src, query, round, agg, piggyback, ctx);
            }
            Payload::PhaseUpdateRequest { query } => {
                let qi = query.index();
                let q = self.query(qi);
                self.nodes[node.index()].policy.on_phase_update_request(&q);
            }
            Payload::Atim => {
                self.nodes[node.index()].policy.on_atim_received(frame.src);
            }
            Payload::QuerySetup { query, hops } => {
                self.handle_query_setup(node, query.index(), hops, ctx);
            }
            Payload::Empty => {}
        }
        self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_report(
        &mut self,
        node: NodeId,
        child: NodeId,
        query: QueryId,
        k: u64,
        agg: AggState,
        piggyback: Option<SimTime>,
        ctx: &mut Context<'_, Ev>,
    ) {
        let qi = query.index();
        let q = self.query(qi);
        if !self.nodes[node.index()].participating.contains(&qi) {
            return;
        }
        // Resurrection: a child we removed is still alive — restore it.
        if self.tree.children(node).contains(&child) {
            let n = &mut self.nodes[node.index()];
            let kids = n.expected_children.entry(qi).or_default();
            if !kids.contains(&child) {
                kids.push(child);
                kids.sort_unstable();
            }
        } else if !self.nodes[node.index()]
            .expected_children
            .get(&qi)
            .map(|v| v.contains(&child))
            .unwrap_or(false)
        {
            return; // stranger (stale sender after re-parenting)
        }

        let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
        let now = ctx.now();
        let mut resynced = false;
        {
            let n = &mut self.nodes[node.index()];
            let obs = n.loss.observe(query, child, k);
            n.child_fail.heard_from(child);
            // §4.3 phase resynchronisation bookkeeping. A piggyback
            // that clears a known-stale phase is a completed resync.
            if piggyback.is_some() {
                resynced = n.stale_phase.remove(&(qi, child));
            }
            if n.policy.wants_phase_resync() {
                let gap = matches!(obs, LossObservation::Gap { .. });
                if gap && piggyback.is_none() {
                    n.stale_phase.insert((qi, child));
                }
                if n.stale_phase.contains(&(qi, child)) {
                    // Ask for a phase update on the ACK we are about to
                    // send (the paper's piggyback-in-ACK mechanism).
                    n.mac
                        .prime_ack_note(child, Payload::PhaseUpdateRequest { query });
                    self.phase_requests += 1;
                }
            }
            let info = TreeInfo {
                own_rank,
                max_rank,
                own_level,
                max_level,
                children: &kids,
            };
            n.policy
                .on_report_received(&q, child, k, now, piggyback, &info);
        }
        self.put_kids(kids);
        // The child spoke: withdraw any pending repair against it.
        self.disarm_repair(node, child, ctx);
        if resynced {
            self.resync_events += 1;
        }
        // Fold into the round (unless it already finished).
        if self.open_round(node, qi, k, ctx) {
            let key = RoundKey { query, round: k };
            let n = &mut self.nodes[node.index()];
            if let Some(r) = n.rounds.get_mut(&key) {
                r.agg.add_child(child, agg);
            }
        }
        // A fresher expectation may move open collection deadlines
        // (DTS learns child phases): re-derive for k and k+1.
        for kk in [k, k + 1] {
            self.refresh_deadline(node, qi, kk, ctx);
        }
        self.maybe_complete(node, qi, k, ctx);
    }

    /// Re-derives the collection deadline of an open, unreleased round
    /// and reschedules its timeout if it moved.
    pub(crate) fn refresh_deadline(
        &mut self,
        node: NodeId,
        qi: usize,
        k: u64,
        ctx: &mut Context<'_, Ev>,
    ) {
        let q = self.query(qi);
        let key = RoundKey {
            query: q.id,
            round: k,
        };
        let current = {
            let n = &self.nodes[node.index()];
            match n.rounds.get(&key) {
                Some(r) if !r.release_planned && r.deadline.is_some() => r.deadline,
                _ => return,
            }
        };
        let fresh = self.collection_deadline(node, qi, k);
        if Some(fresh) != current {
            let old_ev = {
                let n = &mut self.nodes[node.index()];
                let r = n.rounds.get_mut(&key).expect("checked above");
                r.deadline = Some(fresh);
                r.timeout_ev.take()
            };
            if let Some(id) = old_ev {
                ctx.cancel(id);
            }
            let wall = self.to_wall(node, fresh) + self.guard_at(fresh);
            let id = ctx.schedule_at(
                wall.max(ctx.now()),
                Ev::CollectionTimeout {
                    node,
                    query: qi,
                    round: k,
                },
            );
            self.nodes[node.index()]
                .rounds
                .get_mut(&key)
                .expect("checked above")
                .timeout_ev = Some(id);
        }
    }

    pub(crate) fn handle_tx_done(
        &mut self,
        node: NodeId,
        frame: Frame<Payload>,
        attempts: u32,
        ctx: &mut Context<'_, Ev>,
    ) {
        match frame.payload {
            Payload::Report { query, round, .. } => {
                self.reports_sent += 1;
                // Link-quality estimation on the tx-end seam: the ACKed
                // report is one success (after `attempts - 1` failures)
                // on the directed link it actually used.
                if let Dest::Unicast(dest) = frame.dest {
                    self.observe_link(node, dest, attempts, true);
                }
                let qi = query.index();
                let q = self.query(qi);
                let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
                let parent = self.tree.parent(node);
                let now = ctx.now();
                let n = &mut self.nodes[node.index()];
                if let Some(p) = parent {
                    n.parent_fail.heard_from(p);
                }
                let info = TreeInfo {
                    own_rank,
                    max_rank,
                    own_level,
                    max_level,
                    children: &kids,
                };
                n.policy.on_report_sent(&q, round, now, &info);
                if let Some(mut r) = n.rounds.remove(&RoundKey { query, round }) {
                    if let Some(id) = r.timeout_ev.take() {
                        ctx.cancel(id);
                    }
                }
                self.put_kids(kids);
                // The suspect answered: withdraw any pending repair.
                if let Dest::Unicast(dest) = frame.dest {
                    self.disarm_repair(node, dest, ctx);
                }
            }
            Payload::Atim => {
                if let Dest::Unicast(dest) = frame.dest {
                    let view = self.node_view(node, ctx.now());
                    let mut acts = self.take_acts();
                    self.nodes[node.index()]
                        .policy
                        .on_atim_sent(dest, &view, &mut acts);
                    self.exec_policy_actions(node, &mut acts, ctx);
                    self.put_acts(acts);
                }
            }
            _ => {}
        }
        self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
    }

    pub(crate) fn handle_tx_failed(
        &mut self,
        node: NodeId,
        frame: Frame<Payload>,
        attempts: u32,
        ctx: &mut Context<'_, Ev>,
    ) {
        if let Payload::Report { query, round, .. } = &frame.payload {
            let (query, round) = (*query, *round);
            let qi = query.index();
            // An exhausted retry cycle is `attempts` un-ACKed failures
            // on the directed link, and one miss toward the parent —
            // counted whether or not the report gets another dispatch.
            let mut parent_failed = None;
            if let Dest::Unicast(p) = frame.dest {
                self.observe_link(node, p, attempts, false);
                if self.nodes[node.index()].parent_fail.miss(p) {
                    parent_failed = Some(p);
                }
            }
            // Deadline-aware budget: give the report another cycle
            // toward the (possibly since-repaired) parent while the
            // round deadline still affords one. The round stays live.
            if !self.try_redispatch(node, qi, round, frame, ctx) {
                let q = self.query(qi);
                let (own_rank, max_rank, own_level, max_level, kids) = self.tree_view(node);
                let now = ctx.now();
                {
                    let info = TreeInfo {
                        own_rank,
                        max_rank,
                        own_level,
                        max_level,
                        children: &kids,
                    };
                    let n = &mut self.nodes[node.index()];
                    n.policy.on_report_failed(&q, round, now, &info);
                    if let Some(mut r) = n.rounds.remove(&RoundKey { query, round }) {
                        if let Some(id) = r.timeout_ev.take() {
                            ctx.cancel(id);
                        }
                    }
                }
                self.put_kids(kids);
            }
            if let Some(p) = parent_failed {
                if self.tree.is_member(p) && p != self.root {
                    self.on_peer_suspect(node, p, ctx);
                }
            }
        }
        // Atim: re-announced next beacon. Others: nothing to do.
        self.sleep_checkpoint(node, SleepTrigger::Quiesce, ctx);
    }

    pub(crate) fn handle_query_setup(
        &mut self,
        node: NodeId,
        qi: usize,
        hops: u32,
        ctx: &mut Context<'_, Ev>,
    ) {
        let i = node.index();
        if self.hot.dead[i] || !self.hot.member[i] || self.nodes[i].registered.contains(&qi) {
            return;
        }
        if let Some((round, at)) = self.register_query_at(node, qi, ctx.now()) {
            ctx.schedule_at(
                self.to_wall(node, at).max(ctx.now()),
                Ev::RoundStart {
                    node,
                    query: qi,
                    round,
                },
            );
        } else {
            // Still mark as seen so we only rebroadcast once.
            self.nodes[node.index()].registered.insert(qi);
        }
        // Re-flood once.
        let frame = {
            let n = &mut self.nodes[node.index()];
            Frame {
                id: n.mac.alloc_frame_id(),
                src: node,
                dest: Dest::Broadcast,
                kind: FrameKind::Data,
                bytes: sizes::QUERY_SETUP_BYTES,
                payload: Payload::QuerySetup {
                    query: QueryId::new(qi as u32),
                    hops: hops + 1,
                },
            }
        };
        self.enqueue_frame(node, frame, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essat_query::aggregate::AggregateOp;
    use essat_sim::time::SimDuration;

    fn q(phase_ms: u64, period_ms: u64) -> Query {
        Query::periodic(
            QueryId::new(0),
            SimDuration::from_millis(period_ms),
            SimTime::from_millis(phase_ms),
            AggregateOp::Sum,
        )
    }

    #[test]
    fn next_round_includes_exact_boundary() {
        let q = q(100, 250);
        // Before the phase: round 0.
        assert_eq!(World::next_round_at(&q, SimTime::ZERO), 0);
        assert_eq!(World::next_round_at(&q, SimTime::from_millis(100)), 0);
        // Mid-round: the next one.
        assert_eq!(World::next_round_at(&q, SimTime::from_millis(101)), 1);
        assert_eq!(World::next_round_at(&q, SimTime::from_millis(349)), 1);
        // Exactly on a later boundary: that round, not the one after —
        // the regression this pins (k+1 used to be returned here,
        // making a node revived at a round start skip a full period).
        assert_eq!(World::next_round_at(&q, SimTime::from_millis(350)), 1);
        assert_eq!(World::next_round_at(&q, SimTime::from_millis(600)), 2);
        assert_eq!(World::next_round_at(&q, SimTime::from_millis(601)), 3);
    }
}
