//! The per-node stack: radio + MAC + power policy + query-agent state.
//!
//! A [`NodeState`] is one node's slice of the world. The power-
//! management personality lives entirely behind the
//! [`PowerPolicy`] trait object; everything else here is
//! protocol-agnostic: the physical layers, the per-round aggregation
//! state, and the §4.3 maintenance detectors.

use std::collections::{BTreeMap, BTreeSet};

use essat_core::maintenance::{FailureDetector, LossDetector};
use essat_core::policy::PowerPolicy;
use essat_net::ids::NodeId;
use essat_net::mac::Mac;
use essat_net::radio::Radio;
use essat_query::round::{RoundAggregator, RoundKey};
use essat_sim::queue::EventId;
use essat_sim::time::SimTime;

use crate::payload::Payload;

/// Consecutive collection timeouts before a parent declares a child
/// failed (§4.3). Deliberately high: transient contention regularly
/// delays single reports, and a false child-removal costs a subtree.
pub(crate) const CHILD_FAIL_THRESHOLD: u32 = 8;
/// Consecutive MAC transmission failures before a child declares its
/// parent failed. Each miss already represents a full retry cycle
/// (7 MAC attempts), but a sleeping parent also manifests as one, so
/// several rounds must agree before the routing layer reacts.
pub(crate) const PARENT_FAIL_THRESHOLD: u32 = 5;

/// One round's collection state.
#[derive(Debug)]
pub(crate) struct RoundState {
    pub(crate) agg: RoundAggregator,
    /// Handle of the round's pending collection timeout, if any. Whoever
    /// closes or refreshes the round takes it and cancels the event on
    /// the queue.
    pub(crate) timeout_ev: Option<EventId>,
    pub(crate) deadline: Option<SimTime>,
    pub(crate) piggyback: Option<SimTime>,
    pub(crate) release_planned: bool,
    /// Deadline-budgeted re-dispatches already spent on this round's
    /// report (capped by [`crate::config::RepairConfig::max_redispatch`]).
    pub(crate) redispatches: u32,
}

/// Radio counters at the end of the setup slot (metrics measure from
/// here).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RadioSnapshot {
    pub(crate) active: u64,
    pub(crate) off: u64,
    pub(crate) trans: u64,
    pub(crate) energy: f64,
}

/// Per-node simulation state: the layered stack the executor drives.
///
/// The scalar flags consulted on (nearly) every event — liveness, tree
/// membership, radio mode, pending wake-up handles — do **not** live here:
/// they are flattened into the structure-of-arrays
/// [`Hot`](super::world::Hot) block on the `World`, so per-event guard
/// checks and whole-network sweeps stay cache-linear instead of striding
/// across these ~half-KB node records.
#[derive(Debug)]
pub(crate) struct NodeState {
    /// The pluggable power-management layer.
    pub(crate) policy: Box<dyn PowerPolicy<Payload>>,
    pub(crate) radio: Radio,
    pub(crate) mac: Mac<Payload>,
    pub(crate) died_at: Option<SimTime>,
    pub(crate) participating: BTreeSet<usize>,
    pub(crate) expected_children: BTreeMap<usize, Vec<NodeId>>,
    pub(crate) rounds: BTreeMap<RoundKey, RoundState>,
    /// Highest round released/completed per query (staleness guard).
    pub(crate) done: BTreeMap<usize, u64>,
    pub(crate) loss: LossDetector,
    pub(crate) child_fail: FailureDetector,
    pub(crate) parent_fail: FailureDetector,
    /// `(query, child)` pairs whose DTS phase is suspected stale.
    pub(crate) stale_phase: BTreeSet<(usize, NodeId)>,
    /// Next round each query's chain should handle (duplicate-chain
    /// guard for churn-recovery restarts).
    pub(crate) next_round: BTreeMap<usize, u64>,
    /// Times this node has been revived by churn.
    pub(crate) revivals: u64,
    /// Set when a skipped round moved expectations while the radio was
    /// mid-turn-on: re-run the sleep checkpoint once the wake-up
    /// completes.
    pub(crate) recheck_on_wake: bool,
    /// Flooded setup: queries already registered.
    pub(crate) registered: BTreeSet<usize>,
    pub(crate) snap: RadioSnapshot,
    pub(crate) rank0: u32,
    pub(crate) level0: u32,
}
