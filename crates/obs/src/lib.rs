//! Deterministic observability for the simulator.
//!
//! The crate defines the [`Probe`] seam: a read-only listener the
//! simulation core notifies at the same structural points the
//! `sanitize` feature checks — event dispatch, policy-action
//! application, sleep checkpoints, radio transitions, MAC tx/rx and
//! collisions, round lifecycle, churn, battery death, and clock
//! glitches. Probes *observe*; they cannot schedule or cancel events,
//! touch any RNG stream, or mutate node state, so attaching one leaves
//! every run digest and figure CSV byte-identical to a probe-free run.
//!
//! The default probe is [`NullProbe`]. The `World` is generic over its
//! probe (`World<P: Probe = NullProbe>`), so the null case
//! monomorphizes to empty inlined calls behind an
//! [`enabled`](Probe::enabled) check that constant-folds to `false` —
//! the disabled hot path carries no observable cost (pinned by the
//! `probe_null_ab` bench and the CI A/B gate).
//!
//! Two concrete probes ship here:
//!
//! * [`trace::TimelineTracer`] — per-node spans (radio awake/asleep,
//!   transmissions) and instants (rx, collisions, rounds, churn,
//!   clock glitches) exported as Chrome/Perfetto trace-event JSON or a
//!   compact JSONL codec.
//! * [`sample::TimeSeriesSampler`] — per-node energy, duty cycle, MAC
//!   queue depth, and tree membership at a configurable sim-time
//!   cadence, exported as CSV.
//!
//! [`profile::RunTimings`] carries per-run wall-clock phase timings
//! (build / run / finalize) for the harness executor's profiling
//! record, and [`perfetto`] holds the shared trace-event JSON builder
//! plus a structural validator used by tests and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod perfetto;
pub mod profile;
pub mod sample;
pub mod trace;

use essat_sim::time::SimTime;

/// Read-only view of per-node simulation state offered to probes.
///
/// Every accessor is a projection: computing it must not mutate the
/// world (the radio exposes `*_at(now)` projections for exactly this
/// reason). Indices are dense node indices (`0..node_count()`).
pub trait SampleView {
    /// Number of nodes in the world.
    fn node_count(&self) -> usize;
    /// True while the node is up (not scripted-failed or battery-dead).
    fn is_alive(&self, node: usize) -> bool;
    /// True while the node is a member of the routing tree.
    fn in_tree(&self, node: usize) -> bool;
    /// Energy consumed since the measurement window opened, in joules,
    /// projected to `now`.
    fn energy_j(&self, node: usize, now: SimTime) -> f64;
    /// Duty cycle over the measurement window so far (active +
    /// transition time over total), projected to `now`.
    fn duty_cycle(&self, node: usize, now: SimTime) -> f64;
    /// Frames currently queued in the node's MAC.
    fn queue_depth(&self, node: usize) -> usize;
}

/// The kind of a policy action, as visible to probes.
///
/// Mirrors the simulator's `PolicyAction` alphabet without exposing
/// its payloads (probes are read-only; the payloads carry pooled
/// buffers and frame handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyActionKind {
    /// Wake the radio (begin the off→active transition).
    WakeRadio,
    /// Arm or re-arm a policy timer.
    SetTimer,
    /// Send an ATIM-style announcement frame.
    SendAtim,
    /// Enqueue an application frame at the MAC.
    Enqueue,
    /// Put the radio to sleep until a wake deadline.
    Sleep,
}

impl PolicyActionKind {
    /// Stable lower-case label (used by tracers and codecs).
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyActionKind::WakeRadio => "wake_radio",
            PolicyActionKind::SetTimer => "set_timer",
            PolicyActionKind::SendAtim => "send_atim",
            PolicyActionKind::Enqueue => "enqueue",
            PolicyActionKind::Sleep => "sleep",
        }
    }
}

/// A read-only observer threaded through the simulation core.
///
/// All methods default to no-ops so a probe implements only what it
/// needs. The trait is object-safe (no associated constants or
/// generic methods), though the `World` consumes probes by value and
/// monomorphizes over them.
///
/// # Determinism contract
///
/// Probes receive `&mut self` for their own bookkeeping but only
/// shared views of the simulation. They must not panic on well-formed
/// input; they cannot influence event order, RNG draws, or metrics.
#[allow(unused_variables)]
pub trait Probe {
    /// Whether the probe wants callbacks at all. The core consults
    /// this before building views or gathering hook arguments;
    /// [`NullProbe`] returns `false`, so the check constant-folds and
    /// every hook disappears from the monomorphized hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// An event is about to be dispatched. `kind` is the stable label
    /// from the simulator's event alphabet; `view` projects node state
    /// as of `now` (samplers hang their cadence off this hook).
    fn on_event(&mut self, now: SimTime, kind: &'static str, view: &dyn SampleView) {}

    /// A node's radio reached the active state (`active == true`) or
    /// left it for sleep (`active == false`).
    fn on_radio_state(&mut self, now: SimTime, node: u32, active: bool) {}

    /// The policy layer emitted an action for `node`.
    fn on_policy_action(&mut self, now: SimTime, node: u32, kind: PolicyActionKind) {}

    /// A sleep checkpoint ran for `node` (the seam where policies are
    /// offered a chance to suspend the radio).
    fn on_sleep_checkpoint(&mut self, now: SimTime, node: u32) {}

    /// `node` started transmitting a frame of `bytes` bytes that will
    /// occupy the channel for `airtime_ns`.
    fn on_tx_start(&mut self, now: SimTime, node: u32, airtime_ns: u64, bytes: u32) {}

    /// `sender`'s transmission ended: `clean` receivers got the frame,
    /// `corrupted` receivers saw a collision-corrupted copy.
    fn on_tx_end(&mut self, now: SimTime, sender: u32, clean: u32, corrupted: u32) {}

    /// `node` cleanly received a frame from `from`.
    fn on_rx(&mut self, now: SimTime, node: u32, from: u32) {}

    /// `node` opened round `round` of query `query`.
    fn on_round_start(&mut self, now: SimTime, node: u32, query: u32, round: u64) {}

    /// The root (`node`) sealed round `round` of query `query`; `full`
    /// is true when every registered source contributed.
    fn on_round_sealed(&mut self, now: SimTime, node: u32, query: u32, round: u64, full: bool) {}

    /// `node` died — scripted churn (`battery == false`) or battery
    /// depletion (`battery == true`).
    fn on_node_down(&mut self, now: SimTime, node: u32, battery: bool) {}

    /// `node` recovered from a scripted failure.
    fn on_node_up(&mut self, now: SimTime, node: u32) {}

    /// A scripted clock glitch steps `node`'s clock by `delta_ns` at
    /// `at`. Glitches are compiled ahead of the run, so this fires at
    /// construction time for each scheduled step.
    fn on_clock_glitch(&mut self, at: SimTime, node: u32, delta_ns: i64) {}

    /// The run reached its end; `view` projects final node state. This
    /// is the last callback (spans should be closed here).
    fn on_run_end(&mut self, end: SimTime, view: &dyn SampleView) {}
}

/// The default probe: observes nothing, costs nothing.
///
/// [`enabled`](Probe::enabled) returns `false`, so monomorphized hook
/// sites dead-code away entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Composes two probes into one; both receive every callback.
///
/// Used when a run wants the tracer *and* the sampler attached:
/// `Fanout(TimelineTracer::new(), TimeSeriesSampler::new(period))`.
#[derive(Debug, Clone, Default)]
pub struct Fanout<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Fanout<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn on_event(&mut self, now: SimTime, kind: &'static str, view: &dyn SampleView) {
        self.0.on_event(now, kind, view);
        self.1.on_event(now, kind, view);
    }

    fn on_radio_state(&mut self, now: SimTime, node: u32, active: bool) {
        self.0.on_radio_state(now, node, active);
        self.1.on_radio_state(now, node, active);
    }

    fn on_policy_action(&mut self, now: SimTime, node: u32, kind: PolicyActionKind) {
        self.0.on_policy_action(now, node, kind);
        self.1.on_policy_action(now, node, kind);
    }

    fn on_sleep_checkpoint(&mut self, now: SimTime, node: u32) {
        self.0.on_sleep_checkpoint(now, node);
        self.1.on_sleep_checkpoint(now, node);
    }

    fn on_tx_start(&mut self, now: SimTime, node: u32, airtime_ns: u64, bytes: u32) {
        self.0.on_tx_start(now, node, airtime_ns, bytes);
        self.1.on_tx_start(now, node, airtime_ns, bytes);
    }

    fn on_tx_end(&mut self, now: SimTime, sender: u32, clean: u32, corrupted: u32) {
        self.0.on_tx_end(now, sender, clean, corrupted);
        self.1.on_tx_end(now, sender, clean, corrupted);
    }

    fn on_rx(&mut self, now: SimTime, node: u32, from: u32) {
        self.0.on_rx(now, node, from);
        self.1.on_rx(now, node, from);
    }

    fn on_round_start(&mut self, now: SimTime, node: u32, query: u32, round: u64) {
        self.0.on_round_start(now, node, query, round);
        self.1.on_round_start(now, node, query, round);
    }

    fn on_round_sealed(&mut self, now: SimTime, node: u32, query: u32, round: u64, full: bool) {
        self.0.on_round_sealed(now, node, query, round, full);
        self.1.on_round_sealed(now, node, query, round, full);
    }

    fn on_node_down(&mut self, now: SimTime, node: u32, battery: bool) {
        self.0.on_node_down(now, node, battery);
        self.1.on_node_down(now, node, battery);
    }

    fn on_node_up(&mut self, now: SimTime, node: u32) {
        self.0.on_node_up(now, node);
        self.1.on_node_up(now, node);
    }

    fn on_clock_glitch(&mut self, at: SimTime, node: u32, delta_ns: i64) {
        self.0.on_clock_glitch(at, node, delta_ns);
        self.1.on_clock_glitch(at, node, delta_ns);
    }

    fn on_run_end(&mut self, end: SimTime, view: &dyn SampleView) {
        self.0.on_run_end(end, view);
        self.1.on_run_end(end, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingProbe {
        events: u32,
    }

    impl Probe for CountingProbe {
        fn on_event(&mut self, _now: SimTime, _kind: &'static str, _view: &dyn SampleView) {
            self.events += 1;
        }
    }

    struct EmptyView;
    impl SampleView for EmptyView {
        fn node_count(&self) -> usize {
            0
        }
        fn is_alive(&self, _: usize) -> bool {
            false
        }
        fn in_tree(&self, _: usize) -> bool {
            false
        }
        fn energy_j(&self, _: usize, _: SimTime) -> f64 {
            0.0
        }
        fn duty_cycle(&self, _: usize, _: SimTime) -> f64 {
            0.0
        }
        fn queue_depth(&self, _: usize) -> usize {
            0
        }
    }

    #[test]
    fn null_probe_is_disabled() {
        assert!(!NullProbe.enabled());
    }

    #[test]
    fn fanout_delivers_to_both() {
        let mut f = Fanout(CountingProbe { events: 0 }, CountingProbe { events: 0 });
        assert!(f.enabled());
        f.on_event(SimTime::ZERO, "tick", &EmptyView);
        f.on_event(SimTime::from_secs(1), "tick", &EmptyView);
        assert_eq!(f.0.events, 2);
        assert_eq!(f.1.events, 2);
    }

    #[test]
    fn fanout_of_nulls_is_disabled() {
        assert!(!Fanout(NullProbe, NullProbe).enabled());
    }
}
