//! The timeline tracer: per-node spans and instants, with Perfetto
//! and JSONL export.
//!
//! [`TimelineTracer`] is a [`Probe`] that turns the hook stream into a
//! flat list of [`TraceEvent`]s — radio awake/asleep spans,
//! transmission spans (duration = airtime), and instants for clean
//! receptions, collisions, round starts, sealed rounds, churn, and
//! clock glitches. The list renders two ways:
//!
//! * [`TimelineTracer::to_perfetto_json`] — Chrome/Perfetto
//!   trace-event JSON (pid 0 = the simulation, one thread per node),
//!   loadable in `ui.perfetto.dev`.
//! * [`TimelineTracer::to_jsonl`] — one compact JSON object per line,
//!   parsed back by [`parse_jsonl`] (the codec round-trips exactly).

use essat_sim::time::SimTime;

use crate::json::{self, JsonValue};
use crate::perfetto::PerfettoBuilder;
use crate::{Probe, SampleView};

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span during which the node's radio was active (or waking).
    Awake,
    /// A span during which the node's radio was asleep.
    Asleep,
    /// A transmission span; `a` = payload bytes.
    Tx,
    /// A clean reception; `a` = sending node.
    Rx,
    /// A transmission ended with collision-corrupted receivers;
    /// `a` = clean count, `b` = corrupted count. Node = sender.
    Collision,
    /// The node opened a round; `a` = query, `b` = round number.
    RoundStart,
    /// The root sealed a round; `a` = query, `b` = round number.
    /// Node = root.
    RoundSealed,
    /// The node went down; `a` = 1 for battery depletion, 0 for
    /// scripted churn.
    NodeDown,
    /// The node recovered from a scripted failure.
    NodeUp,
    /// A scripted clock step; `a` = magnitude in ns, `b` = 1 if the
    /// step was backward (negative) else 0.
    ClockGlitch,
}

impl TraceKind {
    /// Stable label used by both codecs.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Awake => "awake",
            TraceKind::Asleep => "asleep",
            TraceKind::Tx => "tx",
            TraceKind::Rx => "rx",
            TraceKind::Collision => "collision",
            TraceKind::RoundStart => "round_start",
            TraceKind::RoundSealed => "round_sealed",
            TraceKind::NodeDown => "node_down",
            TraceKind::NodeUp => "node_up",
            TraceKind::ClockGlitch => "clock_glitch",
        }
    }

    /// Inverse of [`TraceKind::as_str`].
    pub fn parse(s: &str) -> Option<TraceKind> {
        Some(match s {
            "awake" => TraceKind::Awake,
            "asleep" => TraceKind::Asleep,
            "tx" => TraceKind::Tx,
            "rx" => TraceKind::Rx,
            "collision" => TraceKind::Collision,
            "round_start" => TraceKind::RoundStart,
            "round_sealed" => TraceKind::RoundSealed,
            "node_down" => TraceKind::NodeDown,
            "node_up" => TraceKind::NodeUp,
            "clock_glitch" => TraceKind::ClockGlitch,
            _ => return None,
        })
    }
}

/// One entry on a node's timeline.
///
/// `dur_ns == 0` marks an instant; otherwise the event is a span
/// `[ts_ns, ts_ns + dur_ns)`. The `a`/`b` payloads are kind-specific
/// (see [`TraceKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceKind,
    /// Start time, nanoseconds of simulated time.
    pub ts_ns: u64,
    /// Span length in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// The node the event belongs to.
    pub node: u32,
    /// First kind-specific payload.
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

/// A [`Probe`] that records per-node timeline events.
///
/// Nodes start with their radios active, so every node's timeline
/// opens with an `Awake` span at time zero; open spans are closed by
/// the `on_run_end` callback.
#[derive(Debug, Default)]
pub struct TimelineTracer {
    events: Vec<TraceEvent>,
    // Per-node open-span start times; `None` = no open span of that
    // kind. Grown on demand (probes see dense node indices).
    awake_since: Vec<Option<u64>>,
    asleep_since: Vec<Option<u64>>,
}

impl TimelineTracer {
    /// An empty tracer.
    pub fn new() -> Self {
        TimelineTracer::default()
    }

    /// The recorded events, in emission order (spans appear at their
    /// *close* time; instants at their occurrence).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn grow(&mut self, node: u32) {
        let need = node as usize + 1;
        if self.awake_since.len() < need {
            // A node first seen mid-run has been awake since t=0 (all
            // radios start active; sleepers emit a radio-state hook
            // before their first sleep).
            self.awake_since.resize(need, Some(0));
            self.asleep_since.resize(need, None);
        }
    }

    fn push(&mut self, kind: TraceKind, ts_ns: u64, dur_ns: u64, node: u32, a: u64, b: u64) {
        self.events.push(TraceEvent {
            kind,
            ts_ns,
            dur_ns,
            node,
            a,
            b,
        });
    }

    /// Renders the timeline as Chrome/Perfetto trace-event JSON.
    pub fn to_perfetto_json(&self) -> String {
        let mut b = PerfettoBuilder::new();
        b.process_name(0, "simulation");
        let mut named: Vec<bool> = Vec::new();
        for ev in &self.events {
            let idx = ev.node as usize;
            if named.len() <= idx {
                named.resize(idx + 1, false);
            }
            if !named[idx] {
                named[idx] = true;
                b.thread_name(0, ev.node, &format!("node {}", ev.node));
            }
            let name = match ev.kind {
                TraceKind::RoundStart => format!("round q{} #{}", ev.a, ev.b),
                TraceKind::RoundSealed => format!("sealed q{} #{}", ev.a, ev.b),
                TraceKind::Rx => format!("rx<-{}", ev.a),
                TraceKind::Collision => format!("collision x{}", ev.b),
                TraceKind::NodeDown => {
                    if ev.a == 1 {
                        "battery dead".to_string()
                    } else {
                        "down".to_string()
                    }
                }
                other => other.as_str().to_string(),
            };
            if ev.dur_ns > 0 {
                b.complete(0, ev.node, &name, ev.ts_ns, ev.dur_ns);
            } else {
                b.instant(0, ev.node, &name, ev.ts_ns);
            }
        }
        b.finish()
    }

    /// Renders the timeline as compact JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!(
                r#"{{"k":"{}","t":{},"d":{},"n":{},"a":{},"b":{}}}"#,
                ev.kind.as_str(),
                ev.ts_ns,
                ev.dur_ns,
                ev.node,
                ev.a,
                ev.b
            ));
            out.push('\n');
        }
        out
    }
}

/// Parses a JSONL document produced by [`TimelineTracer::to_jsonl`].
pub fn parse_jsonl(doc: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| ctx(&e.to_string()))?;
        let kind = v
            .get("k")
            .and_then(JsonValue::as_str)
            .and_then(TraceKind::parse)
            .ok_or_else(|| ctx("bad or missing kind"))?;
        let field = |key: &str| -> Result<u64, String> {
            let n = v
                .get(key)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| ctx(&format!("missing numeric {key}")))?;
            if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                return Err(ctx(&format!("{key} is not a u64")));
            }
            Ok(n as u64)
        };
        out.push(TraceEvent {
            kind,
            ts_ns: field("t")?,
            dur_ns: field("d")?,
            node: field("n")? as u32,
            a: field("a")?,
            b: field("b")?,
        });
    }
    Ok(out)
}

impl Probe for TimelineTracer {
    fn on_radio_state(&mut self, now: SimTime, node: u32, active: bool) {
        self.grow(node);
        let t = now.as_nanos();
        let i = node as usize;
        if active {
            if let Some(since) = self.asleep_since[i].take() {
                self.push(TraceKind::Asleep, since, t - since, node, 0, 0);
            }
            self.awake_since[i] = Some(t);
        } else {
            if let Some(since) = self.awake_since[i].take() {
                self.push(TraceKind::Awake, since, t - since, node, 0, 0);
            }
            self.asleep_since[i] = Some(t);
        }
    }

    fn on_tx_start(&mut self, now: SimTime, node: u32, airtime_ns: u64, bytes: u32) {
        self.push(
            TraceKind::Tx,
            now.as_nanos(),
            airtime_ns,
            node,
            bytes as u64,
            0,
        );
    }

    fn on_tx_end(&mut self, now: SimTime, sender: u32, clean: u32, corrupted: u32) {
        if corrupted > 0 {
            self.push(
                TraceKind::Collision,
                now.as_nanos(),
                0,
                sender,
                clean as u64,
                corrupted as u64,
            );
        }
    }

    fn on_rx(&mut self, now: SimTime, node: u32, from: u32) {
        self.push(TraceKind::Rx, now.as_nanos(), 0, node, from as u64, 0);
    }

    fn on_round_start(&mut self, now: SimTime, node: u32, query: u32, round: u64) {
        self.push(
            TraceKind::RoundStart,
            now.as_nanos(),
            0,
            node,
            query as u64,
            round,
        );
    }

    fn on_round_sealed(&mut self, now: SimTime, node: u32, query: u32, round: u64, _full: bool) {
        self.push(
            TraceKind::RoundSealed,
            now.as_nanos(),
            0,
            node,
            query as u64,
            round,
        );
    }

    fn on_node_down(&mut self, now: SimTime, node: u32, battery: bool) {
        self.grow(node);
        let t = now.as_nanos();
        let i = node as usize;
        // Death settles the radio: close whatever span is open.
        if let Some(since) = self.awake_since[i].take() {
            self.push(TraceKind::Awake, since, t - since, node, 0, 0);
        }
        if let Some(since) = self.asleep_since[i].take() {
            self.push(TraceKind::Asleep, since, t - since, node, 0, 0);
        }
        self.push(TraceKind::NodeDown, t, 0, node, battery as u64, 0);
    }

    fn on_node_up(&mut self, now: SimTime, node: u32) {
        self.grow(node);
        // Revival restarts the radio in the active state.
        self.awake_since[node as usize] = Some(now.as_nanos());
        self.push(TraceKind::NodeUp, now.as_nanos(), 0, node, 0, 0);
    }

    fn on_clock_glitch(&mut self, at: SimTime, node: u32, delta_ns: i64) {
        self.push(
            TraceKind::ClockGlitch,
            at.as_nanos(),
            0,
            node,
            delta_ns.unsigned_abs(),
            (delta_ns < 0) as u64,
        );
    }

    fn on_run_end(&mut self, end: SimTime, view: &dyn SampleView) {
        let t = end.as_nanos();
        // Make sure every node has a track even if it never slept.
        self.grow(view.node_count().saturating_sub(1) as u32);
        for i in 0..self.awake_since.len() {
            let node = i as u32;
            if let Some(since) = self.awake_since[i].take() {
                if t > since {
                    self.push(TraceKind::Awake, since, t - since, node, 0, 0);
                }
            }
            if let Some(since) = self.asleep_since[i].take() {
                if t > since {
                    self.push(TraceKind::Asleep, since, t - since, node, 0, 0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfetto;

    struct NodesView(usize);
    impl SampleView for NodesView {
        fn node_count(&self) -> usize {
            self.0
        }
        fn is_alive(&self, _: usize) -> bool {
            true
        }
        fn in_tree(&self, _: usize) -> bool {
            true
        }
        fn energy_j(&self, _: usize, _: SimTime) -> f64 {
            0.0
        }
        fn duty_cycle(&self, _: usize, _: SimTime) -> f64 {
            0.0
        }
        fn queue_depth(&self, _: usize) -> usize {
            0
        }
    }

    fn sample_tracer() -> TimelineTracer {
        let mut tr = TimelineTracer::new();
        tr.on_radio_state(SimTime::from_millis(10), 1, false);
        tr.on_radio_state(SimTime::from_millis(25), 1, true);
        tr.on_tx_start(SimTime::from_millis(30), 0, 1_250_000, 36);
        tr.on_rx(SimTime::from_millis(31), 1, 0);
        tr.on_tx_end(SimTime::from_millis(31), 0, 1, 2);
        tr.on_round_start(SimTime::from_millis(40), 2, 0, 7);
        tr.on_round_sealed(SimTime::from_millis(45), 0, 0, 7, true);
        tr.on_node_down(SimTime::from_millis(50), 2, true);
        tr.on_clock_glitch(SimTime::from_millis(55), 1, -500);
        tr.on_run_end(SimTime::from_millis(60), &NodesView(3));
        tr
    }

    #[test]
    fn spans_open_and_close() {
        let tr = sample_tracer();
        let sleeps: Vec<_> = tr
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Asleep)
            .collect();
        assert_eq!(sleeps.len(), 1);
        assert_eq!(sleeps[0].ts_ns, 10_000_000);
        assert_eq!(sleeps[0].dur_ns, 15_000_000);
        // Node 1: awake [0,10ms) then awake [25ms,60ms); node 0 awake
        // the whole run; node 2 awake until death at 50ms.
        let awake_ns: u64 = tr
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Awake && e.node == 1)
            .map(|e| e.dur_ns)
            .sum();
        assert_eq!(awake_ns, 45_000_000);
    }

    #[test]
    fn jsonl_round_trips() {
        let tr = sample_tracer();
        let doc = tr.to_jsonl();
        let parsed = parse_jsonl(&doc).expect("parses");
        assert_eq!(parsed, tr.events());
        // Re-encoding is byte-identical.
        let again = TimelineTracer {
            events: parsed,
            ..TimelineTracer::default()
        };
        assert_eq!(again.to_jsonl(), doc);
    }

    #[test]
    fn perfetto_export_validates() {
        let tr = sample_tracer();
        let doc = tr.to_perfetto_json();
        let count = perfetto::validate(&doc).expect("valid trace");
        assert!(count > tr.events().len(), "metadata events add tracks");
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in [
            TraceKind::Awake,
            TraceKind::Asleep,
            TraceKind::Tx,
            TraceKind::Rx,
            TraceKind::Collision,
            TraceKind::RoundStart,
            TraceKind::RoundSealed,
            TraceKind::NodeDown,
            TraceKind::NodeUp,
            TraceKind::ClockGlitch,
        ] {
            assert_eq!(TraceKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(TraceKind::parse("nonsense"), None);
    }
}
