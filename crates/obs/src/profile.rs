//! Wall-clock phase timings for one simulation run.
//!
//! The simulator fills a [`RunTimings`] per run (world construction,
//! event-loop execution, metrics finalisation); the harness executor
//! aggregates them across jobs and workers into the
//! `BENCH_harness.json` profiling record and the optional executor
//! Perfetto track. Wall-clock times are *profiling* data — they never
//! feed back into the simulation and are inherently nondeterministic.

use std::time::Duration;

/// Per-phase wall-clock timings of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunTimings {
    /// Building the world: topology, tree, channel, per-node stacks.
    pub build: Duration,
    /// Draining the event queue to the run end.
    pub run: Duration,
    /// Settling radios and assembling the `RunResult`.
    pub finalize: Duration,
}

impl RunTimings {
    /// Total wall-clock across the three phases.
    pub fn total(&self) -> Duration {
        self.build + self.run + self.finalize
    }

    /// Accumulates another run's timings into this one.
    pub fn accumulate(&mut self, other: &RunTimings) {
        self.build += other.build;
        self.run += other.run;
        self.finalize += other.finalize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = RunTimings {
            build: Duration::from_millis(1),
            run: Duration::from_millis(10),
            finalize: Duration::from_millis(2),
        };
        assert_eq!(a.total(), Duration::from_millis(13));
        a.accumulate(&a.clone());
        assert_eq!(a.total(), Duration::from_millis(26));
    }
}
