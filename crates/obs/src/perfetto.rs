//! Chrome/Perfetto trace-event JSON emission and validation.
//!
//! The builder produces the JSON Array Format documented for
//! `chrome://tracing` and loaded verbatim by `ui.perfetto.dev`: a
//! top-level object whose `traceEvents` array holds metadata (`"M"`),
//! complete (`"X"`), and instant (`"i"`) events. Timestamps are in
//! microseconds; we emit nanosecond-precision values with three
//! decimal places so nothing is lost. Both the simulation tracer
//! (pid 0, one thread per node) and the harness executor profiler
//! (pid 1, one thread per worker) render through this builder, so the
//! two tracks can be concatenated into one trace.

use crate::json::{self, JsonValue};

/// Incrementally builds one trace-event JSON document.
#[derive(Debug, Default)]
pub struct PerfettoBuilder {
    events: Vec<String>,
}

/// Formats a nanosecond count as fractional microseconds ("12.345").
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl PerfettoBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        PerfettoBuilder::default()
    }

    /// Names a process track (`"M"` / `process_name`).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":"{}"}}}}"#,
            json::escape(name)
        ));
    }

    /// Names a thread track (`"M"` / `thread_name`).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            json::escape(name)
        ));
    }

    /// A complete (`"X"`) event: a span of `dur_ns` starting `ts_ns`.
    pub fn complete(&mut self, pid: u32, tid: u32, name: &str, ts_ns: u64, dur_ns: u64) {
        self.events.push(format!(
            r#"{{"ph":"X","pid":{pid},"tid":{tid},"ts":{},"dur":{},"name":"{}"}}"#,
            us(ts_ns),
            us(dur_ns),
            json::escape(name)
        ));
    }

    /// A thread-scoped instant (`"i"`) event at `ts_ns`.
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, ts_ns: u64) {
        self.events.push(format!(
            r#"{{"ph":"i","s":"t","pid":{pid},"tid":{tid},"ts":{},"name":"{}"}}"#,
            us(ts_ns),
            json::escape(name)
        ));
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the final document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Structurally validates a trace-event JSON document.
///
/// Checks the shape `ui.perfetto.dev` requires: a parseable JSON
/// object with a `traceEvents` array in which every element is an
/// object carrying a string `ph`, numeric `pid`/`tid`, a string
/// `name`, a numeric `ts` on all non-metadata events, and a numeric
/// `dur` on `"X"` events. Returns the event count.
pub fn validate(doc: &str) -> Result<usize, String> {
    let root = json::parse(doc).map_err(|e| e.to_string())?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("traceEvents[{i}]: {msg}");
        if !ev.is_obj() {
            return Err(ctx("not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing string ph"))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| ctx(&format!("missing numeric {key}")))?;
        }
        ev.get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing string name"))?;
        if ph != "M" {
            ev.get("ts")
                .and_then(JsonValue::as_num)
                .ok_or_else(|| ctx("missing numeric ts"))?;
        }
        if ph == "X" {
            ev.get("dur")
                .and_then(JsonValue::as_num)
                .ok_or_else(|| ctx("missing numeric dur"))?;
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_validates() {
        let mut b = PerfettoBuilder::new();
        b.process_name(0, "simulation");
        b.thread_name(0, 3, "node 3");
        b.complete(0, 3, "awake", 1_500, 2_000_000);
        b.instant(0, 3, "rx", 2_000_123);
        let doc = b.finish();
        assert_eq!(validate(&doc), Ok(4));
    }

    #[test]
    fn empty_trace_validates() {
        assert_eq!(validate(&PerfettoBuilder::new().finish()), Ok(0));
    }

    #[test]
    fn validator_rejects_malformed_events() {
        assert!(validate("[]").is_err());
        assert!(validate(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        assert!(
            validate(r#"{"traceEvents": [{"ph":"X","pid":0,"tid":0,"ts":1,"name":"a"}]}"#).is_err()
        );
    }

    #[test]
    fn microsecond_rendering_keeps_nanosecond_precision() {
        assert_eq!(us(1_234_567), "1234.567");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(0), "0.000");
    }
}
