//! The time-series sampler: per-node state at a fixed sim-time
//! cadence, exported as CSV.
//!
//! [`TimeSeriesSampler`] is a [`Probe`] that records one row per node
//! whenever simulated time first reaches the next cadence boundary
//! (samples ride on event dispatch, so a row's timestamp is the time
//! of the first event at-or-after the boundary — deterministic,
//! because the event stream is). A final row set is always taken at
//! run end, so the last `energy_j` column per node equals the
//! `RunResult` node totals exactly.

use essat_sim::time::{SimDuration, SimTime};

use crate::{Probe, SampleView};

/// One sampled observation of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRow {
    /// Sample time, nanoseconds of simulated time.
    pub t_ns: u64,
    /// The observed node.
    pub node: u32,
    /// Energy consumed since the measurement window opened, joules.
    pub energy_j: f64,
    /// Duty cycle over the measurement window so far (0..=1).
    pub duty_cycle: f64,
    /// Frames queued in the node's MAC.
    pub queue_depth: u32,
    /// True while the node is up.
    pub alive: bool,
    /// True while the node is a routing-tree member.
    pub in_tree: bool,
}

/// A [`Probe`] recording per-node time series at a fixed cadence.
#[derive(Debug)]
pub struct TimeSeriesSampler {
    period: SimDuration,
    next: SimTime,
    last_sample: Option<SimTime>,
    rows: Vec<SampleRow>,
}

impl TimeSeriesSampler {
    /// A sampler that records every `period` of simulated time
    /// (clamped to at least 1 ns).
    pub fn new(period: SimDuration) -> Self {
        TimeSeriesSampler {
            period: period.max(SimDuration::from_nanos(1)),
            next: SimTime::ZERO,
            last_sample: None,
            rows: Vec::new(),
        }
    }

    /// The recorded rows, grouped by sample time then node.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    fn sample(&mut self, now: SimTime, view: &dyn SampleView) {
        for i in 0..view.node_count() {
            self.rows.push(SampleRow {
                t_ns: now.as_nanos(),
                node: i as u32,
                energy_j: view.energy_j(i, now),
                duty_cycle: view.duty_cycle(i, now),
                queue_depth: view.queue_depth(i) as u32,
                alive: view.is_alive(i),
                in_tree: view.in_tree(i),
            });
        }
        self.last_sample = Some(now);
    }

    /// Renders the series as CSV.
    ///
    /// Columns: `t_s,node,energy_j,duty_cycle,queue_depth,alive,in_tree`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,node,energy_j,duty_cycle,queue_depth,alive,in_tree\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:.9},{},{:.9},{:.6},{},{},{}\n",
                r.t_ns as f64 / 1e9,
                r.node,
                r.energy_j,
                r.duty_cycle,
                r.queue_depth,
                r.alive as u8,
                r.in_tree as u8
            ));
        }
        out
    }
}

impl Probe for TimeSeriesSampler {
    fn on_event(&mut self, now: SimTime, _kind: &'static str, view: &dyn SampleView) {
        if now < self.next {
            return;
        }
        self.sample(now, view);
        // Advance to the first boundary strictly after `now`, keeping
        // the grid anchored at t=0 regardless of event spacing.
        while self.next <= now {
            self.next = match self.next.checked_add(self.period) {
                Some(t) => t,
                None => SimTime::MAX,
            };
        }
    }

    fn on_run_end(&mut self, end: SimTime, view: &dyn SampleView) {
        if self.last_sample != Some(end) {
            self.sample(end, view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoNodes;
    impl SampleView for TwoNodes {
        fn node_count(&self) -> usize {
            2
        }
        fn is_alive(&self, node: usize) -> bool {
            node == 0
        }
        fn in_tree(&self, _: usize) -> bool {
            true
        }
        fn energy_j(&self, node: usize, now: SimTime) -> f64 {
            now.as_secs_f64() * (node + 1) as f64
        }
        fn duty_cycle(&self, _: usize, _: SimTime) -> f64 {
            0.25
        }
        fn queue_depth(&self, node: usize) -> usize {
            node
        }
    }

    #[test]
    fn samples_on_cadence_and_at_end() {
        let mut s = TimeSeriesSampler::new(SimDuration::from_secs(1));
        // Events at 0.4 s (first boundary is t=0), 1.7 s, 1.9 s, 2.1 s.
        for ms in [400u64, 1_700, 1_900, 2_100] {
            s.on_event(SimTime::from_millis(ms), "tick", &TwoNodes);
        }
        s.on_run_end(SimTime::from_secs(3), &TwoNodes);
        let times: Vec<u64> = s.rows().iter().map(|r| r.t_ns).collect();
        // 0.4 s covers the t=0 boundary, 1.7 s covers t=1 s, 2.1 s
        // covers t=2 s (1.9 s is skipped: same boundary as 1.7 s),
        // and the final row lands exactly at the end.
        assert_eq!(
            times,
            vec![
                400_000_000,
                400_000_000,
                1_700_000_000,
                1_700_000_000,
                2_100_000_000,
                2_100_000_000,
                3_000_000_000,
                3_000_000_000
            ]
        );
    }

    #[test]
    fn end_sample_not_duplicated() {
        let mut s = TimeSeriesSampler::new(SimDuration::from_secs(1));
        s.on_event(SimTime::from_secs(3), "tick", &TwoNodes);
        s.on_run_end(SimTime::from_secs(3), &TwoNodes);
        assert_eq!(s.rows().len(), 2, "one row set, two nodes");
    }

    #[test]
    fn csv_shape() {
        let mut s = TimeSeriesSampler::new(SimDuration::from_secs(1));
        s.on_run_end(SimTime::from_secs(2), &TwoNodes);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("t_s,node,energy_j,duty_cycle,queue_depth,alive,in_tree")
        );
        let row = lines.next().expect("node 0 row");
        assert_eq!(row, "2.000000000,0,2.000000000,0.250000,0,1,1");
        let row = lines.next().expect("node 1 row");
        assert_eq!(row, "2.000000000,1,4.000000000,0.250000,1,0,1");
    }
}
