//! A minimal JSON parser for validation and codec round-trips.
//!
//! The container builds fully offline, so every emitter in the
//! workspace hand-rolls its JSON; this module is the matching reader.
//! It parses the full JSON grammar into a [`JsonValue`] tree with
//! source positions in error messages — enough for the Perfetto
//! structural validator, the JSONL trace codec, and schema tests over
//! `BENCH_harness.json`. It is not a performance-sensitive path.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if the value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, JsonValue::Obj(_))
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by any of
                            // our emitters; map them to the replacement
                            // character rather than rejecting the doc.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (no
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }
}
