//! Workspace-local stand-in for `criterion`.
//!
//! The container builds fully offline, so the real criterion is not
//! available; this crate keeps the benches' source compatible
//! (`Criterion`, `bench_function`, `benchmark_group`,
//! `criterion_group!`, `criterion_main!`) while measuring with a plain
//! wall-clock loop: a warm-up phase, then `sample_size` samples whose
//! per-iteration times are reported as min / median / mean.
//!
//! Results print to stdout and, when `BENCH_JSON` is set in the
//! environment, are also appended to that path as JSON lines — the
//! format `BENCH_harness.json` tooling consumes.
//!
//! Filtering works like criterion's: `cargo bench -- <substring>` runs
//! only benchmarks whose id contains the substring.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Measurement loop handed to [`Criterion::bench_function`] closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warmup: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording per-iteration wall-clock
    /// times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, estimating the
        // per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~2 ms per sample, at least one iteration.
        let batch = ((0.002 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// One benchmark's summarised timings, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct SampleSummary {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
}

fn summarize(samples: &mut [f64]) -> SampleSummary {
    samples.sort_by(|a, b| a.total_cmp(b));
    let ns = 1e9;
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    SampleSummary {
        min_ns: samples.first().copied().unwrap_or(0.0) * ns,
        median_ns: samples[n / 2] * ns,
        mean_ns: mean * ns,
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion {
            sample_size: 20,
            warmup: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    fn skipped(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }

    fn record(&self, id: &str, summary: SampleSummary) {
        println!(
            "{id:<48} min {:>12.1} ns/iter   median {:>12.1} ns/iter   mean {:>12.1} ns/iter",
            summary.min_ns, summary.median_ns, summary.mean_ns
        );
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    f,
                    "{{\"id\":\"{id}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1}}}",
                    summary.min_ns, summary.median_ns, summary.mean_ns
                );
            }
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.skipped(id) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warmup: self.warmup,
        };
        f(&mut b);
        let summary = summarize(&mut b.samples);
        self.record(id, summary);
        self
    }

    /// Opens a named group; benchmark ids become `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (formality for API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions plus its shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_summarizes() {
        let mut c = Criterion::default().sample_size(3);
        c.warmup = Duration::from_millis(1);
        c.filter = None;
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().sample_size(2);
        c.filter = Some("only_this".into());
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion::default().sample_size(2);
        c.warmup = Duration::from_millis(1);
        c.filter = Some("grp/inner".into());
        let mut ran = false;
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("inner", |b| {
                ran = true;
                b.iter(|| 1)
            });
            g.finish();
        }
        assert!(ran);
    }
}
