//! Workspace-local stand-in for the `rand` crate.
//!
//! The container builds fully offline, so the real `rand` is not
//! available; this crate provides the exact subset `essat-sim` consumes:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling methods (`random`, `random_range`). The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the simulator requires (statistical quality
//! matches the real SmallRng family; the streams are simply different).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand the 64-bit seed into full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from an RNG.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut rngs::SmallRng) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        rng.next_raw()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        (rng.next_raw() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        rng.next_raw() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::SmallRng) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws one value from the range.
    fn sample(self, rng: &mut rngs::SmallRng) -> Self::Output;
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut rngs::SmallRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // over a 64-bit draw is irrelevant for simulation workloads.
        let hi = ((rng.next_raw() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut rngs::SmallRng) -> u32 {
        (self.start as u64..self.end as u64).sample(rng) as u32
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut rngs::SmallRng) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut rngs::SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::draw(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

/// Sampling extension methods (the rand 0.9+ `random*` spelling).
pub trait RngExt {
    /// Draws a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T;
    /// Draws uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl RngExt for rngs::SmallRng {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y = r.random_range(5u64..17);
            assert!((5..17).contains(&y));
            let z = r.random_range(-3.0f64..4.5);
            assert!((-3.0..4.5).contains(&z));
        }
    }

    #[test]
    fn bool_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(2);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
