//! Workspace-local stand-in for `proptest`.
//!
//! The container builds fully offline, so the real proptest is not
//! available. This crate re-implements the subset the workspace's
//! property tests use — the [`proptest!`] macro, range / tuple / `Just` /
//! `any` strategies, `collection::vec`, `option::of`, `prop_oneof!`, and
//! the `prop_assert*` macros — over a deterministic split-mix generator.
//! There is **no shrinking**: a failing case panics with the generated
//! inputs' debug representation in the panic message instead.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator driving input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_B00C,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test-case inputs.
///
/// Unlike real proptest there is no shrink tree; `generate` produces the
/// final value directly.
pub trait Strategy {
    /// The produced value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
signed_range_strategy!(i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for the full domain of a type; built by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain strategy for `T` (`bool` and the integer types).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T: Debug> {
    /// The alternatives.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Starts a union from its first alternative.
    pub fn new<S: Strategy<Value = T> + 'static>(first: S) -> Self {
        Union {
            options: vec![Box::new(first)],
        }
    }

    /// Adds another alternative.
    pub fn or<S: Strategy<Value = T> + 'static>(mut self, s: S) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "empty prop_oneof!");
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and a length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy producing `Option`s (`None` with probability ~1/4).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::Union::new($first)$(.or($rest))*
    };
}

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a
/// `#[test]` that runs the body over deterministic random inputs (the
/// case count comes from an optional leading
/// `#![proptest_config(...)]`). Failures panic with the generated
/// inputs included in the message.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Seed differs per test (by name) but is stable run to run.
            let mut name_seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                name_seed = (name_seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(name_seed.wrapping_add(case));
                $(let mut $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let mut $arg = $arg.clone();)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case} failed for inputs: {:?}",
                        ($(&$arg),+)
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vecs_sized(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_option(
            p in prop_oneof![Just(1u8), Just(2u8)],
            o in crate::option::of(0u64..4),
        ) {
            prop_assert!(p == 1 || p == 2);
            if let Some(v) = o {
                prop_assert!(v < 4);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
