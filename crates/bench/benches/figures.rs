//! One benchmark per paper figure.
//!
//! Each benchmark runs one *representative cell* of the corresponding
//! figure's sweep at reduced (`quick`) scale, so `cargo bench` finishes
//! in minutes while still exercising exactly the code paths the figure
//! uses. The full-sweep, paper-scale regeneration is the
//! `essat-figures` binary (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use essat_net::radio::RadioParams;
use essat_sim::time::SimDuration;
use essat_wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat_wsn::runner;

/// One quick-scale run, shortened further for benching.
fn quick_run(protocol: Protocol, workload: WorkloadSpec, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, workload, seed);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

/// Figure 2 cell: STS-SS at 5 Hz with a mid-sweep deadline (0.12 s,
/// the paper's knee).
fn fig2_deadline(c: &mut Criterion) {
    let cfg = quick_run(
        Protocol::StsSs,
        WorkloadSpec::paper(5.0).with_deadline(SimDuration::from_millis(120)),
        1,
    );
    c.bench_function("fig2/sts_deadline_120ms", |b| {
        b.iter(|| black_box(runner::run_one(&cfg)))
    });
}

/// Figure 3 cell: DTS-SS duty cycle at 3 Hz.
fn fig3_duty_vs_rate(c: &mut Criterion) {
    let cfg = quick_run(Protocol::DtsSs, WorkloadSpec::paper(3.0), 2);
    c.bench_function("fig3/dts_duty_3hz", |b| {
        b.iter(|| black_box(runner::run_one(&cfg).avg_duty_cycle_pct()))
    });
}

/// Figure 4 cell: DTS-SS with 5 queries per class at 0.2 Hz.
fn fig4_duty_vs_queries(c: &mut Criterion) {
    let cfg = quick_run(
        Protocol::DtsSs,
        WorkloadSpec::paper(0.2).with_queries_per_class(5),
        3,
    );
    c.bench_function("fig4/dts_duty_5qpc", |b| {
        b.iter(|| black_box(runner::run_one(&cfg).avg_duty_cycle_pct()))
    });
}

/// Figure 5 cell: NTS-SS rank profile at 5 Hz (the rank-linear case).
fn fig5_rank_profile(c: &mut Criterion) {
    let cfg = quick_run(Protocol::NtsSs, WorkloadSpec::paper(5.0), 4);
    c.bench_function("fig5/nts_rank_profile_5hz", |b| {
        b.iter(|| black_box(runner::run_one(&cfg).duty_by_rank()))
    });
}

/// Figure 6 cell: PSM latency at 3 Hz (the expensive baseline).
fn fig6_latency_vs_rate(c: &mut Criterion) {
    let cfg = quick_run(Protocol::Psm, WorkloadSpec::paper(3.0), 5);
    c.bench_function("fig6/psm_latency_3hz", |b| {
        b.iter(|| black_box(runner::run_one(&cfg).avg_latency_s()))
    });
}

/// Figure 7 cell: SYNC latency with 5 queries per class.
fn fig7_latency_vs_queries(c: &mut Criterion) {
    let cfg = quick_run(
        Protocol::Sync,
        WorkloadSpec::paper(0.2).with_queries_per_class(5),
        6,
    );
    c.bench_function("fig7/sync_latency_5qpc", |b| {
        b.iter(|| black_box(runner::run_one(&cfg).avg_latency_s()))
    });
}

/// Figure 8 cell: DTS-SS sleep-interval histogram with t_BE = 0.
fn fig8_sleep_hist(c: &mut Criterion) {
    let cfg =
        quick_run(Protocol::DtsSs, WorkloadSpec::paper(5.0), 7).with_radio(RadioParams::instant());
    c.bench_function("fig8/dts_sleep_hist_tbe0", |b| {
        b.iter(|| {
            let r = runner::run_one(&cfg);
            black_box(r.sleep_intervals.fraction_below(0.0025))
        })
    });
}

/// Figure 9 cell: DTS-SS at 5 Hz with the ZebraNet 40 ms break-even.
fn fig9_tbe(c: &mut Criterion) {
    let cfg =
        quick_run(Protocol::DtsSs, WorkloadSpec::paper(5.0), 8).with_radio(RadioParams::zebranet());
    c.bench_function("fig9/dts_duty_tbe40ms", |b| {
        b.iter(|| black_box(runner::run_one(&cfg).avg_duty_cycle_pct()))
    });
}

/// Headline cell: the DTS-vs-SPAN duty comparison at 5 Hz.
fn headline_comparison(c: &mut Criterion) {
    let dts = quick_run(Protocol::DtsSs, WorkloadSpec::paper(5.0), 9);
    let span = quick_run(Protocol::Span, WorkloadSpec::paper(5.0), 9);
    c.bench_function("headline/dts_vs_span_5hz", |b| {
        b.iter(|| {
            let d = runner::run_one(&dts).avg_duty_cycle_pct();
            let s = runner::run_one(&span).avg_duty_cycle_pct();
            black_box(1.0 - d / s)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        fig2_deadline,
        fig3_duty_vs_rate,
        fig4_duty_vs_queries,
        fig5_rank_profile,
        fig6_latency_vs_rate,
        fig7_latency_vs_queries,
        fig8_sleep_hist,
        fig9_tbe,
        headline_comparison,
}
criterion_main!(benches);
