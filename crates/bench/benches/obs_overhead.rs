//! NullProbe A/B guard: the observability layer must be free when
//! disabled.
//!
//! Arm A runs a simulation through the plain entry point
//! (`runner::run_one`); arm B runs the *same* configuration through
//! the probed entry point with the [`essat_obs::NullProbe`] attached.
//! `NullProbe::enabled()` is a monomorphized constant `false`, so every
//! hook — and its argument preparation — must dead-code away and the
//! two arms must time identically. CI compares the two records and
//! fails on more than 2% overhead (see `.github/workflows/ci.yml`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use essat_obs::NullProbe;
use essat_sim::time::SimDuration;
use essat_wsn::config::{ExperimentConfig, Protocol, WorkloadSpec};
use essat_wsn::runner;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(2.0), 5);
    cfg.duration = SimDuration::from_secs(10);
    cfg
}

/// Arm A: the plain run path (no probe type in sight).
fn baseline_run(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("obs/baseline_run", |b| {
        b.iter(|| black_box(runner::run_one(&cfg)))
    });
}

/// Arm B: the instrumented path with an explicit `NullProbe`.
fn null_probe_run(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("obs/null_probe_run", |b| {
        b.iter(|| black_box(runner::run_probed(&cfg, NullProbe)))
    });
}

criterion_group!(benches, baseline_run, null_probe_run);
criterion_main!(benches);
