//! Repair A/B guard: the self-healing layer must be free on the
//! fault-free path.
//!
//! Arm A runs a fault-free simulation with repair disabled in config;
//! arm B runs the *same* configuration with the default (enabled)
//! repair. On a fault-free run the resolved gate
//! (`repair_active = enabled && faults_possible`) keeps the layer
//! inactive — no link-quality matrix, no timers, no redispatch checks —
//! so the two arms must time identically. CI compares the two records
//! and fails on more than 2% overhead (NullProbe-gate style; see
//! `.github/workflows/ci.yml`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use essat_sim::time::SimDuration;
use essat_wsn::config::{ExperimentConfig, Protocol, RepairConfig, WorkloadSpec};
use essat_wsn::runner;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Protocol::DtsSs, WorkloadSpec::paper(2.0), 5);
    cfg.duration = SimDuration::from_secs(10);
    cfg
}

/// Arm A: repair disabled in config — the legacy path by construction.
fn repair_disabled_run(c: &mut Criterion) {
    let cfg = bench_cfg().with_repair(RepairConfig::disabled());
    c.bench_function("repair/disabled_run", |b| {
        b.iter(|| black_box(runner::run_one(&cfg)))
    });
}

/// Arm B: repair enabled (the default) on the same fault-free config —
/// the gate must make this the same machine code path as arm A.
fn repair_enabled_faultfree_run(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("repair/enabled_faultfree_run", |b| {
        b.iter(|| black_box(runner::run_one(&cfg)))
    });
}

criterion_group!(benches, repair_disabled_run, repair_enabled_faultfree_run);
criterion_main!(benches);
