//! Micro-benchmarks of the hot substrate paths: event queue, Safe Sleep
//! decisions, shaper updates, MAC contention cycles, channel collision
//! bookkeeping, and routing-tree construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use essat_core::dts::Dts;
use essat_core::nts::Nts;
use essat_core::safe_sleep::SafeSleep;
use essat_core::shaper::{TrafficShaper, TreeInfo};
use essat_core::sts::Sts;
use essat_net::channel::Channel;
use essat_net::ids::NodeId;
use essat_net::topology::Topology;
use essat_query::aggregate::{AggState, AggregateOp};
use essat_query::model::{Query, QueryId};
use essat_query::tree::RoutingTree;
use essat_sim::queue::EventQueue;
use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

fn event_queue_churn(c: &mut Criterion) {
    c.bench_function("micro/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::seed_from_u64(1);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, _, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn event_queue_churn_with_cancel(c: &mut Criterion) {
    c.bench_function("micro/event_queue_churn_cancel_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::seed_from_u64(1);
            let mut ids = Vec::with_capacity(10_000);
            for i in 0..10_000u64 {
                ids.push(q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000), i));
            }
            // Cancel every third event, then drain — the simulator's
            // actual usage pattern (timers armed and mostly re-armed).
            for (j, id) in ids.iter().enumerate() {
                if j % 3 == 0 {
                    q.cancel(*id);
                }
            }
            let mut sum = 0u64;
            while let Some((_, _, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn timer_wheel_push_pop(c: &mut Criterion) {
    c.bench_function("micro/timer_wheel_push_pop", |b| {
        // The simulator's dominant workload: MAC-slot-granularity timers
        // (DIFS ≈ 50 µs, backoff slots, SIFS, airtimes) armed a few
        // bucket-widths ahead of the cursor and popped almost
        // immediately — the regime the wheel makes O(1) where a
        // comparison heap pays O(log n) per event.
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::seed_from_u64(5);
            let mut sum = 0u64;
            // Keep ~64 timers in flight, fire them in time order.
            for i in 0..64u64 {
                q.push(SimTime::from_nanos(10_000 + rng.next_u64() % 500_000), i);
            }
            for i in 64..10_000u64 {
                let (t, _, e) = q.pop().expect("queue is primed");
                let now = t.as_nanos();
                sum = sum.wrapping_add(e);
                // Re-arm: mostly slot-scale delays, occasionally a
                // collection-timeout-scale one.
                let delay = if i % 37 == 0 {
                    5_000_000 + rng.next_u64() % 45_000_000
                } else {
                    10_000 + rng.next_u64() % 500_000
                };
                q.push(SimTime::from_nanos(now + delay), i);
            }
            black_box(sum)
        })
    });
}

fn timer_wheel_cancel_churn(c: &mut Criterion) {
    c.bench_function("micro/timer_wheel_cancel_churn", |b| {
        // The MAC's disarm pattern: timers are frequently cancelled and
        // re-armed (carrier busy/idle interruptions), and a slice of
        // them live past the wheel horizon in the overflow heap before
        // migrating back. Cancel must stay O(1) and stale entries must
        // drain cheaply.
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::seed_from_u64(6);
            let mut now = 0u64;
            let mut pending = Vec::with_capacity(128);
            let mut sum = 0u64;
            for step in 0..6_000u64 {
                // Arm two timers: one near, one far (overflow-bound).
                pending.push(q.push(
                    SimTime::from_nanos(now + 20_000 + rng.next_u64() % 200_000),
                    step,
                ));
                pending.push(q.push(
                    SimTime::from_nanos(now + 70_000_000 + rng.next_u64() % 200_000_000),
                    step,
                ));
                // Cancel one pending timer in three (MAC disarm churn).
                if step % 3 == 0 {
                    let idx = (rng.next_u64() as usize) % pending.len();
                    q.cancel(pending.swap_remove(idx));
                }
                // Fire the earliest.
                if let Some((t, _, e)) = q.pop() {
                    now = t.as_nanos();
                    sum = sum.wrapping_add(e);
                }
            }
            while let Some((_, _, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

/// Executes one MAC action batch against a real event queue the way the
/// simulator's executor does: `SetTimer` pushes an expiry event and hands
/// the id back through `timer_scheduled` (cancelling any displaced
/// handle), `StartTx` completes instantaneously, and every surrendered
/// handle from `pop_cancelled` becomes a real `queue.cancel`.
fn run_mac_actions(
    mac: &mut essat_net::mac::Mac<u64>,
    q: &mut EventQueue<essat_net::mac::MacTimer>,
    now: SimTime,
    acts: &mut Vec<essat_net::mac::MacAction<u64>>,
    spare: &mut Vec<essat_net::mac::MacAction<u64>>,
) {
    use essat_net::mac::MacAction;
    while !acts.is_empty() {
        spare.clear();
        for a in acts.drain(..) {
            match a {
                MacAction::SetTimer { kind, after } => {
                    let id = q.push(now + after, kind);
                    if let Some(stale) = mac.timer_scheduled(kind, id) {
                        q.cancel(stale);
                    }
                }
                MacAction::StartTx { .. } => {
                    // Airtime is irrelevant here; what this bench
                    // measures is the arm/disarm traffic of the cycle.
                    mac.tx_ended_into(now, spare);
                }
                _ => {}
            }
        }
        while let Some(id) = mac.pop_cancelled() {
            q.cancel(id);
        }
        std::mem::swap(acts, spare);
    }
}

fn mac_timer_arm_disarm_churn(c: &mut Criterion) {
    use essat_net::frame::{Dest, Frame, FrameKind};
    use essat_net::mac::{Mac, MacParams};
    c.bench_function("micro/mac_timer_arm_disarm_churn", |b| {
        // The CSMA/CA contention cycle's timer lifecycle end-to-end:
        // every DIFS/backoff arm schedules a real expiry event, every
        // carrier interruption disarms it via true cancellation
        // (`timer_scheduled` / `pop_cancelled` / `queue.cancel`), and
        // expiries dispatch through the wheel. This is the path that
        // replaced generation-fencing, so its cost is tracked here.
        b.iter(|| {
            let mut mac: Mac<u64> = Mac::new(
                NodeId::new(0),
                MacParams::paper(),
                SimRng::seed_from_u64(11),
            );
            let mut q = EventQueue::new();
            let mut acts = Vec::new();
            let mut spare = Vec::new();
            let mut now = SimTime::from_nanos(0);
            let mut fired = 0u64;
            for step in 0..2_000u64 {
                let f = Frame {
                    id: mac.alloc_frame_id(),
                    src: mac.node(),
                    dest: Dest::Broadcast,
                    kind: FrameKind::Data,
                    bytes: 52,
                    payload: step,
                };
                mac.enqueue_into(f, now, &mut acts);
                run_mac_actions(&mut mac, &mut q, now, &mut acts, &mut spare);
                if step % 3 == 0 {
                    // Carrier goes busy then idle: the Difs/Backoff
                    // disarm + re-arm churn this bench exists for.
                    mac.carrier_busy(now);
                    while let Some(id) = mac.pop_cancelled() {
                        q.cancel(id);
                    }
                    mac.carrier_idle_into(now, &mut acts);
                    run_mac_actions(&mut mac, &mut q, now, &mut acts, &mut spare);
                }
                while let Some((t, _, kind)) = q.pop() {
                    now = now.max(t);
                    fired += 1;
                    mac.timer_fired_into(kind, now, &mut acts);
                    run_mac_actions(&mut mac, &mut q, now, &mut acts, &mut spare);
                }
                now += SimDuration::from_micros(100);
            }
            black_box(fired)
        })
    });
}

fn batch_drain(c: &mut Criterion) {
    c.bench_function("micro/batch_drain_10k", |b| {
        // The engine's batched consumption loop (pop_batch_before +
        // per-entry claim) over the same workload as
        // `event_queue_push_pop_10k` — the delta between the two is the
        // per-event cursor overhead the batch drain removes.
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::seed_from_u64(1);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
            }
            let deadline = SimTime::from_nanos(u64::MAX / 2);
            let mut buf = Vec::new();
            let mut sum = 0u64;
            while q.pop_batch_before(deadline, &mut buf) != 0 {
                for &entry in &buf {
                    if let Some(e) = q.claim(entry) {
                        sum = sum.wrapping_add(e);
                    }
                }
            }
            black_box(sum)
        })
    });
}

fn channel_end_tx_vectorised(c: &mut Criterion) {
    use essat_net::channel::TxEndBuf;
    let mut rng = SimRng::seed_from_u64(42);
    let topo = Topology::random_paper(&mut rng);
    c.bench_function("micro/channel_end_tx_vectorised", |b| {
        // The zero-copy fan-out path the simulator actually runs: the
        // same begin/end cycle as `channel_start_end_tx`, but ends
        // resolve through `end_tx_into` into one recycled flat buffer
        // (clean | corrupted | now-idle partitions) instead of three
        // per-call vectors.
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(7));
        let mut end = TxEndBuf::default();
        let mut t = 0u64;
        b.iter(|| {
            let t0 = SimTime::from_micros(t);
            let airtime = SimDuration::from_micros(416);
            let txs = [0u32, 20, 40, 60].map(|s| ch.begin_tx(t0, NodeId::new(s), airtime));
            let mut clean = 0usize;
            for tx in txs {
                ch.recycle_nodes(tx.now_busy);
                ch.end_tx_into(t0 + airtime, tx.id, &mut end);
                clean += end.clean().len();
            }
            t += 1_000;
            black_box(clean)
        })
    });
}

fn channel_start_end_tx(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(42);
    let topo = Topology::random_paper(&mut rng);
    c.bench_function("micro/channel_start_end_tx", |b| {
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(7));
        let mut t = 0u64;
        b.iter(|| {
            // Four spread-out senders transmit concurrently, then all
            // transmissions end — one busy begin/end cycle of the paper
            // deployment, including the collision bookkeeping.
            let t0 = SimTime::from_micros(t);
            let airtime = SimDuration::from_micros(416);
            let txs = [0u32, 20, 40, 60].map(|s| ch.begin_tx(t0, NodeId::new(s), airtime));
            let mut clean = 0usize;
            for tx in txs {
                ch.recycle_nodes(tx.now_busy);
                let end = ch.end_tx(t0 + airtime, tx.id);
                clean += end.clean_receivers.len();
                ch.recycle_nodes(end.clean_receivers);
                ch.recycle_nodes(end.corrupted_receivers);
                ch.recycle_nodes(end.now_idle);
            }
            t += 1_000;
            black_box(clean)
        })
    });
}

fn safe_sleep_decide(c: &mut Criterion) {
    let mut ss = SafeSleep::new(
        SimDuration::from_micros(2_500),
        SimDuration::from_micros(1_250),
    );
    for qi in 0..3u32 {
        ss.update_next_send(QueryId::new(qi), SimTime::from_millis(100 + qi as u64));
        for child in 0..6u32 {
            ss.update_next_receive(
                QueryId::new(qi),
                NodeId::new(child),
                SimTime::from_millis(50 + child as u64),
            );
        }
    }
    c.bench_function("micro/safe_sleep_decide_21_expectations", |b| {
        b.iter(|| black_box(ss.decide(SimTime::from_millis(10))))
    });
}

fn query() -> Query {
    Query::periodic(
        QueryId::new(0),
        SimDuration::from_millis(200),
        SimTime::from_secs(1),
        AggregateOp::Avg,
    )
}

fn shaper_round_trip(c: &mut Criterion) {
    let q = query();
    let children = [(NodeId::new(1), 0u32), (NodeId::new(2), 1)];
    let info = TreeInfo {
        own_rank: 2,
        max_rank: 5,
        own_level: 3,
        max_level: 5,
        children: &children,
    };
    let mut group = c.benchmark_group("micro/shaper_round");
    for (name, mut shaper) in [
        ("nts", Box::new(Nts::new()) as Box<dyn TrafficShaper>),
        ("sts", Box::new(Sts::new())),
        ("dts", Box::new(Dts::new())),
    ] {
        shaper.register(&q, &info, false);
        group.bench_function(name, |b| {
            let mut k = 0u64;
            b.iter(|| {
                let ready = q.round_start(k) + SimDuration::from_millis(3);
                let rel = shaper.release(&q, k, ready, &info);
                let s = shaper.after_send(&q, k, rel.send_at, &info);
                let r = shaper.after_receive(&q, NodeId::new(1), k, ready, None, &info);
                k += 1;
                black_box((s, r))
            })
        });
    }
    group.finish();
}

fn channel_collision_storm(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(42);
    let topo = Topology::random_paper(&mut rng);
    c.bench_function("micro/channel_40_overlapping_tx", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&topo, SimRng::seed_from_u64(7));
            let mut txs = Vec::new();
            for i in 0..40u32 {
                let t = SimTime::from_micros(i as u64 * 10);
                txs.push(ch.begin_tx(t, NodeId::new(i), SimDuration::from_micros(416)));
            }
            let mut clean = 0usize;
            for (i, tx) in txs.into_iter().enumerate() {
                let end = ch.end_tx(SimTime::from_micros(416 + i as u64 * 10), tx.id);
                clean += end.clean_receivers.len();
            }
            black_box(clean)
        })
    });
}

fn gilbert_elliott_step(c: &mut Criterion) {
    use essat_net::channel::LossModel;
    use essat_scenario::gilbert::{GilbertElliott, GilbertElliottParams};
    let params = GilbertElliottParams {
        mean_good: SimDuration::from_secs(5),
        mean_bad: SimDuration::from_secs(1),
        drop_good: 0.0,
        drop_bad: 0.75,
    };
    let mut ge = GilbertElliott::new(80, params, SimRng::seed_from_u64(9));
    c.bench_function("micro/gilbert_elliott_step", |b| {
        // Per-reception hot path: one frame copy every ~500 µs on one
        // warmed link (state transitions amortise in, as in a run).
        let mut t = 0u64;
        b.iter(|| {
            t += 500;
            black_box(ge.dropped(SimTime::from_micros(t), NodeId::new(3), NodeId::new(17)))
        })
    });
}

fn tree_construction(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(3);
    let topo = Topology::random_paper(&mut rng);
    let root = topo.closest_to_center();
    c.bench_function("micro/tree_build_80_nodes", |b| {
        b.iter(|| black_box(RoutingTree::build(&topo, root, Some(300.0))))
    });
}

fn link_quality_ewma(c: &mut Criterion) {
    // The self-healing layer's per-tx-end arithmetic: one EWMA fold per
    // unicast MAC outcome, mixed success/failure cycles as the channel
    // would produce them. 1k folds per iteration amortise the timer.
    c.bench_function("micro/link_quality_ewma", |b| {
        b.iter(|| {
            let mut q = 1.0f64;
            for i in 0..1000u32 {
                let attempts = 1 + (i % 7);
                let delivered = i % 5 != 0;
                q = essat_wsn::sim::link_ewma_step(q, 0.3, attempts, delivered);
                // Keep the estimate in a realistic band so the loop
                // never degenerates into denormal arithmetic.
                if q < 1e-3 {
                    q = 1.0;
                }
            }
            black_box(q)
        })
    });
}

fn tree_reparent(c: &mut Criterion) {
    // A self-healing subtree move on a dense grid: the node oscillates
    // between its two best candidates (its current parent is always
    // excluded), exercising candidate scan + acyclicity walk + level/
    // rank recomputation — the full `RoutingTree::reparent` path.
    let topo = Topology::grid(5, 5, 10.0, 15.0);
    let root = NodeId::new(12);
    let mut tree = RoutingTree::build(&topo, root, None);
    let node = NodeId::new(6);
    let flat = |_: NodeId, _: NodeId| 1.0f64;
    assert!(
        tree.reparent(&topo, node, &flat).is_some(),
        "bench node must have an alternative parent"
    );
    c.bench_function("micro/tree_reparent", |b| {
        b.iter(|| black_box(tree.reparent(&topo, node, &flat)))
    });
}

fn aggregation_merge(c: &mut Criterion) {
    c.bench_function("micro/agg_merge_1k", |b| {
        b.iter(|| {
            let mut acc = AggState::empty();
            for i in 0..1000 {
                acc.merge(&AggState::from_reading(i as f64 * 0.5));
            }
            black_box(acc.finish(AggregateOp::Avg))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        event_queue_churn,
        event_queue_churn_with_cancel,
        timer_wheel_push_pop,
        timer_wheel_cancel_churn,
        mac_timer_arm_disarm_churn,
        batch_drain,
        channel_start_end_tx,
        channel_end_tx_vectorised,
        safe_sleep_decide,
        shaper_round_trip,
        channel_collision_storm,
        gilbert_elliott_step,
        tree_construction,
        link_quality_ewma,
        tree_reparent,
        aggregation_merge,
}
criterion_main!(benches);
