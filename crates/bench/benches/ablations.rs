//! Ablation benchmarks for the design choices called out in DESIGN.md §6.
//!
//! These compare protocol *variants*, not code speed — the interesting
//! output is the metric printed by each variant (duty cycle / latency),
//! with wall-clock as a secondary signal. Run with
//! `cargo bench --bench ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use essat_baselines::span::{SpanBackbone, SpanElection};
use essat_net::radio::RadioParams;
use essat_net::topology::Topology;
use essat_query::tree::RoutingTree;
use essat_sim::rng::SimRng;
use essat_sim::time::SimDuration;
use essat_wsn::config::{ExperimentConfig, Protocol, SetupMode, WorkloadSpec};
use essat_wsn::runner;

fn quick(protocol: Protocol, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(protocol, WorkloadSpec::paper(2.0), seed);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

/// Break-even gating on vs off: Safe Sleep with the MICA2 2.5 ms
/// break-even versus an idealised zero-cost radio. The gap quantifies
/// what §5.3 calls "the importance of reducing the wake-up time".
fn ablation_break_even_gating(c: &mut Criterion) {
    let gated = quick(Protocol::DtsSs, 11);
    let ideal = quick(Protocol::DtsSs, 11).with_radio(RadioParams::instant());
    c.bench_function("ablation/break_even_mica2_vs_instant", |b| {
        b.iter(|| {
            let g = runner::run_one(&gated).avg_duty_cycle_pct();
            let i = runner::run_one(&ideal).avg_duty_cycle_pct();
            black_box(g - i)
        })
    });
}

/// STS reception granularity (DESIGN.md §6): the paper's per-rank
/// closed form `r(k) = φ + k·P + l·(d−1)` versus the per-child
/// "reception = child's send slot" invariant. Per-child wakes parents
/// later for shallow children, so it should never cost more energy.
fn ablation_sts_reception_granularity(c: &mut Criterion) {
    let per_child = quick(Protocol::StsSs, 12);
    let per_rank = {
        let mut cfg = quick(Protocol::StsSs, 12);
        cfg.sts = essat_core::sts::StsConfig {
            per_rank_reception: true,
            ..Default::default()
        };
        cfg
    };
    c.bench_function("ablation/sts_per_child_vs_per_rank", |b| {
        b.iter(|| {
            let pc = runner::run_one(&per_child);
            let pr = runner::run_one(&per_rank);
            black_box((
                pc.avg_duty_cycle_pct() - pr.avg_duty_cycle_pct(),
                pc.avg_latency_s() - pr.avg_latency_s(),
            ))
        })
    });
}

/// STS timeout via the workload deadline D, which scales every slot:
/// D = P vs D = P/2.
fn ablation_sts_deadline(c: &mut Criterion) {
    let loose = {
        let mut cfg = quick(Protocol::StsSs, 12);
        cfg.workload = WorkloadSpec::paper(2.0);
        cfg
    };
    let tight = {
        let mut cfg = quick(Protocol::StsSs, 12);
        cfg.workload = WorkloadSpec::paper(2.0).with_deadline(SimDuration::from_millis(250));
        cfg
    };
    c.bench_function("ablation/sts_deadline_P_vs_P_half", |b| {
        b.iter(|| {
            let l = runner::run_one(&loose);
            let t = runner::run_one(&tight);
            black_box((
                l.avg_latency_s() - t.avg_latency_s(),
                l.avg_duty_cycle_pct() - t.avg_duty_cycle_pct(),
            ))
        })
    });
}

/// SPAN backbone selection: the paper's tree-non-leaf variant versus the
/// full distributed election. Compares backbone sizes (the energy
/// driver).
fn ablation_span_backbone(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(13);
    let topo = Topology::random_paper(&mut rng);
    let root = topo.closest_to_center();
    let tree = RoutingTree::build(&topo, root, Some(300.0));
    c.bench_function("ablation/span_tree_vs_elected_backbone", |b| {
        b.iter(|| {
            let tree_bb = SpanBackbone::from_tree(&tree, topo.node_count());
            let elected = SpanElection::elect(&topo, &mut SimRng::seed_from_u64(14));
            black_box((tree_bb.coordinator_count(), elected.coordinator_count()))
        })
    });
}

/// Query dissemination: idealized pre-registration vs in-band flooding
/// during a setup slot (§4.1). The flooded variant pays the setup-slot
/// energy but exercises the full dissemination path.
fn ablation_setup_mode(c: &mut Criterion) {
    let ideal = quick(Protocol::DtsSs, 15);
    let flooded = {
        let mut cfg = quick(Protocol::DtsSs, 15);
        cfg.setup_mode = SetupMode::Flooded;
        cfg
    };
    c.bench_function("ablation/setup_idealized_vs_flooded", |b| {
        b.iter(|| {
            let i = runner::run_one(&ideal);
            let f = runner::run_one(&flooded);
            black_box((i.delivery_ratio(), f.delivery_ratio()))
        })
    });
}

/// Loss injection: DTS resynchronisation cost under 5% random loss.
fn ablation_loss_resync(c: &mut Criterion) {
    let clean = quick(Protocol::DtsSs, 16);
    let lossy = quick(Protocol::DtsSs, 16).with_drop_probability(0.05);
    c.bench_function("ablation/dts_clean_vs_5pct_loss", |b| {
        b.iter(|| {
            let cl = runner::run_one(&clean);
            let lo = runner::run_one(&lossy);
            black_box((
                lo.phase_requests as f64 - cl.phase_requests as f64,
                cl.delivery_ratio() - lo.delivery_ratio(),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        ablation_break_even_gating,
        ablation_sts_reception_granularity,
        ablation_sts_deadline,
        ablation_span_backbone,
        ablation_setup_mode,
        ablation_loss_resync,
}
criterion_main!(benches);
