//! Criterion benchmark crate for the ESSAT reproduction: one bench
//! per paper figure (`benches/figures.rs`), substrate micro-benchmarks
//! (`benches/micro.rs`), and design ablations (`benches/ablations.rs`).
//! The crate itself exports nothing; everything lives in the bench
//! targets.
