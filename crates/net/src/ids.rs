//! Node identity.

use std::fmt;

/// Identifier of a sensor node, dense in `0..n` for an `n`-node network.
///
/// Node ids double as indices into per-node vectors throughout the
/// workspace (`positions[node.index()]`), which keeps hot paths
/// allocation- and hash-free.
///
/// # Examples
///
/// ```
/// use essat_net::ids::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterator over the ids `0..n`.
    pub fn all(n: u32) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let id = NodeId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.as_u32(), 17);
        assert_eq!(NodeId::from(17u32), id);
    }

    #[test]
    fn all_enumerates_densely() {
        let ids: Vec<usize> = NodeId::all(4).map(NodeId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
