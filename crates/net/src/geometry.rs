//! Plane geometry for node placement.
//!
//! The paper deploys 80 nodes uniformly at random in a 500 × 500 m² area
//! with a 125 m communication range; these types express that setup.

use std::fmt;

use essat_sim::rng::SimRng;

/// A point in the deployment plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    ///
    /// # Examples
    ///
    /// ```
    /// use essat_net::geometry::Position;
    /// let a = Position::new(0.0, 0.0);
    /// let b = Position::new(3.0, 4.0);
    /// assert_eq!(a.distance_to(b), 5.0);
    /// ```
    pub fn distance_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance — avoids the square root in range tests.
    pub fn distance_sq(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A rectangular deployment area anchored at the origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Area {
    width: f64,
    height: f64,
}

impl Area {
    /// Creates an area of the given dimensions in metres.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "area dimensions must be positive, got {width} x {height}"
        );
        Area { width, height }
    }

    /// The paper's 500 × 500 m² deployment area.
    pub fn paper() -> Self {
        Area::new(500.0, 500.0)
    }

    /// Width in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height in metres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The centre point of the area.
    pub fn center(&self) -> Position {
        Position::new(self.width / 2.0, self.height / 2.0)
    }

    /// Uniformly random position inside the area.
    pub fn random_position(&self, rng: &mut SimRng) -> Position {
        Position::new(
            rng.range_f64(0.0, self.width),
            rng.range_f64(0.0, self.height),
        )
    }

    /// True if `p` lies inside the area (boundary inclusive).
    pub fn contains(&self, p: Position) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(-4.0, 7.5);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(a), 0.0);
        assert!((a.distance_sq(b) - a.distance_to(b).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn area_center_and_contains() {
        let area = Area::paper();
        assert_eq!(area.center(), Position::new(250.0, 250.0));
        assert!(area.contains(Position::new(0.0, 500.0)));
        assert!(!area.contains(Position::new(-0.1, 10.0)));
        assert!(!area.contains(Position::new(10.0, 500.1)));
    }

    #[test]
    fn random_positions_stay_inside() {
        let area = Area::new(100.0, 30.0);
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..500 {
            assert!(area.contains(area.random_position(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn degenerate_area_rejected() {
        let _ = Area::new(0.0, 10.0);
    }
}
