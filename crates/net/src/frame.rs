//! Frames on the air.
//!
//! The MAC and channel are generic over the upper-layer payload `P`, so
//! the protocol crates can carry data reports, query floods, ATIM
//! announcements, or phase-update requests without the substrate knowing
//! about them. The paper encapsulates each data report in a single
//! 52-byte packet at 1 Mbps (416 µs airtime); sizes here are explicit so
//! airtime is computed, never assumed.

use std::fmt;

use essat_sim::time::SimDuration;

use crate::ids::NodeId;

/// The paper's data-report packet size in bytes.
pub const PAPER_REPORT_BYTES: u32 = 52;
/// 802.11 ACK frame size in bytes.
pub const ACK_BYTES: u32 = 14;

/// Globally unique frame identifier (unique per simulation run), used for
/// tracing and collision bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    /// Creates a frame id from a raw counter value.
    pub const fn new(v: u64) -> Self {
        FrameId(v)
    }

    /// The raw counter value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Link-layer destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dest {
    /// One receiver; the MAC will expect an ACK and retransmit.
    Unicast(NodeId),
    /// All neighbours; fire-and-forget.
    Broadcast,
}

impl Dest {
    /// True if `node` should accept a frame with this destination.
    pub fn accepts(self, node: NodeId) -> bool {
        match self {
            Dest::Unicast(d) => d == node,
            Dest::Broadcast => true,
        }
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Unicast(n) => write!(f, "{n}"),
            Dest::Broadcast => f.write_str("*"),
        }
    }
}

/// Link-layer frame class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Upper-layer data (reports, floods, protocol control).
    Data,
    /// MAC-level acknowledgement of the identified data frame.
    Ack(FrameId),
}

/// A frame as handed to / delivered by the MAC.
///
/// `Frame<P>` is `Copy` whenever the payload is — the simulator relies
/// on this to fan one frame out to many receivers without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame<P> {
    /// Unique id for tracing.
    pub id: FrameId,
    /// Transmitting node.
    pub src: NodeId,
    /// Link-layer destination.
    pub dest: Dest,
    /// Frame class.
    pub kind: FrameKind,
    /// Total size on the air, in bytes.
    pub bytes: u32,
    /// Upper-layer payload (unused for ACKs).
    pub payload: P,
}

impl<P> Frame<P> {
    /// Airtime of this frame at `bitrate_bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate_bps` is zero.
    pub fn airtime(&self, bitrate_bps: u64) -> SimDuration {
        airtime(self.bytes, bitrate_bps)
    }
}

/// Airtime of `bytes` at `bitrate_bps`.
///
/// # Panics
///
/// Panics if `bitrate_bps` is zero.
///
/// # Examples
///
/// ```
/// use essat_net::frame::airtime;
/// use essat_sim::time::SimDuration;
///
/// // The paper's numbers: 52 bytes at 1 Mbps = 416 us.
/// assert_eq!(airtime(52, 1_000_000), SimDuration::from_micros(416));
/// ```
pub fn airtime(bytes: u32, bitrate_bps: u64) -> SimDuration {
    assert!(bitrate_bps > 0, "bitrate must be positive");
    let bits = bytes as u64 * 8;
    SimDuration::from_nanos(bits * 1_000_000_000 / bitrate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_airtime() {
        assert_eq!(
            airtime(PAPER_REPORT_BYTES, 1_000_000),
            SimDuration::from_micros(416)
        );
        assert_eq!(airtime(ACK_BYTES, 1_000_000), SimDuration::from_micros(112));
    }

    #[test]
    fn frame_airtime_method() {
        let f = Frame {
            id: FrameId::new(0),
            src: NodeId::new(1),
            dest: Dest::Broadcast,
            kind: FrameKind::Data,
            bytes: 100,
            payload: (),
        };
        assert_eq!(f.airtime(1_000_000), SimDuration::from_micros(800));
    }

    #[test]
    fn dest_accepts() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        assert!(Dest::Unicast(a).accepts(a));
        assert!(!Dest::Unicast(a).accepts(b));
        assert!(Dest::Broadcast.accepts(a));
        assert!(Dest::Broadcast.accepts(b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dest::Broadcast.to_string(), "*");
        assert_eq!(Dest::Unicast(NodeId::new(4)).to_string(), "n4");
        assert_eq!(FrameId::new(9).to_string(), "f9");
    }
}
