//! # essat-net — the wireless substrate
//!
//! Everything below the power-management layer in the ESSAT reproduction:
//!
//! * [`ids`] / [`geometry`] / [`topology`] — node identity, plane
//!   geometry, and the unit-disk connectivity graph (the paper's 80 nodes
//!   in 500 × 500 m² with a 125 m range).
//! * [`radio`] — the four-state radio power model with transition times,
//!   break-even-time computation (Benini et al.), duty-cycle and energy
//!   accounting, and sleep-interval capture.
//! * [`frame`] — link-layer frames, generic over the upper-layer payload.
//! * [`channel`] — the shared medium: unit-disk propagation, carrier
//!   sense, overlap collisions, half-duplex, and loss injection.
//! * [`mac`] — CSMA/CA (802.11-DCF-style) with DIFS, binary-exponential
//!   backoff, SIFS-delayed ACKs, retries, and duplicate suppression,
//!   implemented as a pure action-emitting state machine.
//!
//! The channel and MAC are deliberately engine-free: the `essat-wsn`
//! crate wires their actions to the discrete-event engine, which keeps
//! every state machine unit-testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod frame;
pub mod geometry;
pub mod ids;
pub mod mac;
pub mod radio;
pub mod topology;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::channel::{Channel, ChannelStats, TxEnd, TxId, TxStart};
    pub use crate::frame::{airtime, Dest, Frame, FrameId, FrameKind};
    pub use crate::geometry::{Area, Position};
    pub use crate::ids::NodeId;
    pub use crate::mac::{Mac, MacAction, MacParams, MacStats, MacTimer};
    pub use crate::radio::{Radio, RadioParams, RadioState, SleepInterval, TransitionOutcome};
    pub use crate::topology::Topology;
}
