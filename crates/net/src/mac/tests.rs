//! Unit tests for the CSMA/CA state machine (split out of
//! `mod.rs` to keep it under the module-size lint).

use super::*;

type TMac = Mac<u32>;

fn mk(node: u32) -> TMac {
    Mac::new(
        NodeId::new(node),
        MacParams::paper(),
        SimRng::seed_from_u64(node as u64 + 1),
    )
}

fn data(mac: &mut TMac, dest: Dest, payload: u32) -> Frame<u32> {
    Frame {
        id: mac.alloc_frame_id(),
        src: mac.node(),
        dest,
        kind: FrameKind::Data,
        bytes: 52,
        payload,
    }
}

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

/// Drive one SetTimer action to expiry, returning follow-up actions.
fn fire(mac: &mut TMac, actions: &[MacAction<u32>], now: SimTime) -> Vec<MacAction<u32>> {
    for a in actions {
        if let MacAction::SetTimer { kind, .. } = a {
            return mac.timer_fired(*kind, now);
        }
    }
    panic!("no timer among actions: {actions:?}");
}

fn has_tx(actions: &[MacAction<u32>]) -> bool {
    actions
        .iter()
        .any(|a| matches!(a, MacAction::StartTx { .. }))
}

#[test]
fn fresh_frame_idle_medium_txs_after_difs() {
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Broadcast, 9);
    let a1 = mac.enqueue(f, t(0));
    assert!(matches!(
        a1[0],
        MacAction::SetTimer {
            kind: MacTimer::Difs,
            ..
        }
    ));
    let a2 = fire(&mut mac, &a1, t(50));
    assert!(has_tx(&a2), "no backoff for a fresh frame on idle medium");
}

#[test]
fn broadcast_completes_without_ack() {
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Broadcast, 1);
    let a1 = mac.enqueue(f, t(0));
    let a2 = fire(&mut mac, &a1, t(50));
    assert!(has_tx(&a2));
    let a3 = mac.tx_ended(t(466));
    assert!(a3
        .iter()
        .any(|a| matches!(a, MacAction::TxDone { frame, attempts: 1 } if frame.id == f.id)));
    assert!(mac.is_quiescent());
}

#[test]
fn unicast_waits_for_ack_then_succeeds() {
    let mut sender = mk(0);
    let mut receiver = mk(1);
    let f = data(&mut sender, Dest::Unicast(NodeId::new(1)), 7);
    let a1 = sender.enqueue(f, t(0));
    let a2 = fire(&mut sender, &a1, t(50));
    assert!(has_tx(&a2));
    // Frame lands at receiver.
    let a3 = receiver.frame_arrived(f, t(466));
    assert!(a3
        .iter()
        .any(|a| matches!(a, MacAction::Deliver { frame } if frame.payload == 7)));
    // Receiver schedules the ACK after SIFS...
    let a4 = fire(&mut receiver, &a3, t(476));
    let ack = a4
        .iter()
        .find_map(|a| match a {
            MacAction::StartTx { frame, .. } => Some(*frame),
            _ => None,
        })
        .expect("ack tx");
    assert_eq!(ack.kind, FrameKind::Ack(f.id));
    // Sender finished its data tx, is waiting for the ACK...
    let _ = sender.tx_ended(t(466));
    let a5 = sender.frame_arrived(ack, t(588));
    assert!(a5
        .iter()
        .any(|a| matches!(a, MacAction::TxDone { attempts: 1, .. })));
    let _ = receiver.tx_ended(t(588));
    assert!(sender.is_quiescent());
    assert!(receiver.is_quiescent());
    assert_eq!(sender.stats().delivered, 1);
    assert_eq!(receiver.stats().ack_tx, 1);
}

#[test]
fn ack_timeout_triggers_retry_with_wider_cw() {
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Unicast(NodeId::new(1)), 7);
    let a1 = mac.enqueue(f, t(0));
    let a2 = fire(&mut mac, &a1, t(50));
    assert!(has_tx(&a2));
    let a3 = mac.tx_ended(t(466));
    // AckTimeout armed.
    let a4 = fire(&mut mac, &a3, t(700));
    // Retry: DIFS timer armed again (medium idle).
    assert!(a4.iter().any(|a| matches!(
        a,
        MacAction::SetTimer {
            kind: MacTimer::Difs,
            ..
        }
    )));
    assert_eq!(mac.stats().retries, 1);
    assert_eq!(mac.cw, 64, "contention window doubled");
    // Retry uses a backoff (cw_pending) — fire DIFS, expect either tx
    // (slot 0) or a backoff timer.
    let a5 = fire(&mut mac, &a4, t(750));
    let tx_or_backoff = has_tx(&a5)
        || a5.iter().any(|a| {
            matches!(
                a,
                MacAction::SetTimer {
                    kind: MacTimer::Backoff,
                    ..
                }
            )
        });
    assert!(tx_or_backoff);
}

#[test]
fn frame_dropped_after_retry_limit() {
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Unicast(NodeId::new(1)), 7);
    let mut actions = mac.enqueue(f, t(0));
    let mut now = t(0);
    let mut failed = false;
    // Walk the machine through enough retries to exhaust the limit.
    for _ in 0..200 {
        now += SimDuration::from_micros(5000);
        let next: Vec<MacAction<u32>> = match actions
            .iter()
            .find(|a| matches!(a, MacAction::SetTimer { .. }))
        {
            Some(MacAction::SetTimer { kind, .. }) => mac.timer_fired(*kind, now),
            _ => {
                if actions
                    .iter()
                    .any(|a| matches!(a, MacAction::StartTx { .. }))
                {
                    mac.tx_ended(now)
                } else {
                    break;
                }
            }
        };
        if next
            .iter()
            .any(|a| matches!(a, MacAction::TxFailed { attempts, .. } if *attempts == 7))
        {
            failed = true;
            break;
        }
        actions = next;
    }
    assert!(failed, "frame should fail after the retry limit");
    assert!(mac.is_quiescent());
    assert_eq!(mac.stats().failed, 1);
}

#[test]
fn busy_medium_defers_then_backoff() {
    let mut mac = mk(0);
    mac.carrier_busy(t(0));
    let f = data(&mut mac, Dest::Broadcast, 1);
    let a1 = mac.enqueue(f, t(1));
    assert!(a1.is_empty(), "no access while busy");
    let a2 = mac.carrier_idle(t(1000));
    // DIFS first...
    assert!(a2.iter().any(|a| matches!(
        a,
        MacAction::SetTimer {
            kind: MacTimer::Difs,
            ..
        }
    )));
    let a3 = fire(&mut mac, &a2, t(1050));
    // ...then a contention backoff (cw_pending was set by the busy
    // medium) or an immediate tx if the draw was zero slots.
    assert!(
        has_tx(&a3)
            || a3.iter().any(|a| matches!(
                a,
                MacAction::SetTimer {
                    kind: MacTimer::Backoff,
                    ..
                }
            ))
    );
}

#[test]
fn backoff_freezes_and_resumes() {
    // Force a known backoff by trying seeds until a nonzero draw.
    let mut mac = mk(3);
    mac.carrier_busy(t(0));
    let f = data(&mut mac, Dest::Broadcast, 1);
    let _ = mac.enqueue(f, t(1));
    let a2 = mac.carrier_idle(t(100));
    let a3 = fire(&mut mac, &a2, t(150));
    let backoff = a3.iter().find_map(|a| match a {
        MacAction::SetTimer {
            kind: MacTimer::Backoff,
            after,
            ..
        } => Some(*after),
        _ => None,
    });
    let Some(backoff) = backoff else {
        // Zero-slot draw: transmission already started; nothing to
        // freeze. The scenario is covered by other seeds.
        assert!(has_tx(&a3));
        return;
    };
    // Freeze partway through.
    mac.carrier_busy(t(160));
    let rem = mac.backoff_remaining.expect("frozen remainder");
    assert!(rem <= backoff);
    assert!(
        rem.as_nanos().is_multiple_of(mac.params().slot.as_nanos()),
        "whole slots"
    );
    // Idle again: DIFS, then the remainder (not a fresh draw).
    let a4 = mac.carrier_idle(t(5000));
    let a5 = fire(&mut mac, &a4, t(5050));
    let resumed = a5.iter().find_map(|a| match a {
        MacAction::SetTimer {
            kind: MacTimer::Backoff,
            after,
            ..
        } => Some(*after),
        _ => None,
    });
    assert_eq!(resumed, Some(rem));
}

#[test]
fn duplicate_data_is_reacked_but_delivered_once() {
    let mut rx = mk(1);
    let mut sender = mk(0);
    let f = data(&mut sender, Dest::Unicast(NodeId::new(1)), 42);
    let a1 = rx.frame_arrived(f, t(0));
    assert!(a1.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
    // Drive the first ACK out.
    let a2 = fire(&mut rx, &a1, t(10));
    assert!(has_tx(&a2));
    let _ = rx.tx_ended(t(122));
    // Retransmission of the same frame.
    let a3 = rx.frame_arrived(f, t(1000));
    assert!(
        !a3.iter().any(|a| matches!(a, MacAction::Deliver { .. })),
        "duplicate must not be delivered"
    );
    // But it is re-ACKed.
    let a4 = fire(&mut rx, &a3, t(1010));
    assert!(has_tx(&a4));
    assert_eq!(rx.stats().duplicates, 1);
}

#[test]
fn overheard_unicast_not_delivered() {
    let mut mac = mk(2);
    let mut sender = mk(0);
    let f = data(&mut sender, Dest::Unicast(NodeId::new(1)), 5);
    let a = mac.frame_arrived(f, t(0));
    assert!(a.is_empty());
}

#[test]
fn suspend_retains_queue_and_resumes() {
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Broadcast, 1);
    let _ = mac.enqueue(f, t(0));
    mac.radio_slept(t(10));
    assert!(!mac.is_quiescent(), "frame still queued");
    assert_eq!(mac.queue_len(), 1);
    let a = mac.radio_woke(t(1000), false);
    assert!(a.iter().any(|a| matches!(
        a,
        MacAction::SetTimer {
            kind: MacTimer::Difs,
            ..
        }
    )));
}

#[test]
fn disarm_surrenders_handle_for_cancellation() {
    use essat_sim::queue::EventQueue;
    let mut q: EventQueue<()> = EventQueue::new();
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Broadcast, 1);
    let a1 = mac.enqueue(f, t(0)); // arms DIFS
    let MacAction::SetTimer { kind, after } = a1[0] else {
        panic!("expected timer");
    };
    // The executor schedules the expiry and reports the handle back.
    let id = q.push(t(0) + after, ());
    assert_eq!(mac.timer_scheduled(kind, id), None);
    assert_eq!(mac.timer_event(kind), Some(id));
    // Busy disarms the DIFS: the MAC surrenders the handle so the
    // expiry event is truly cancelled, not fired stale.
    mac.carrier_busy(t(10));
    let surrendered = mac.pop_cancelled().expect("disarm surrenders the handle");
    assert_eq!(surrendered, id);
    assert!(mac.pop_cancelled().is_none());
    assert!(q.cancel(surrendered));
    assert!(q.is_empty());
    // Defensive: a late expiry (protocol violated) is still a no-op.
    assert!(mac.timer_fired(kind, t(50)).is_empty());
}

#[test]
fn arm_superseded_before_scheduling_returns_own_handle() {
    use essat_sim::queue::EventQueue;
    let mut q: EventQueue<()> = EventQueue::new();
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Broadcast, 1);
    let a1 = mac.enqueue(f, t(0));
    let MacAction::SetTimer { kind, after } = a1[0] else {
        panic!("expected timer");
    };
    // The medium goes busy (disarming the DIFS) before the executor
    // schedules the arm's expiry event: reporting the fresh handle back
    // returns it immediately for cancellation.
    mac.carrier_busy(t(0));
    let id = q.push(t(0) + after, ());
    assert_eq!(mac.timer_scheduled(kind, id), Some(id));
    assert_eq!(mac.timer_event(kind), None);
}

#[test]
fn rearm_displaces_previous_handle() {
    use essat_sim::queue::EventQueue;
    let mut q: EventQueue<()> = EventQueue::new();
    let mut mac = mk(0);
    let f = data(&mut mac, Dest::Broadcast, 1);
    let a1 = mac.enqueue(f, t(0));
    let MacAction::SetTimer { kind, after } = a1[0] else {
        panic!("expected timer");
    };
    let first = q.push(t(0) + after, ());
    assert_eq!(mac.timer_scheduled(kind, first), None);
    // Busy then idle re-arms the DIFS: the disarm surrendered `first`,
    // and the new arm's handle takes its place cleanly.
    mac.carrier_busy(t(10));
    assert_eq!(mac.pop_cancelled(), Some(first));
    let a2 = mac.carrier_idle(t(100));
    let MacAction::SetTimer { kind, after } = a2[0] else {
        panic!("expected re-armed timer");
    };
    let second = q.push(t(100) + after, ());
    assert_eq!(mac.timer_scheduled(kind, second), None);
    assert_eq!(mac.timer_event(kind), Some(second));
    assert!(mac.pop_cancelled().is_none());
}

#[test]
fn quiescence_reflects_pending_work() {
    let mut mac = mk(0);
    assert!(mac.is_quiescent());
    let f = data(&mut mac, Dest::Broadcast, 1);
    let _ = mac.enqueue(f, t(0));
    assert!(!mac.is_quiescent());
}

#[test]
fn alloc_frame_ids_unique_across_nodes() {
    let mut a = mk(0);
    let mut b = mk(1);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..100 {
        assert!(seen.insert(a.alloc_frame_id()));
        assert!(seen.insert(b.alloc_frame_id()));
    }
}

#[test]
fn ack_note_rides_on_next_ack_and_is_delivered() {
    let mut rx = mk(1);
    let mut sender = mk(0);
    let f = data(&mut sender, Dest::Unicast(NodeId::new(1)), 5);
    // Receiver sees the data frame; upper layer primes a note during
    // the Deliver (before the SIFS-delayed ACK is built).
    let a1 = rx.frame_arrived(f, t(0));
    assert!(a1.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
    rx.prime_ack_note(NodeId::new(0), 77u32);
    let a2 = fire(&mut rx, &a1, t(10));
    let ack = a2
        .iter()
        .find_map(|a| match a {
            MacAction::StartTx { frame, .. } => Some(*frame),
            _ => None,
        })
        .expect("ack goes out");
    assert_eq!(ack.kind, FrameKind::Ack(f.id));
    assert_eq!(ack.payload, 77, "note rides on the ACK");
    let _ = rx.tx_ended(t(122)); // the ACK leaves the air
                                 // The original sender (waiting for this ACK) both completes its
                                 // frame AND sees the note delivered upward.
    let e1 = sender.enqueue(f, t(100)); // reconstruct WaitAck state
    let e2 = fire(&mut sender, &e1, t(150));
    assert!(has_tx(&e2));
    let _ = sender.tx_ended(t(566));
    let out = sender.frame_arrived(ack, t(700));
    assert!(out.iter().any(|a| matches!(a, MacAction::TxDone { .. })));
    assert!(
        out.iter()
            .any(|a| matches!(a, MacAction::Deliver { frame } if frame.payload == 77)),
        "non-default ACK payloads are delivered to the upper layer"
    );
    // A second ACK to the same peer carries no stale note.
    let f2 = Frame {
        id: FrameId::new((1u64 << 40) | 999),
        src: NodeId::new(0),
        dest: Dest::Unicast(NodeId::new(1)),
        kind: FrameKind::Data,
        bytes: 52,
        payload: 1u32,
    };
    let b1 = rx.frame_arrived(f2, t(2000));
    let b2 = fire(&mut rx, &b1, t(2010));
    let ack2 = b2
        .iter()
        .find_map(|a| match a {
            MacAction::StartTx { frame, .. } => Some(*frame),
            _ => None,
        })
        .expect("second ack");
    assert_eq!(ack2.payload, 0, "note is one-shot");
}

#[test]
#[should_panic(expected = "data frames")]
fn enqueue_rejects_acks() {
    let mut mac = mk(0);
    let ack = Frame {
        id: FrameId::new(1),
        src: NodeId::new(0),
        dest: Dest::Unicast(NodeId::new(1)),
        kind: FrameKind::Ack(FrameId::new(0)),
        bytes: ACK_BYTES,
        payload: 0u32,
    };
    let _ = mac.enqueue(ack, t(0));
}
