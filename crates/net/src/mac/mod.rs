//! CSMA/CA medium-access control (802.11-DCF-style), as a pure state
//! machine.
//!
//! The paper layers ESSAT "between the MAC protocol and the query
//! service" and evaluates on IEEE 802.11b at 1 Mbps; this module
//! reproduces the behaviours that matter for those results:
//!
//! * carrier sensing with **DIFS** deferral;
//! * slotted **binary-exponential backoff** (CW 32 → 1024), frozen while
//!   the medium is busy and resumed after the next idle DIFS;
//! * immediate transmission for a fresh frame that finds the medium idle
//!   for a full DIFS (no gratuitous backoff at low load);
//! * unicast frames acknowledged **SIFS** later, retransmitted up to a
//!   retry limit on ACK timeout — the source of the multi-hop delay
//!   *jitter* that motivates the paper's traffic shapers;
//! * broadcast frames sent without ACKs (query floods);
//! * duplicate suppression at the receiver (retransmitted frames are
//!   re-ACKed but delivered once);
//! * suspension while the node's radio is off.
//!
//! The state machine never touches the engine: every input returns a list
//! of [`MacAction`]s (timers to arm, transmissions to start, frames to
//! deliver up) that the simulator executes. Timers are *truly cancelled*:
//! the MAC keeps the live [`EventId`] of every armed timer (reported back
//! by the executor via [`Mac::timer_scheduled`] after it schedules a
//! [`MacAction::SetTimer`]) and, on disarm or re-arm, surrenders the
//! superseded handle through [`Mac::pop_cancelled`] for the executor to
//! `cancel` on its queue — a disarmed timer never dispatches at all,
//! instead of firing stale and being filtered by a generation check.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use essat_sim::queue::EventId;
use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

use crate::frame::{airtime, Dest, Frame, FrameId, FrameKind, ACK_BYTES};
use crate::ids::NodeId;

/// MAC timing and contention parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacParams {
    /// Link bitrate in bits per second (paper: 1 Mbps).
    pub bitrate_bps: u64,
    /// Backoff slot time.
    pub slot: SimDuration,
    /// Short inter-frame space (data → ACK gap).
    pub sifs: SimDuration,
    /// Distributed inter-frame space (idle time before access).
    pub difs: SimDuration,
    /// Initial contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Maximum transmission attempts for a unicast frame.
    pub retry_limit: u32,
}

impl MacParams {
    /// The paper's setup: 802.11b-style timing at 1 Mbps.
    pub fn paper() -> Self {
        MacParams {
            bitrate_bps: 1_000_000,
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            cw_min: 32,
            cw_max: 1024,
            retry_limit: 7,
        }
    }

    /// Airtime of an ACK frame.
    pub fn ack_airtime(&self) -> SimDuration {
        airtime(ACK_BYTES, self.bitrate_bps)
    }

    /// How long after a unicast transmission ends the sender waits for an
    /// ACK before declaring a timeout.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ack_airtime() + self.slot * 2
    }
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams::paper()
    }
}

/// Timer classes the MAC arms. The simulator routes expiry back via
/// [`Mac::timer_fired`]; at most one timer of each kind is armed at a
/// time, and the MAC owns its cancellation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacTimer {
    /// Idle-medium wait before transmission or backoff.
    Difs,
    /// Backoff countdown completion.
    Backoff,
    /// ACK wait after a unicast transmission.
    AckTimeout,
    /// SIFS delay before sending a pending ACK.
    AckDelay,
}

impl MacTimer {
    const COUNT: usize = 4;
    fn idx(self) -> usize {
        match self {
            MacTimer::Difs => 0,
            MacTimer::Backoff => 1,
            MacTimer::AckTimeout => 2,
            MacTimer::AckDelay => 3,
        }
    }
}

impl fmt::Display for MacTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MacTimer::Difs => "difs",
            MacTimer::Backoff => "backoff",
            MacTimer::AckTimeout => "ack-timeout",
            MacTimer::AckDelay => "ack-delay",
        };
        f.write_str(s)
    }
}

/// Instructions emitted by the MAC for the simulator to execute.
#[derive(Debug, Clone, PartialEq)]
pub enum MacAction<P> {
    /// Arm (or re-arm) a timer; deliver expiry via [`Mac::timer_fired`].
    /// After scheduling the expiry event, the executor must hand its
    /// [`EventId`] back through [`Mac::timer_scheduled`] (and cancel any
    /// handle that call returns) so disarms can truly cancel it.
    SetTimer {
        /// Which timer.
        kind: MacTimer,
        /// Delay from now.
        after: SimDuration,
    },
    /// Put a frame on the air for `airtime`; call [`Mac::tx_ended`] when
    /// it completes.
    StartTx {
        /// The frame (already containing its final size).
        frame: Frame<P>,
        /// Time on the air.
        airtime: SimDuration,
    },
    /// Hand a received frame to the upper layer.
    Deliver {
        /// The received frame.
        frame: Frame<P>,
    },
    /// A queued unicast frame was acknowledged (or a broadcast finished).
    TxDone {
        /// The completed frame.
        frame: Frame<P>,
        /// Attempts used (1 = no retries).
        attempts: u32,
    },
    /// A unicast frame exhausted its retries and was dropped.
    TxFailed {
        /// The abandoned frame.
        frame: Frame<P>,
        /// Attempts used.
        attempts: u32,
    },
}

/// Per-run MAC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacStats {
    /// Data frames handed to the MAC.
    pub enqueued: u64,
    /// Data transmission attempts (including retries).
    pub data_tx: u64,
    /// ACK frames transmitted.
    pub ack_tx: u64,
    /// Unicast frames completed successfully.
    pub delivered: u64,
    /// Unicast frames dropped after the retry limit.
    pub failed: u64,
    /// Retransmissions performed.
    pub retries: u64,
    /// Duplicate data frames suppressed at the receiver.
    pub duplicates: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Radio off; queue retained.
    Suspended,
    /// Nothing to transmit.
    Idle,
    /// Head frame waiting for the medium to go idle.
    WaitIdle,
    /// DIFS running.
    Difs,
    /// Backoff countdown running.
    Backoff,
    /// Our data frame is on the air.
    TxData,
    /// Waiting for the ACK of our last unicast.
    WaitAck,
    /// Our ACK frame is on the air.
    TxAck,
}

/// What the MAC should go back to after an ACK transmission it injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterAck {
    AccessCycle,
    WaitAck,
    RetryNow,
}

/// The per-node CSMA/CA engine. `P` is the upper-layer payload; ACKs are
/// generated internally with `P::default()`.
#[derive(Debug)]
pub struct Mac<P> {
    node: NodeId,
    params: MacParams,
    rng: SimRng,
    state: State,
    medium_busy: bool,
    queue: VecDeque<Frame<P>>,
    attempts: u32,
    cw: u32,
    cw_pending: bool,
    backoff_remaining: Option<SimDuration>,
    backoff_deadline: SimTime,
    /// Owed ACKs as `(destination, acked frame id)`; the frame itself is
    /// built when the SIFS delay fires so a primed note can ride along.
    pending_acks: VecDeque<(NodeId, FrameId)>,
    /// Upper-layer payloads to piggyback on the next ACK to a node
    /// (the paper's §4.3 phase-update-request-in-ACK mechanism).
    ack_notes: HashMap<NodeId, P>,
    after_ack: AfterAck,
    /// Live expiry-event handle per timer kind, reported by the executor
    /// via [`Mac::timer_scheduled`]. `Some` iff an expiry event for that
    /// kind is (believed) pending in the simulator's queue.
    timer_ev: [Option<EventId>; MacTimer::COUNT],
    timer_armed: [bool; MacTimer::COUNT],
    /// Handles of superseded timers awaiting cancellation by the
    /// executor (drained via [`Mac::pop_cancelled`]).
    cancelled: Vec<EventId>,
    last_seen: HashMap<NodeId, FrameId>,
    next_frame_seq: u64,
    stats: MacStats,
}

impl<P: Clone + Default + PartialEq> Mac<P> {
    /// Creates a MAC for `node`. The node's radio is assumed active; call
    /// [`Mac::radio_slept`] first if it starts asleep.
    pub fn new(node: NodeId, params: MacParams, rng: SimRng) -> Self {
        Mac {
            node,
            params,
            rng,
            state: State::Idle,
            medium_busy: false,
            queue: VecDeque::new(),
            attempts: 0,
            cw: params.cw_min,
            cw_pending: false,
            backoff_remaining: None,
            backoff_deadline: SimTime::ZERO,
            pending_acks: VecDeque::new(),
            ack_notes: HashMap::new(),
            after_ack: AfterAck::AccessCycle,
            timer_ev: [None; MacTimer::COUNT],
            timer_armed: [false; MacTimer::COUNT],
            cancelled: Vec::new(),
            last_seen: HashMap::new(),
            next_frame_seq: 0,
            stats: MacStats::default(),
        }
    }

    /// This MAC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The MAC parameters.
    pub fn params(&self) -> &MacParams {
        &self.params
    }

    /// Run counters.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// Allocates a frame id unique across the simulation (namespaced by
    /// node). Upper layers use this when constructing data frames.
    pub fn alloc_frame_id(&mut self) -> FrameId {
        let id = FrameId::new(((self.node.as_u32() as u64 + 1) << 40) | self.next_frame_seq);
        self.next_frame_seq += 1;
        id
    }

    /// Frames queued but not yet completed (including the one in flight).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if the MAC has no queued frames, no frame in flight, and no
    /// ACKs owed — i.e. the radio may be switched off without aborting a
    /// link-layer exchange in progress.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
            && self.pending_acks.is_empty()
            && matches!(self.state, State::Idle | State::Suspended)
    }

    /// True if the radio may be suspended *right now* without corrupting
    /// a frame on the air or abandoning an ACK exchange mid-flight.
    /// Weaker than [`Mac::is_quiescent`]: queued frames are fine (they
    /// are retained and retried on wake), but an in-progress transmission
    /// or ACK wait is not. Fixed-schedule protocols (SYNC, PSM) use this
    /// at window edges.
    pub fn can_suspend(&self) -> bool {
        !matches!(self.state, State::TxData | State::TxAck | State::WaitAck)
    }

    fn arm(&mut self, kind: MacTimer, after: SimDuration, out: &mut Vec<MacAction<P>>) {
        let i = kind.idx();
        if let Some(old) = self.timer_ev[i].take() {
            self.cancelled.push(old);
        }
        self.timer_armed[i] = true;
        out.push(MacAction::SetTimer { kind, after });
    }

    fn disarm(&mut self, kind: MacTimer) {
        let i = kind.idx();
        self.timer_armed[i] = false;
        if let Some(old) = self.timer_ev[i].take() {
            self.cancelled.push(old);
        }
    }

    /// Reports the expiry event the executor scheduled for the most
    /// recent [`MacAction::SetTimer`] of `kind`. Returns a handle the
    /// executor must cancel: either a displaced older expiry event, or
    /// `id` itself when the arm was already superseded by a disarm later
    /// in the same action batch.
    #[must_use = "a returned handle must be cancelled on the event queue"]
    pub fn timer_scheduled(&mut self, kind: MacTimer, id: EventId) -> Option<EventId> {
        let i = kind.idx();
        if !self.timer_armed[i] {
            return Some(id);
        }
        self.timer_ev[i].replace(id)
    }

    /// Pops one handle awaiting cancellation (a disarmed or superseded
    /// timer's expiry event). The executor drains this after every call
    /// that may disarm timers and cancels each handle on its queue.
    #[inline]
    pub fn pop_cancelled(&mut self) -> Option<EventId> {
        self.cancelled.pop()
    }

    /// Moves every stored timer handle into the pending-cancel buffer
    /// and disarms all timers — used when the node dies or the MAC is
    /// about to be replaced, so no expiry event outlives its owner.
    pub fn cancel_all_timers(&mut self) {
        for i in 0..MacTimer::COUNT {
            self.timer_armed[i] = false;
            if let Some(old) = self.timer_ev[i].take() {
                self.cancelled.push(old);
            }
        }
    }

    /// The stored expiry-event handle for `kind`, if armed. Lets the
    /// executor cross-check (under `sanitize`) that a dispatched timer
    /// expiry is the event the MAC still expects.
    pub fn timer_event(&self, kind: MacTimer) -> Option<EventId> {
        self.timer_ev[kind.idx()]
    }

    /// Hands a data frame to the MAC for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not a data frame or claims a different
    /// source.
    pub fn enqueue(&mut self, frame: Frame<P>, now: SimTime) -> Vec<MacAction<P>> {
        let mut out = Vec::new();
        self.enqueue_into(frame, now, &mut out);
        out
    }

    /// [`Mac::enqueue`], appending actions to a caller-recycled buffer
    /// (the simulator's allocation-free hot path).
    pub fn enqueue_into(&mut self, frame: Frame<P>, now: SimTime, out: &mut Vec<MacAction<P>>) {
        assert_eq!(
            frame.kind,
            FrameKind::Data,
            "upper layers enqueue data frames"
        );
        assert_eq!(frame.src, self.node, "frame source must be this node");
        self.stats.enqueued += 1;
        self.queue.push_back(frame);
        if self.state == State::Idle {
            self.begin_access(now, out);
        }
    }

    /// Starts the medium-access cycle for the head frame. State must
    /// allow it (Idle or re-entry after a completed exchange).
    fn begin_access(&mut self, _now: SimTime, out: &mut Vec<MacAction<P>>) {
        debug_assert!(!self.queue.is_empty());
        self.attempts += 1;
        if self.medium_busy {
            // Found busy: defer, and contend with a backoff afterwards.
            self.cw_pending = true;
            self.state = State::WaitIdle;
        } else {
            self.state = State::Difs;
            self.arm(MacTimer::Difs, self.params.difs, out);
        }
    }

    /// Re-enters the access cycle without counting a new attempt
    /// (used after busy/idle transitions).
    fn resume_access(&mut self, out: &mut Vec<MacAction<P>>) {
        if self.medium_busy {
            self.state = State::WaitIdle;
        } else {
            self.state = State::Difs;
            self.arm(MacTimer::Difs, self.params.difs, out);
        }
    }

    fn start_data_tx(&mut self, out: &mut Vec<MacAction<P>>) {
        let frame = self.queue.front().expect("tx without frame").clone();
        let airtime = frame.airtime(self.params.bitrate_bps);
        self.stats.data_tx += 1;
        self.state = State::TxData;
        out.push(MacAction::StartTx { frame, airtime });
    }

    /// The medium became busy at this node. Never produces actions (the
    /// MAC only freezes timers), so there is no buffer to fill.
    pub fn carrier_busy(&mut self, now: SimTime) {
        self.medium_busy = true;
        match self.state {
            State::Difs => {
                self.disarm(MacTimer::Difs);
                self.state = State::WaitIdle;
                // Interrupted DIFS forces a contention backoff.
                self.cw_pending = true;
            }
            State::Backoff => {
                self.disarm(MacTimer::Backoff);
                let remaining = self.backoff_deadline.saturating_duration_since(now);
                // Round the frozen credit up to whole slots, as the
                // standard decrements per-slot.
                let slot = self.params.slot.as_nanos().max(1);
                let slots = remaining.as_nanos().div_ceil(slot);
                self.backoff_remaining = Some(SimDuration::from_nanos(slots * slot));
                self.state = State::WaitIdle;
            }
            _ => {}
        }
    }

    /// The medium became idle at this node.
    pub fn carrier_idle(&mut self, now: SimTime) -> Vec<MacAction<P>> {
        let mut out = Vec::new();
        self.carrier_idle_into(now, &mut out);
        out
    }

    /// [`Mac::carrier_idle`] into a caller-recycled buffer.
    pub fn carrier_idle_into(&mut self, _now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.medium_busy = false;
        if self.state == State::WaitIdle {
            self.state = State::Difs;
            self.arm(MacTimer::Difs, self.params.difs, out);
        }
    }

    /// A timer armed through [`MacAction::SetTimer`] expired. Disarmed
    /// timers are truly cancelled on the event queue, so every expiry
    /// that arrives here is current.
    pub fn timer_fired(&mut self, kind: MacTimer, now: SimTime) -> Vec<MacAction<P>> {
        let mut out = Vec::new();
        self.timer_fired_into(kind, now, &mut out);
        out
    }

    /// [`Mac::timer_fired`] into a caller-recycled buffer.
    pub fn timer_fired_into(&mut self, kind: MacTimer, now: SimTime, out: &mut Vec<MacAction<P>>) {
        let i = kind.idx();
        if !self.timer_armed[i] {
            // Defensive: with true cancellation a disarmed timer's expiry
            // never dispatches. Tolerated (not asserted) because a node
            // revival swaps in a fresh MAC, and an expiry armed by the
            // old one while the node was dead may still be in flight.
            return;
        }
        self.timer_armed[i] = false;
        self.timer_ev[i] = None; // consumed by this very dispatch
        match kind {
            MacTimer::Difs => {
                debug_assert_eq!(self.state, State::Difs);
                if let Some(rem) = self.backoff_remaining.take() {
                    // Resume a frozen backoff.
                    self.state = State::Backoff;
                    self.backoff_deadline = now + rem;
                    self.arm(MacTimer::Backoff, rem, out);
                } else if self.cw_pending {
                    self.cw_pending = false;
                    let slots = self.rng.below(self.cw as u64);
                    let rem = self.params.slot * slots;
                    if rem.is_zero() {
                        self.start_data_tx(out);
                    } else {
                        self.state = State::Backoff;
                        self.backoff_deadline = now + rem;
                        self.arm(MacTimer::Backoff, rem, out);
                    }
                } else {
                    // Fresh frame, idle DIFS: transmit immediately.
                    self.start_data_tx(out);
                }
            }
            MacTimer::Backoff => {
                debug_assert_eq!(self.state, State::Backoff);
                self.backoff_remaining = None;
                self.start_data_tx(out);
            }
            MacTimer::AckTimeout => match self.state {
                State::WaitAck => {
                    self.handle_retry(now, out);
                }
                State::TxAck => {
                    // Retry once our ACK transmission completes.
                    self.after_ack = AfterAck::RetryNow;
                }
                _ => {}
            },
            MacTimer::AckDelay => {
                // Send the pending ACK regardless of carrier (SIFS
                // priority), unless we are mid-transmission.
                match self.state {
                    State::TxData | State::TxAck => {
                        // Extremely rare; retry the delay shortly after.
                        self.arm(MacTimer::AckDelay, self.params.sifs, out);
                    }
                    _ => {
                        if let Some((dest, of)) = self.pending_acks.pop_front() {
                            self.after_ack = match self.state {
                                State::WaitAck => AfterAck::WaitAck,
                                _ => {
                                    self.freeze_access(now);
                                    AfterAck::AccessCycle
                                }
                            };
                            // Build the ACK now so a freshly primed note
                            // can ride along.
                            let payload = self.ack_notes.remove(&dest).unwrap_or_default();
                            let ack = Frame {
                                id: self.alloc_frame_id(),
                                src: self.node,
                                dest: Dest::Unicast(dest),
                                kind: FrameKind::Ack(of),
                                bytes: ACK_BYTES,
                                payload,
                            };
                            let airtime = ack.airtime(self.params.bitrate_bps);
                            self.stats.ack_tx += 1;
                            self.state = State::TxAck;
                            out.push(MacAction::StartTx {
                                frame: ack,
                                airtime,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Interrupts a Difs/Backoff cycle in preparation for an ACK
    /// transmission, preserving backoff credit.
    fn freeze_access(&mut self, now: SimTime) {
        match self.state {
            State::Difs => {
                self.disarm(MacTimer::Difs);
                self.cw_pending = true;
            }
            State::Backoff => {
                self.disarm(MacTimer::Backoff);
                let remaining = self.backoff_deadline.saturating_duration_since(now);
                let slot = self.params.slot.as_nanos().max(1);
                let slots = remaining.as_nanos().div_ceil(slot);
                self.backoff_remaining = Some(SimDuration::from_nanos(slots * slot));
            }
            _ => {}
        }
    }

    fn handle_retry(&mut self, _now: SimTime, out: &mut Vec<MacAction<P>>) {
        self.stats.retries += 1;
        if self.attempts >= self.params.retry_limit {
            let frame = self.queue.pop_front().expect("retry without frame");
            let attempts = self.attempts;
            self.stats.failed += 1;
            self.reset_contention();
            out.push(MacAction::TxFailed { frame, attempts });
            self.next_frame_or_idle(out);
        } else {
            self.attempts += 1;
            self.cw = (self.cw * 2).min(self.params.cw_max);
            self.cw_pending = true;
            self.resume_access(out);
        }
    }

    fn reset_contention(&mut self) {
        self.attempts = 0;
        self.cw = self.params.cw_min;
        self.cw_pending = false;
        self.backoff_remaining = None;
    }

    fn next_frame_or_idle(&mut self, out: &mut Vec<MacAction<P>>) {
        if self.queue.is_empty() {
            self.state = State::Idle;
        } else {
            // Post-backoff: contend before the next frame.
            self.attempts = 1;
            self.cw_pending = true;
            self.resume_access(out);
        }
    }

    /// Our own transmission (started via [`MacAction::StartTx`]) has left
    /// the air. The simulator calls this when the channel's end event
    /// fires.
    pub fn tx_ended(&mut self, now: SimTime) -> Vec<MacAction<P>> {
        let mut out = Vec::new();
        self.tx_ended_into(now, &mut out);
        out
    }

    /// [`Mac::tx_ended`] into a caller-recycled buffer.
    pub fn tx_ended_into(&mut self, now: SimTime, out: &mut Vec<MacAction<P>>) {
        match self.state {
            State::TxData => {
                let head = self.queue.front().expect("tx ended without frame");
                match head.dest {
                    Dest::Broadcast => {
                        let frame = self.queue.pop_front().expect("checked");
                        let attempts = self.attempts;
                        self.stats.delivered += 1;
                        self.reset_contention();
                        out.push(MacAction::TxDone { frame, attempts });
                        self.next_frame_or_idle(out);
                    }
                    Dest::Unicast(_) => {
                        self.state = State::WaitAck;
                        self.arm(MacTimer::AckTimeout, self.params.ack_timeout(), out);
                    }
                }
            }
            State::TxAck => {
                match self.after_ack {
                    AfterAck::WaitAck => {
                        self.state = State::WaitAck;
                        // AckTimeout may still be armed; nothing to do.
                    }
                    AfterAck::RetryNow => {
                        self.handle_retry(now, out);
                    }
                    AfterAck::AccessCycle => {
                        if self.queue.is_empty() {
                            self.state = State::Idle;
                        } else {
                            self.resume_access(out);
                        }
                    }
                }
                // More ACKs owed? Queue the next one after SIFS.
                if !self.pending_acks.is_empty() {
                    self.arm(MacTimer::AckDelay, self.params.sifs, out);
                }
            }
            s => panic!("tx_ended in state {s:?}"),
        }
    }

    /// A frame arrived intact at this node (clean on the channel and the
    /// radio was active for its whole airtime).
    pub fn frame_arrived(&mut self, frame: Frame<P>, now: SimTime) -> Vec<MacAction<P>> {
        let mut out = Vec::new();
        self.frame_arrived_into(frame, now, &mut out);
        out
    }

    /// [`Mac::frame_arrived`] into a caller-recycled buffer.
    pub fn frame_arrived_into(
        &mut self,
        frame: Frame<P>,
        _now: SimTime,
        out: &mut Vec<MacAction<P>>,
    ) {
        debug_assert_ne!(self.state, State::Suspended, "delivery to sleeping node");
        match frame.kind {
            FrameKind::Ack(of) => {
                if self.state == State::WaitAck {
                    let matches = self
                        .queue
                        .front()
                        .map(|f| f.id == of && frame.src == unicast_dest(f))
                        .unwrap_or(false);
                    if matches {
                        self.disarm(MacTimer::AckTimeout);
                        let done = self.queue.pop_front().expect("checked");
                        let attempts = self.attempts;
                        self.stats.delivered += 1;
                        self.reset_contention();
                        out.push(MacAction::TxDone {
                            frame: done,
                            attempts,
                        });
                        self.next_frame_or_idle(out);
                    }
                }
                // ACKs carrying a piggybacked upper-layer note are also
                // delivered (the §4.3 request-in-ACK path); bare or
                // mismatched ACKs are dropped silently.
                if frame.dest.accepts(self.node) && frame.payload != P::default() {
                    out.push(MacAction::Deliver { frame });
                }
            }
            FrameKind::Data => {
                if !frame.dest.accepts(self.node) {
                    return; // overheard unicast for someone else
                }
                if let Dest::Unicast(_) = frame.dest {
                    // Always (re-)ACK; deliver only the first copy. The
                    // upper layer sees the Deliver *before* the ACK frame
                    // is built, so it can prime a note to ride on it.
                    let dup = self.last_seen.get(&frame.src) == Some(&frame.id);
                    let first_ack = self.pending_acks.is_empty();
                    self.pending_acks.push_back((frame.src, frame.id));
                    if dup {
                        self.stats.duplicates += 1;
                    } else {
                        self.last_seen.insert(frame.src, frame.id);
                        out.push(MacAction::Deliver { frame });
                    }
                    if first_ack && self.state != State::TxAck && self.state != State::TxData {
                        self.arm(MacTimer::AckDelay, self.params.sifs, out);
                    }
                } else {
                    out.push(MacAction::Deliver { frame });
                }
            }
        }
    }

    /// Attaches `note` to the next ACK this MAC sends to `dest`
    /// (replacing any previous unsent note). Used by DTS to ask a child
    /// for a phase update without an extra packet (§4.3).
    pub fn prime_ack_note(&mut self, dest: NodeId, note: P) {
        self.ack_notes.insert(dest, note);
    }

    /// The node's radio went off: freeze everything. Queued frames are
    /// retained; owed ACKs are dropped (the peer will retransmit).
    pub fn radio_slept(&mut self, _now: SimTime) {
        debug_assert!(
            !matches!(self.state, State::TxData | State::TxAck),
            "radio must not sleep mid-transmission"
        );
        for kind in [
            MacTimer::Difs,
            MacTimer::Backoff,
            MacTimer::AckTimeout,
            MacTimer::AckDelay,
        ] {
            self.disarm(kind);
        }
        self.pending_acks.clear();
        self.ack_notes.clear();
        self.backoff_remaining = None;
        if self.state == State::WaitAck {
            // The exchange is abandoned; the frame stays at the head of
            // the queue and will be retried on wake (fresh contention).
            self.cw_pending = true;
        }
        self.state = State::Suspended;
        self.medium_busy = false;
    }

    /// The node's radio is active again. `medium_busy` is the channel's
    /// current carrier state at this node.
    pub fn radio_woke(&mut self, now: SimTime, medium_busy: bool) -> Vec<MacAction<P>> {
        let mut out = Vec::new();
        self.radio_woke_into(now, medium_busy, &mut out);
        out
    }

    /// [`Mac::radio_woke`] into a caller-recycled buffer.
    pub fn radio_woke_into(
        &mut self,
        now: SimTime,
        medium_busy: bool,
        out: &mut Vec<MacAction<P>>,
    ) {
        debug_assert_eq!(
            self.state,
            State::Suspended,
            "radio_woke while not suspended"
        );
        self.medium_busy = medium_busy;
        if self.queue.is_empty() {
            self.state = State::Idle;
        } else {
            self.state = State::Idle;
            self.begin_access(now, out);
        }
    }
}

fn unicast_dest<P>(f: &Frame<P>) -> NodeId {
    match f.dest {
        Dest::Unicast(d) => d,
        Dest::Broadcast => panic!("broadcast frame has no unicast destination"),
    }
}

#[cfg(test)]
mod tests;
