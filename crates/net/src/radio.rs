//! Radio power-state machine, duty-cycle accounting, and break-even time.
//!
//! The paper's Safe Sleep algorithm reasons about three radio facts:
//!
//! * transitions between ON and OFF take time (`t_ON→OFF`, `t_OFF→ON`);
//! * the **break-even time** `t_BE` is the minimum OFF period for which
//!   switching the radio off saves energy with no delay penalty
//!   (Benini et al. \[2\]); when the transition power is no higher than the
//!   active power, `t_BE = t_ON→OFF + t_OFF→ON`;
//! * the scheduler must initiate wake-up `t_OFF→ON` early so the radio is
//!   active exactly when needed.
//!
//! [`Radio`] implements the four-state machine
//! `Active ⇄ TurningOff/TurningOn ⇄ Off` with exact per-state time
//! accounting, energy integration, and capture of every completed sleep
//! interval (the raw data for the paper's Figure 8 histogram).
//!
//! # Examples
//!
//! ```
//! use essat_net::radio::{Radio, RadioParams};
//! use essat_sim::time::{SimDuration, SimTime};
//!
//! let params = RadioParams::mica2();
//! let mut radio = Radio::new(params);
//! let t0 = SimTime::ZERO;
//! let d = radio.begin_sleep(t0).unwrap();
//! radio.finish_transition(t0 + d);
//! assert!(radio.is_off());
//! let t1 = SimTime::from_millis(50);
//! let w = radio.begin_wake(t1).unwrap();
//! radio.finish_transition(t1 + w);
//! assert!(radio.is_active());
//! assert_eq!(radio.sleep_intervals().len(), 1);
//! ```

use std::fmt;

use essat_sim::time::{SimDuration, SimTime};

/// The four power states of the radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioState {
    /// Radio fully on: can transmit, receive, and carrier-sense.
    Active,
    /// Transitioning from `Active` to `Off`; can do nothing.
    TurningOff,
    /// Radio off: consumes (almost) no power, hears nothing.
    Off,
    /// Transitioning from `Off` to `Active`; can do nothing.
    TurningOn,
}

impl fmt::Display for RadioState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RadioState::Active => "active",
            RadioState::TurningOff => "turning-off",
            RadioState::Off => "off",
            RadioState::TurningOn => "turning-on",
        };
        f.write_str(s)
    }
}

/// Static radio characteristics.
///
/// Defaults model the MICA2's CC1000 with the transition numbers the
/// paper quotes (average break-even 2.5 ms, worst case 10 ms \[8\];
/// ZebraNet reports 40 ms \[6\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioParams {
    /// Time to go from `Active` to `Off`.
    pub turn_off: SimDuration,
    /// Time to go from `Off` to `Active`.
    pub turn_on: SimDuration,
    /// Power draw while active (transmit/receive/idle-listen), in watts.
    pub active_power_w: f64,
    /// Power draw while off, in watts.
    pub sleep_power_w: f64,
    /// Power draw during transitions, in watts.
    pub transition_power_w: f64,
    /// Optional override of the computed break-even time (the paper's
    /// Figure 9 sweeps `t_BE` directly).
    pub break_even_override: Option<SimDuration>,
}

impl RadioParams {
    /// MICA2-like radio: 2.5 ms total transition (average reported in
    /// \[8\]), CC1000-class power draws.
    pub fn mica2() -> Self {
        RadioParams {
            turn_off: SimDuration::from_micros(1_250),
            turn_on: SimDuration::from_micros(1_250),
            active_power_w: 0.045,
            sleep_power_w: 0.00009,
            transition_power_w: 0.045,
            break_even_override: None,
        }
    }

    /// MICA2 worst case: 10 ms break-even.
    pub fn mica2_worst() -> Self {
        RadioParams {
            turn_off: SimDuration::from_micros(5_000),
            turn_on: SimDuration::from_micros(5_000),
            ..RadioParams::mica2()
        }
    }

    /// ZebraNet-class radio: 40 ms break-even \[6\].
    pub fn zebranet() -> Self {
        RadioParams {
            turn_off: SimDuration::from_millis(20),
            turn_on: SimDuration::from_millis(20),
            ..RadioParams::mica2()
        }
    }

    /// An idealised radio with instantaneous transitions (`t_BE = 0`),
    /// used for the paper's Figure 8 sleep-interval histogram.
    pub fn instant() -> Self {
        RadioParams {
            turn_off: SimDuration::ZERO,
            turn_on: SimDuration::ZERO,
            ..RadioParams::mica2()
        }
    }

    /// A radio whose total transition time (and hence default break-even
    /// time) equals `t_be`, split evenly between the two transitions.
    pub fn with_break_even(t_be: SimDuration) -> Self {
        let half = SimDuration::from_nanos(t_be.as_nanos() / 2);
        RadioParams {
            turn_off: half,
            turn_on: SimDuration::from_nanos(t_be.as_nanos() - half.as_nanos()),
            ..RadioParams::mica2()
        }
    }

    /// The break-even time `t_BE`: the minimum time the node must remain
    /// free for switching off to incur no energy or delay penalty.
    ///
    /// When the transition power is no higher than the active power this
    /// is simply `t_ON→OFF + t_OFF→ON`; otherwise the extra transition
    /// energy must be amortised against the active/sleep power gap
    /// (Benini et al. \[2\]).
    pub fn break_even(&self) -> SimDuration {
        if let Some(t) = self.break_even_override {
            return t;
        }
        let t_tr = self.turn_off + self.turn_on;
        if self.transition_power_w <= self.active_power_w {
            t_tr
        } else {
            // Energy balance: sleeping for t must beat staying active.
            //   P_tr·t_tr + P_sleep·(t − t_tr) ≤ P_active·t
            // ⇒ t ≥ t_tr·(P_tr − P_sleep) / (P_active − P_sleep)
            let num = self.transition_power_w - self.sleep_power_w;
            let den = self.active_power_w - self.sleep_power_w;
            assert!(den > 0.0, "active power must exceed sleep power");
            SimDuration::from_secs_f64(t_tr.as_secs_f64() * num / den)
        }
    }
}

impl Default for RadioParams {
    fn default() -> Self {
        RadioParams::mica2()
    }
}

/// Error returned when a power-state command is illegal in the current
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateTransitionError {
    state: RadioState,
    requested: &'static str,
}

impl fmt::Display for StateTransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} while radio is {}", self.requested, self.state)
    }
}

impl std::error::Error for StateTransitionError {}

/// A completed sleep interval: the span the radio spent outside `Active`
/// for one off-cycle (transition times included — this matches the
/// scheduler's view of "time bought by sleeping").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepInterval {
    /// When the radio started turning off.
    pub started: SimTime,
    /// When the radio was fully active again.
    pub ended: SimTime,
}

impl SleepInterval {
    /// Length of the interval.
    pub fn length(&self) -> SimDuration {
        self.ended - self.started
    }
}

/// Per-node radio with power-state machine and accounting.
#[derive(Debug, Clone)]
pub struct Radio {
    params: RadioParams,
    state: RadioState,
    state_since: SimTime,
    active_since: Option<SimTime>,
    wake_pending: bool,
    sleep_started: Option<SimTime>,
    sleep_intervals: Vec<SleepInterval>,
    active_ns: u64,
    off_ns: u64,
    transition_ns: u64,
    energy_j: f64,
}

impl Radio {
    /// Creates a radio that starts `Active` at time zero.
    pub fn new(params: RadioParams) -> Self {
        Radio {
            params,
            state: RadioState::Active,
            state_since: SimTime::ZERO,
            active_since: Some(SimTime::ZERO),
            wake_pending: false,
            sleep_started: None,
            sleep_intervals: Vec::new(),
            active_ns: 0,
            off_ns: 0,
            transition_ns: 0,
            energy_j: 0.0,
        }
    }

    /// The static parameters.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// Current power state.
    pub fn state(&self) -> RadioState {
        self.state
    }

    /// True if the radio is fully active.
    pub fn is_active(&self) -> bool {
        self.state == RadioState::Active
    }

    /// True if the radio is fully off.
    pub fn is_off(&self) -> bool {
        self.state == RadioState::Off
    }

    /// If active, the instant the radio most recently became active.
    /// Used by the channel to verify a receiver was awake for a whole
    /// frame.
    pub fn active_since(&self) -> Option<SimTime> {
        self.active_since
    }

    /// The effective break-even time the sleep scheduler should use.
    pub fn break_even(&self) -> SimDuration {
        self.params.break_even()
    }

    /// Power drawn in the current state — the single state→power
    /// mapping shared by the mutating accounting ([`Radio::settle`])
    /// and the read-only projection ([`Radio::energy_j_at`]).
    fn power_w(&self) -> f64 {
        match self.state {
            RadioState::Active => self.params.active_power_w,
            RadioState::Off => self.params.sleep_power_w,
            RadioState::TurningOff | RadioState::TurningOn => self.params.transition_power_w,
        }
    }

    fn account(&mut self, until: SimTime) {
        let span = until.saturating_duration_since(self.state_since).as_nanos();
        match self.state {
            RadioState::Active => self.active_ns += span,
            RadioState::Off => self.off_ns += span,
            RadioState::TurningOff | RadioState::TurningOn => self.transition_ns += span,
        }
        self.energy_j += self.power_w() * span as f64 / 1e9;
        self.state_since = until;
    }

    fn set_state(&mut self, now: SimTime, state: RadioState) {
        self.account(now);
        self.state = state;
        self.active_since = if state == RadioState::Active {
            Some(now)
        } else {
            None
        };
    }

    /// Begins switching the radio off. Returns the transition duration;
    /// the caller must invoke [`Radio::finish_transition`] exactly that
    /// much later.
    ///
    /// # Errors
    ///
    /// Returns an error unless the radio is currently `Active`.
    pub fn begin_sleep(&mut self, now: SimTime) -> Result<SimDuration, StateTransitionError> {
        if self.state != RadioState::Active {
            return Err(StateTransitionError {
                state: self.state,
                requested: "begin sleep",
            });
        }
        self.sleep_started = Some(now);
        self.wake_pending = false;
        self.set_state(now, RadioState::TurningOff);
        Ok(self.params.turn_off)
    }

    /// Begins switching the radio on. Returns the transition duration;
    /// the caller must invoke [`Radio::finish_transition`] exactly that
    /// much later.
    ///
    /// If called while the radio is still turning off, the wake-up is
    /// queued: the pending `finish_transition` will report
    /// [`TransitionOutcome::OffWakeQueued`] and the caller restarts the
    /// wake from there.
    ///
    /// # Errors
    ///
    /// Returns an error if the radio is already `Active` or `TurningOn`.
    pub fn begin_wake(&mut self, now: SimTime) -> Result<SimDuration, StateTransitionError> {
        match self.state {
            RadioState::Off => {
                self.set_state(now, RadioState::TurningOn);
                Ok(self.params.turn_on)
            }
            RadioState::TurningOff => {
                self.wake_pending = true;
                Err(StateTransitionError {
                    state: self.state,
                    requested: "begin wake (queued until turn-off completes)",
                })
            }
            _ => Err(StateTransitionError {
                state: self.state,
                requested: "begin wake",
            }),
        }
    }

    /// Completes an in-flight transition at `now`.
    ///
    /// # Panics
    ///
    /// Panics if no transition is in flight (caller scheduled a stale
    /// completion event).
    pub fn finish_transition(&mut self, now: SimTime) -> TransitionOutcome {
        match self.state {
            RadioState::TurningOff => {
                self.set_state(now, RadioState::Off);
                if self.wake_pending {
                    self.wake_pending = false;
                    TransitionOutcome::OffWakeQueued
                } else {
                    TransitionOutcome::NowOff
                }
            }
            RadioState::TurningOn => {
                self.set_state(now, RadioState::Active);
                if let Some(started) = self.sleep_started.take() {
                    self.sleep_intervals.push(SleepInterval {
                        started,
                        ended: now,
                    });
                }
                TransitionOutcome::NowActive
            }
            s => panic!("finish_transition while radio is {s}"),
        }
    }

    /// Completed sleep intervals so far.
    pub fn sleep_intervals(&self) -> &[SleepInterval] {
        &self.sleep_intervals
    }

    /// Brings a node's radio back as fresh-`Active` at `now` without
    /// accounting the interval since the last [`Radio::settle`] — used
    /// when a churned node recovers: a dead node consumes nothing, so
    /// the caller settles accounting at the moment of death and revives
    /// here. Any in-flight transition or partially recorded sleep
    /// interval is discarded; accumulated time/energy totals are kept
    /// (a recovered node does not get its battery back).
    pub fn resurrect(&mut self, now: SimTime) {
        self.state = RadioState::Active;
        self.state_since = now;
        self.active_since = Some(now);
        self.wake_pending = false;
        self.sleep_started = None;
    }

    /// Flushes accounting up to `now` (call once at the end of a run
    /// before reading the totals).
    pub fn settle(&mut self, now: SimTime) {
        self.account(now);
    }

    /// Energy consumed up to `now`, **without** mutating the books: the
    /// settled total plus the span since the last state change at the
    /// current state's power draw. The battery-depletion sweep reads
    /// every live node through this each period, so the whole-network
    /// scan stays read-only.
    pub fn energy_j_at(&self, now: SimTime) -> f64 {
        let span = now.saturating_duration_since(self.state_since).as_nanos();
        self.energy_j + self.power_w() * span as f64 / 1e9
    }

    /// Read-only projection of the three state counters to `now`, as
    /// `(active_ns, off_ns, transition_ns)` — what [`Radio::settle`]
    /// would leave in the books, without mutating them (the
    /// counterpart of [`Radio::energy_j_at`], used by observability
    /// probes that must not perturb the run).
    pub fn counters_at(&self, now: SimTime) -> (u64, u64, u64) {
        let span = now.saturating_duration_since(self.state_since).as_nanos();
        let (mut active, mut off, mut trans) = (self.active_ns, self.off_ns, self.transition_ns);
        match self.state {
            RadioState::Active => active += span,
            RadioState::Off => off += span,
            RadioState::TurningOff | RadioState::TurningOn => trans += span,
        }
        (active, off, trans)
    }

    /// Nanoseconds spent `Active` (after [`Radio::settle`]).
    pub fn active_ns(&self) -> u64 {
        self.active_ns
    }

    /// Nanoseconds spent `Off`.
    pub fn off_ns(&self) -> u64 {
        self.off_ns
    }

    /// Nanoseconds spent transitioning.
    pub fn transition_ns(&self) -> u64 {
        self.transition_ns
    }

    /// Total energy consumed in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Duty cycle over the accounted span: fraction of time **not** spent
    /// in the `Off` state (transitions count as on-time, as the paper's
    /// energy analysis treats them as overhead).
    pub fn duty_cycle(&self) -> f64 {
        let total = self.active_ns + self.off_ns + self.transition_ns;
        if total == 0 {
            1.0
        } else {
            (self.active_ns + self.transition_ns) as f64 / total as f64
        }
    }
}

/// Result of [`Radio::finish_transition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionOutcome {
    /// The radio is now fully off.
    NowOff,
    /// The radio is now fully active.
    NowActive,
    /// The radio reached `Off`, but a wake-up was requested while it was
    /// turning off — the caller should immediately `begin_wake` again.
    OffWakeQueued,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn break_even_simple_sum() {
        let p = RadioParams::mica2();
        assert_eq!(p.break_even(), SimDuration::from_micros(2_500));
        assert_eq!(
            RadioParams::mica2_worst().break_even(),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            RadioParams::zebranet().break_even(),
            SimDuration::from_millis(40)
        );
        assert_eq!(RadioParams::instant().break_even(), SimDuration::ZERO);
    }

    #[test]
    fn break_even_with_expensive_transition() {
        let p = RadioParams {
            transition_power_w: 0.09, // 2x active
            ..RadioParams::mica2()
        };
        let t = p.break_even();
        assert!(
            t > SimDuration::from_micros(2_500),
            "expensive transitions push break-even past the transition time, got {t}"
        );
    }

    #[test]
    fn break_even_override_wins() {
        let p = RadioParams {
            break_even_override: Some(SimDuration::from_millis(40)),
            ..RadioParams::mica2()
        };
        assert_eq!(p.break_even(), SimDuration::from_millis(40));
    }

    #[test]
    fn with_break_even_round_trip() {
        for ms_val in [1u64, 2, 3, 10, 40] {
            let p = RadioParams::with_break_even(SimDuration::from_millis(ms_val));
            assert_eq!(p.break_even(), SimDuration::from_millis(ms_val));
        }
    }

    #[test]
    fn sleep_wake_cycle_accounting() {
        let mut r = Radio::new(RadioParams::mica2());
        // Active [0, 10ms)
        let d_off = r.begin_sleep(ms(10)).unwrap();
        r.finish_transition(ms(10) + d_off); // off at 11.25ms
        let d_on = r.begin_wake(ms(50)).unwrap();
        let out = r.finish_transition(ms(50) + d_on); // active at 51.25ms
        assert_eq!(out, TransitionOutcome::NowActive);
        r.settle(ms(100));
        assert_eq!(r.transition_ns(), 2_500_000);
        assert_eq!(r.off_ns(), (ms(50) - (ms(10) + d_off)).as_nanos());
        let expected_active = 10_000_000 + (ms(100) - (ms(50) + d_on)).as_nanos();
        assert_eq!(r.active_ns(), expected_active);
        let total = r.active_ns() + r.off_ns() + r.transition_ns();
        assert_eq!(total, 100_000_000);
        let duty = r.duty_cycle();
        assert!((duty - (1.0 - r.off_ns() as f64 / 1e8)).abs() < 1e-12);
    }

    #[test]
    fn sleep_interval_recorded_with_transitions() {
        let mut r = Radio::new(RadioParams::mica2());
        let d_off = r.begin_sleep(ms(0)).unwrap();
        r.finish_transition(ms(0) + d_off);
        let d_on = r.begin_wake(ms(20)).unwrap();
        r.finish_transition(ms(20) + d_on);
        let si = r.sleep_intervals();
        assert_eq!(si.len(), 1);
        assert_eq!(si[0].started, ms(0));
        assert_eq!(si[0].ended, ms(20) + d_on);
        assert_eq!(si[0].length(), SimDuration::from_micros(21_250));
    }

    #[test]
    fn wake_during_turn_off_is_queued() {
        let mut r = Radio::new(RadioParams::mica2());
        let d_off = r.begin_sleep(ms(0)).unwrap();
        // Upper layer changes its mind mid-transition.
        assert!(r.begin_wake(ms(1)).is_err());
        let out = r.finish_transition(ms(0) + d_off);
        assert_eq!(out, TransitionOutcome::OffWakeQueued);
        // Caller restarts the wake.
        let d_on = r.begin_wake(ms(0) + d_off).unwrap();
        let out2 = r.finish_transition(ms(0) + d_off + d_on);
        assert_eq!(out2, TransitionOutcome::NowActive);
        assert!(r.is_active());
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut r = Radio::new(RadioParams::mica2());
        assert!(r.begin_wake(ms(0)).is_err(), "wake while active");
        let d = r.begin_sleep(ms(1)).unwrap();
        assert!(r.begin_sleep(ms(2)).is_err(), "sleep while turning off");
        r.finish_transition(ms(1) + d);
        assert!(r.begin_sleep(ms(5)).is_err(), "sleep while off");
        let err = r.begin_sleep(ms(5)).unwrap_err();
        assert!(err.to_string().contains("off"));
    }

    #[test]
    #[should_panic(expected = "finish_transition")]
    fn stale_finish_panics() {
        let mut r = Radio::new(RadioParams::mica2());
        r.finish_transition(ms(1));
    }

    #[test]
    fn active_since_tracks_wakeups() {
        let mut r = Radio::new(RadioParams::instant());
        assert_eq!(r.active_since(), Some(SimTime::ZERO));
        let d = r.begin_sleep(ms(3)).unwrap();
        assert_eq!(d, SimDuration::ZERO);
        r.finish_transition(ms(3));
        assert_eq!(r.active_since(), None);
        let w = r.begin_wake(ms(9)).unwrap();
        r.finish_transition(ms(9) + w);
        assert_eq!(r.active_since(), Some(ms(9)));
    }

    #[test]
    fn resurrect_skips_dead_interval_and_keeps_totals() {
        let mut r = Radio::new(RadioParams::mica2());
        // Dies (accounting settled) at 10 ms, revived at 60 ms.
        r.settle(ms(10));
        let e_at_death = r.energy_j();
        r.resurrect(ms(60));
        assert!(r.is_active());
        assert_eq!(r.active_since(), Some(ms(60)));
        r.settle(ms(70));
        // Only the 10 ms alive span after revival is accounted; the
        // 50 ms dead span cost nothing.
        assert_eq!(r.active_ns(), 20_000_000);
        assert!((r.energy_j() - e_at_death - 0.045 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn resurrect_discards_inflight_transition() {
        let mut r = Radio::new(RadioParams::mica2());
        let _ = r.begin_sleep(ms(5)).unwrap(); // dies mid-turn-off
        r.resurrect(ms(50));
        assert!(r.is_active());
        // No sleep interval was completed by the aborted cycle.
        let d = r.begin_sleep(ms(60)).unwrap();
        r.finish_transition(ms(60) + d);
        let w = r.begin_wake(ms(80)).unwrap();
        r.finish_transition(ms(80) + w);
        assert_eq!(r.sleep_intervals().len(), 1);
        assert_eq!(r.sleep_intervals()[0].started, ms(60));
    }

    #[test]
    fn energy_integrates_power() {
        let mut r = Radio::new(RadioParams::mica2());
        r.settle(SimTime::from_secs(10));
        // 10 s fully active at 45 mW -> 0.45 J
        assert!((r.energy_j() - 0.45).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_of_fresh_radio_is_one() {
        let r = Radio::new(RadioParams::mica2());
        assert_eq!(r.duty_cycle(), 1.0);
    }
}
