//! The shared wireless medium: unit-disk propagation with collisions.
//!
//! The channel answers three questions the MAC layer needs:
//!
//! 1. **Who hears a transmission?** Every node within communication range
//!    of the sender (the unit-disk model at the paper's 125 m range).
//! 2. **Is the medium busy at a node?** — carrier sense: true while any
//!    in-flight transmission is audible there.
//! 3. **Did a frame survive?** A copy at receiver `r` is *corrupted* if
//!    any other transmission overlapped it at `r` (no capture effect), if
//!    `r` was itself transmitting (half-duplex), or if the configurable
//!    random loss injection fires (used for the paper's §4.3 transient
//!    packet-loss experiments).
//!
//! The channel is payload-agnostic: it tracks in-flight transmissions by
//! opaque [`TxId`]; the simulator keeps the frame body alongside the
//! transmission-end event it schedules.
//!
//! # Hot-path layout
//!
//! `begin_tx`/`end_tx` run once per frame (plus retries) and dominate
//! dense-traffic simulations, so the channel is built to not allocate in
//! steady state:
//!
//! * Adjacency is stored **CSR-style** — one flat `Vec<NodeId>` plus an
//!   offsets array per range — and each transmission refers to its
//!   hearers/sensers by the *sender's index range* into those arrays
//!   instead of cloning the neighbour lists per transmission.
//! * In-flight transmissions live in a **slab** keyed by a dense slot id
//!   ([`TxId`] packs slot + generation); there is no hashing anywhere.
//! * Per-hearer corruption flags and the returned receiver lists draw
//!   from internal **buffer pools**; the simulator hands vectors back via
//!   [`Channel::recycle_nodes`] after consuming a [`TxStart`]/[`TxEnd`].
//!
//! # Examples
//!
//! ```
//! use essat_net::channel::Channel;
//! use essat_net::ids::NodeId;
//! use essat_net::topology::Topology;
//! use essat_sim::rng::SimRng;
//! use essat_sim::time::{SimDuration, SimTime};
//!
//! let topo = Topology::line(3, 10.0, 12.0); // 0 - 1 - 2
//! let mut ch = Channel::new(&topo, SimRng::seed_from_u64(1));
//! let t0 = SimTime::ZERO;
//! let tx = ch.begin_tx(t0, NodeId::new(0), SimDuration::from_micros(416));
//! assert!(ch.carrier_busy(NodeId::new(1)));
//! assert!(!ch.carrier_busy(NodeId::new(2)), "node 2 is out of range of 0");
//! let end = ch.end_tx(t0 + SimDuration::from_micros(416), tx.id);
//! assert_eq!(end.clean_receivers, vec![NodeId::new(1)]);
//! ```

use std::sync::Arc;

use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

use crate::ids::NodeId;
use crate::topology::Topology;

/// A pluggable per-link loss process consulted once per otherwise-clean
/// frame copy at [`Channel::end_tx`] time.
///
/// Implementations own whatever per-link state they need (e.g. the
/// scenario engine's Gilbert–Elliott chains) and must be deterministic
/// for a given construction seed: the channel calls `dropped` in a
/// deterministic order, so a deterministic model keeps runs
/// bit-reproducible. The model **composes** with the static
/// [`Channel::set_drop_probability`]: a copy is lost if the model drops
/// it *or* the baseline random loss fires (the baseline draw is skipped
/// when the model already dropped the copy). With both disabled the
/// per-copy cost is a single branch.
pub trait LossModel: std::fmt::Debug + Send {
    /// True if the copy of the frame ending at `now`, sent by `sender`,
    /// is lost at `receiver`.
    fn dropped(&mut self, now: SimTime, sender: NodeId, receiver: NodeId) -> bool;
}

/// Identifier of an in-flight transmission.
///
/// Packs the slab slot (low 32 bits) and a generation counter (high 32
/// bits) so stale ids are detected exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(u64);

impl TxId {
    /// Raw packed value (generation << 32 | slot).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    fn new(slot: u32, seq: u32) -> Self {
        TxId((seq as u64) << 32 | slot as u64)
    }

    /// The dense slab-slot index of this transmission while in flight.
    /// Unique among concurrent transmissions; reused (with a bumped
    /// generation) after the transmission ends. Callers can use it to
    /// key small side tables of per-transmission state.
    pub fn slot_index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn slot(self) -> usize {
        self.slot_index()
    }

    fn seq(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One slab slot for an in-flight transmission. Hearers/sensers are the
/// sender's CSR ranges in the channel's adjacency arrays; only the
/// per-hearer corruption flags are per-transmission state.
#[derive(Debug)]
struct ActiveTx {
    seq: u32,
    live: bool,
    /// Index of this slot in `Channel::active` (for O(1) removal).
    active_pos: u32,
    sender: NodeId,
    start: SimTime,
    /// Parallel to the sender's communication-range CSR slice; recycled
    /// through `bool_pool`.
    corrupted: Vec<bool>,
}

/// Outcome of starting a transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct TxStart {
    /// Handle to pass to [`Channel::end_tx`].
    pub id: TxId,
    /// Nodes at which the medium just became busy (carrier 0 → 1);
    /// their MACs must be notified.
    pub now_busy: Vec<NodeId>,
}

/// Outcome of finishing a transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct TxEnd {
    /// The transmitting node.
    pub sender: NodeId,
    /// When the transmission started.
    pub started: SimTime,
    /// Hearers whose copy survived collisions and loss injection.
    /// The caller must still verify each receiver's radio was active for
    /// the whole airtime before delivering to its MAC.
    pub clean_receivers: Vec<NodeId>,
    /// Hearers whose copy was corrupted (collision, half-duplex, or
    /// injected loss).
    pub corrupted_receivers: Vec<NodeId>,
    /// Nodes at which the medium just became idle (carrier 1 → 0);
    /// their MACs must be notified.
    pub now_idle: Vec<NodeId>,
}

/// Reusable outcome buffer for [`Channel::end_tx_into`] — the simulator's
/// allocation-free fan-out path.
///
/// The three receiver classes live in **one contiguous list** partitioned
/// as `[clean | corrupted | now-idle]`; each class is exposed as a slice.
/// One buffer per world replaces the three pooled vectors per call that
/// [`Channel::end_tx`] returns, and the flat layout keeps the fan-out
/// loops on a single warm allocation.
#[derive(Debug)]
pub struct TxEndBuf {
    /// The transmitting node.
    pub sender: NodeId,
    /// When the transmission started.
    pub started: SimTime,
    nodes: Vec<NodeId>,
    clean_end: usize,
    corrupted_end: usize,
}

impl Default for TxEndBuf {
    fn default() -> Self {
        TxEndBuf {
            sender: NodeId::new(0),
            started: SimTime::ZERO,
            nodes: Vec::new(),
            clean_end: 0,
            corrupted_end: 0,
        }
    }
}

impl TxEndBuf {
    /// Hearers whose copy survived collisions and loss injection, in
    /// ascending id (CSR) order.
    #[inline]
    pub fn clean(&self) -> &[NodeId] {
        &self.nodes[..self.clean_end]
    }

    /// Hearers whose copy was corrupted, in ascending id order.
    #[inline]
    pub fn corrupted(&self) -> &[NodeId] {
        &self.nodes[self.clean_end..self.corrupted_end]
    }

    /// Nodes at which the medium just became idle (carrier 1 → 0), in
    /// interference-CSR order.
    #[inline]
    pub fn now_idle(&self) -> &[NodeId] {
        &self.nodes[self.corrupted_end..]
    }

    /// Number of corrupted hearers (probe reporting).
    #[inline]
    pub fn corrupted_len(&self) -> u32 {
        (self.corrupted_end - self.clean_end) as u32
    }

    fn reset(&mut self, sender: NodeId, started: SimTime) {
        self.sender = sender;
        self.started = started;
        self.nodes.clear();
        self.clean_end = 0;
        self.corrupted_end = 0;
    }
}

/// Counters the channel keeps for the run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Transmissions started.
    pub transmissions: u64,
    /// (transmission, receiver) pairs corrupted by overlap or half-duplex.
    pub collisions: u64,
    /// (transmission, receiver) pairs dropped by loss injection.
    pub injected_drops: u64,
}

/// CSR adjacency: `flat[off[i]..off[i+1]]` are node `i`'s neighbours in
/// ascending id order.
#[derive(Debug)]
struct Csr {
    flat: Vec<NodeId>,
    off: Vec<u32>,
}

impl Csr {
    fn from_lists<'a>(n: usize, mut list: impl FnMut(usize) -> &'a [NodeId]) -> Csr {
        let mut off = Vec::with_capacity(n + 1);
        let mut flat = Vec::new();
        off.push(0u32);
        for i in 0..n {
            flat.extend_from_slice(list(i));
            off.push(flat.len() as u32);
        }
        Csr { flat, off }
    }
}

/// The immutable adjacency block a channel consults on every
/// transmission: communication- and interference-range CSR indexes over
/// a fixed topology.
///
/// Building it walks the whole topology, so sweep harnesses share one
/// instance (`Arc`) across every run at the same `(topology, seed)`
/// point instead of rebuilding it per job — see
/// [`Channel::with_adjacency`].
#[derive(Debug)]
pub struct ChannelAdjacency {
    neighbors: Csr,
    interference: Csr,
    nodes: usize,
}

impl ChannelAdjacency {
    /// Builds the CSR indexes for `topology`.
    pub fn build(topology: &Topology) -> ChannelAdjacency {
        let n = topology.node_count();
        ChannelAdjacency {
            neighbors: Csr::from_lists(n, |i| topology.neighbors(NodeId::new(i as u32))),
            interference: Csr::from_lists(n, |i| {
                topology.interference_neighbors(NodeId::new(i as u32))
            }),
            nodes: n,
        }
    }
}

/// Recycled channel buffers (receiver lists, corruption flags) carried
/// across runs by a world pool so a fresh channel starts warm.
#[derive(Debug, Default)]
pub struct ChannelPools {
    nodes: Vec<Vec<NodeId>>,
    bools: Vec<Vec<bool>>,
}

/// The shared medium. One instance per simulation.
#[derive(Debug)]
pub struct Channel {
    adj: Arc<ChannelAdjacency>,
    carrier_count: Vec<u32>,
    transmitting: Vec<bool>,
    /// Transmission slab; `active` lists the live slot ids.
    slots: Vec<ActiveTx>,
    active: Vec<u32>,
    free: Vec<u32>,
    next_seq: u32,
    /// Recycled per-hearer corruption buffers.
    bool_pool: Vec<Vec<bool>>,
    /// Recycled receiver-list buffers (see [`Channel::recycle_nodes`]).
    node_pool: Vec<Vec<NodeId>>,
    drop_prob: f64,
    /// Optional per-link loss process; composes with `drop_prob`.
    loss_model: Option<Box<dyn LossModel>>,
    rng: SimRng,
    stats: ChannelStats,
}

impl Channel {
    /// Creates a channel over the given topology with no loss injection.
    pub fn new(topology: &Topology, rng: SimRng) -> Self {
        Self::with_adjacency(Arc::new(ChannelAdjacency::build(topology)), rng)
    }

    /// Creates a channel over a pre-built (possibly shared) adjacency
    /// block — the sweep executor's build-cache path.
    pub fn with_adjacency(adj: Arc<ChannelAdjacency>, rng: SimRng) -> Self {
        let n = adj.nodes;
        Channel {
            adj,
            carrier_count: vec![0; n],
            transmitting: vec![false; n],
            slots: Vec::new(),
            active: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            bool_pool: Vec::new(),
            node_pool: Vec::new(),
            drop_prob: 0.0,
            loss_model: None,
            rng,
            stats: ChannelStats::default(),
        }
    }

    /// Sets the per-(frame, receiver) random drop probability used for
    /// transient-loss experiments.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.drop_prob = p;
    }

    /// Current loss-injection probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_prob
    }

    /// Installs a per-link loss process. It runs on every otherwise-
    /// clean copy and **composes** with the static drop probability
    /// (either source of loss kills the copy); drops from both are
    /// counted as [`ChannelStats::injected_drops`].
    pub fn set_loss_model(&mut self, model: Box<dyn LossModel>) {
        self.loss_model = Some(model);
    }

    /// Removes any installed loss process.
    pub fn clear_loss_model(&mut self) {
        self.loss_model = None;
    }

    /// True if any in-flight transmission is audible at `node`.
    pub fn carrier_busy(&self, node: NodeId) -> bool {
        self.carrier_count[node.index()] > 0
    }

    /// True if `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.transmitting[node.index()]
    }

    /// Run counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Moves the channel's warmed buffer pools into `pools` (called at
    /// the end of a pooled run so the next run's channel starts warm).
    pub fn harvest_pools(&mut self, pools: &mut ChannelPools) {
        pools.nodes.append(&mut self.node_pool);
        pools.bools.append(&mut self.bool_pool);
    }

    /// Adopts previously harvested buffer pools.
    pub fn adopt_pools(&mut self, pools: &mut ChannelPools) {
        self.node_pool.append(&mut pools.nodes);
        self.bool_pool.append(&mut pools.bools);
    }

    /// Returns a receiver-list vector to the channel's buffer pool.
    ///
    /// Optional: callers that consume [`TxStart::now_busy`] or the
    /// [`TxEnd`] lists can hand the vectors back here to keep the
    /// begin/end paths allocation-free in steady state.
    pub fn recycle_nodes(&mut self, mut v: Vec<NodeId>) {
        v.clear();
        self.node_pool.push(v);
    }

    fn take_nodes(&mut self) -> Vec<NodeId> {
        self.node_pool.pop().unwrap_or_default()
    }

    /// Marks the copy of in-flight transmission `slot` as corrupted at
    /// hearer position `pos`, counting the collision once.
    fn corrupt_at(stats: &mut ChannelStats, tx: &mut ActiveTx, pos: usize) {
        if !tx.corrupted[pos] {
            tx.corrupted[pos] = true;
            stats.collisions += 1;
        }
    }

    /// Corrupts every in-flight copy decodable at `node`.
    fn corrupt_copies_at(&mut self, node: NodeId) {
        for i in 0..self.active.len() {
            let slot = self.active[i] as usize;
            let s = self.slots[slot].sender.index();
            let hearers = &self.adj.neighbors.flat
                [self.adj.neighbors.off[s] as usize..self.adj.neighbors.off[s + 1] as usize];
            if let Some(pos) = hearers.iter().position(|&h| h == node) {
                Self::corrupt_at(&mut self.stats, &mut self.slots[slot], pos);
            }
        }
    }

    /// Starts a transmission from `sender` lasting `airtime`.
    ///
    /// The caller must schedule a call to [`Channel::end_tx`] exactly
    /// `airtime` later and must ensure the sender's radio is active.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is already transmitting (the MAC must never do
    /// this).
    pub fn begin_tx(&mut self, now: SimTime, sender: NodeId, airtime: SimDuration) -> TxStart {
        let _ = airtime; // airtime is enforced by the caller's end event
        assert!(
            !self.transmitting[sender.index()],
            "{sender} started a second concurrent transmission"
        );
        self.stats.transmissions += 1;
        self.transmitting[sender.index()] = true;

        // The sender cannot receive while transmitting: corrupt every
        // in-flight copy addressed at it.
        self.corrupt_copies_at(sender);

        let si = sender.index();
        let hearer_count = (self.adj.neighbors.off[si + 1] - self.adj.neighbors.off[si]) as usize;
        let mut corrupted = self.bool_pool.pop().unwrap_or_default();
        corrupted.clear();
        corrupted.resize(hearer_count, false);
        let mut now_busy = self.take_nodes();

        // Energy is sensed — and corrupts concurrent receptions — out to
        // the interference range; only communication-range hearers can
        // decode the frame itself.
        let (i0, i1) = (
            self.adj.interference.off[si] as usize,
            self.adj.interference.off[si + 1] as usize,
        );
        for idx in i0..i1 {
            let h = self.adj.interference.flat[idx];
            let cc = &mut self.carrier_count[h.index()];
            *cc += 1;
            let cc = *cc;
            if cc == 1 {
                now_busy.push(h);
            }
            // Overlap: any second audible transmission at h destroys
            // every decodable copy there (no capture).
            if cc >= 2 {
                self.corrupt_copies_at(h);
            }
        }
        let (h0, h1) = (
            self.adj.neighbors.off[si] as usize,
            self.adj.neighbors.off[si + 1] as usize,
        );
        for (i, idx) in (h0..h1).enumerate() {
            let h = self.adj.neighbors.flat[idx];
            // Half-duplex: a transmitting hearer cannot receive.
            if self.transmitting[h.index()] {
                corrupted[i] = true;
                self.stats.collisions += 1;
            }
            // The new copy is corrupted wherever other energy overlaps.
            if self.carrier_count[h.index()] >= 2 && !corrupted[i] {
                corrupted[i] = true;
                self.stats.collisions += 1;
            }
        }

        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let active_pos = self.active.len() as u32;
        let slot = match self.free.pop() {
            Some(s) => {
                let tx = &mut self.slots[s as usize];
                tx.seq = seq;
                tx.live = true;
                tx.active_pos = active_pos;
                tx.sender = sender;
                tx.start = now;
                tx.corrupted = corrupted;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(ActiveTx {
                    seq,
                    live: true,
                    active_pos,
                    sender,
                    start: now,
                    corrupted,
                });
                s
            }
        };
        self.active.push(slot);
        TxStart {
            id: TxId::new(slot, seq),
            now_busy,
        }
    }

    /// Finishes a transmission, returning delivery outcomes and carrier
    /// transitions.
    ///
    /// Convenience wrapper over [`Channel::end_tx_into`] that splits the
    /// flat outcome buffer into three pooled vectors. The simulator's hot
    /// path uses `end_tx_into` directly.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not correspond to an in-flight transmission.
    pub fn end_tx(&mut self, now: SimTime, id: TxId) -> TxEnd {
        let mut buf = TxEndBuf::default();
        self.end_tx_into(now, id, &mut buf);
        let mut clean = self.take_nodes();
        let mut corrupted_rx = self.take_nodes();
        let mut now_idle = self.take_nodes();
        clean.extend_from_slice(buf.clean());
        corrupted_rx.extend_from_slice(buf.corrupted());
        now_idle.extend_from_slice(buf.now_idle());
        TxEnd {
            sender: buf.sender,
            started: buf.started,
            clean_receivers: clean,
            corrupted_receivers: corrupted_rx,
            now_idle,
        }
    }

    /// Finishes a transmission, writing delivery outcomes and carrier
    /// transitions into a caller-recycled [`TxEndBuf`].
    ///
    /// The fan-out is vectorised: receivers are classified with slice
    /// passes over the sender's CSR adjacency ranges — one pass finalises
    /// the per-hearer corruption flags (loss injection draws happen here,
    /// in ascending-id order), then clean and corrupted hearers are
    /// written as contiguous partitions of the flat outcome list.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not correspond to an in-flight transmission.
    pub fn end_tx_into(&mut self, now: SimTime, id: TxId, out: &mut TxEndBuf) {
        let slot = id.slot();
        assert!(
            self.slots
                .get(slot)
                .is_some_and(|tx| tx.live && tx.seq == id.seq()),
            "end_tx for unknown transmission"
        );
        // Detach the slot from the active set (swap-remove, O(1)).
        let (sender, start, mut corrupted, pos) = {
            let tx = &mut self.slots[slot];
            tx.live = false;
            (
                tx.sender,
                tx.start,
                std::mem::take(&mut tx.corrupted),
                tx.active_pos as usize,
            )
        };
        self.active.swap_remove(pos);
        if pos < self.active.len() {
            let moved = self.active[pos] as usize;
            self.slots[moved].active_pos = pos as u32;
        }
        self.free.push(slot as u32);
        self.transmitting[sender.index()] = false;
        out.reset(sender, start);

        let si = sender.index();
        let (h0, h1) = (
            self.adj.neighbors.off[si] as usize,
            self.adj.neighbors.off[si + 1] as usize,
        );
        let hearers = &self.adj.neighbors.flat[h0..h1];

        // Pass 1 — finalise corruption flags in hearer (ascending-id)
        // order. Loss draws must happen here, one per otherwise-clean
        // copy, to keep the RNG sequence identical to the historical
        // per-receiver path.
        if self.loss_model.is_some() || self.drop_prob > 0.0 {
            for (i, &h) in hearers.iter().enumerate() {
                if corrupted[i] {
                    continue;
                }
                // Loss sources compose: the per-link model (if any) OR
                // the configured baseline probability. An installed
                // model used to silently override the baseline.
                let injected = match self.loss_model.as_deref_mut() {
                    Some(model) => model.dropped(now, sender, h),
                    None => false,
                } || (self.drop_prob > 0.0 && self.rng.chance(self.drop_prob));
                if injected {
                    corrupted[i] = true;
                    self.stats.injected_drops += 1;
                }
            }
        }

        // Pass 2 — partition hearers into the flat outcome list: clean
        // first, corrupted second, both in hearer order.
        for (i, &h) in hearers.iter().enumerate() {
            if !corrupted[i] {
                out.nodes.push(h);
            }
        }
        out.clean_end = out.nodes.len();
        for (i, &h) in hearers.iter().enumerate() {
            if corrupted[i] {
                out.nodes.push(h);
            }
        }
        out.corrupted_end = out.nodes.len();

        // Pass 3 — decrement carrier counts over the interference range,
        // appending the 1 → 0 transitions as the final partition.
        let (i0, i1) = (
            self.adj.interference.off[si] as usize,
            self.adj.interference.off[si + 1] as usize,
        );
        for &h in &self.adj.interference.flat[i0..i1] {
            let cc = &mut self.carrier_count[h.index()];
            debug_assert!(*cc > 0, "carrier count underflow at {h}");
            *cc -= 1;
            if *cc == 0 {
                out.nodes.push(h);
            }
        }

        // Return the corruption buffer to the pool.
        self.bool_pool.push(corrupted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn t_us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0 - 1 - 2 - 3 line, only adjacent nodes hear each other.
    fn line4() -> Channel {
        let topo = Topology::line(4, 10.0, 12.0);
        Channel::new(&topo, SimRng::seed_from_u64(42))
    }

    #[test]
    fn clean_delivery_to_neighbors_only() {
        let mut ch = line4();
        let tx = ch.begin_tx(t_us(0), n(1), us(416));
        assert_eq!(tx.now_busy, vec![n(0), n(2)]);
        let end = ch.end_tx(t_us(416), tx.id);
        assert_eq!(end.clean_receivers, vec![n(0), n(2)]);
        assert!(end.corrupted_receivers.is_empty());
        assert_eq!(end.now_idle, vec![n(0), n(2)]);
        assert_eq!(ch.stats().transmissions, 1);
        assert_eq!(ch.stats().collisions, 0);
    }

    #[test]
    fn overlapping_transmissions_collide_at_common_hearer() {
        let mut ch = line4();
        // 0 and 2 both transmit; node 1 hears both -> both corrupt at 1.
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let b = ch.begin_tx(t_us(100), n(2), us(416));
        let end_a = ch.end_tx(t_us(416), a.id);
        assert!(end_a.clean_receivers.is_empty());
        assert_eq!(end_a.corrupted_receivers, vec![n(1)]);
        let end_b = ch.end_tx(t_us(516), b.id);
        // Node 3 only hears 2, so its copy survives; node 1's copy died.
        assert_eq!(end_b.clean_receivers, vec![n(3)]);
        assert_eq!(end_b.corrupted_receivers, vec![n(1)]);
        assert!(ch.stats().collisions >= 2);
    }

    #[test]
    fn end_tx_into_partitions_match_wrapper() {
        // Two identically-seeded channels with loss injection: the
        // pooled three-vector wrapper and the flat-buffer path must
        // produce the same partitions, in the same order, from the
        // same RNG draw sequence.
        let topo = Topology::line(6, 10.0, 12.0);
        let mut a = Channel::new(&topo, SimRng::seed_from_u64(9));
        let mut b = Channel::new(&topo, SimRng::seed_from_u64(9));
        a.set_drop_probability(0.4);
        b.set_drop_probability(0.4);
        let mut buf = TxEndBuf::default();
        for round in 0..64u64 {
            let t0 = t_us(round * 1_000);
            let sender = n((round % 6) as u32);
            let ta = a.begin_tx(t0, sender, us(416));
            let tb = b.begin_tx(t0, sender, us(416));
            a.recycle_nodes(ta.now_busy);
            b.recycle_nodes(tb.now_busy);
            let end = a.end_tx(t0 + us(416), ta.id);
            b.end_tx_into(t0 + us(416), tb.id, &mut buf);
            assert_eq!(end.sender, buf.sender);
            assert_eq!(end.started, buf.started);
            assert_eq!(end.clean_receivers.as_slice(), buf.clean());
            assert_eq!(end.corrupted_receivers.as_slice(), buf.corrupted());
            assert_eq!(end.now_idle.as_slice(), buf.now_idle());
            assert_eq!(end.corrupted_receivers.len() as u32, buf.corrupted_len());
            a.recycle_nodes(end.clean_receivers);
            a.recycle_nodes(end.corrupted_receivers);
            a.recycle_nodes(end.now_idle);
        }
        assert_eq!(a.stats(), b.stats());
        assert!(
            a.stats().injected_drops > 0,
            "the corrupted partition was never exercised"
        );
    }

    #[test]
    fn non_overlapping_sequential_txs_are_clean() {
        let mut ch = line4();
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert_eq!(ea.clean_receivers, vec![n(1)]);
        let b = ch.begin_tx(t_us(500), n(2), us(416));
        let eb = ch.end_tx(t_us(916), b.id);
        assert_eq!(eb.clean_receivers, vec![n(1), n(3)]);
        assert_eq!(ch.stats().collisions, 0);
    }

    #[test]
    fn half_duplex_sender_cannot_receive() {
        let mut ch = line4();
        // 1 transmits; while it does, 2 transmits too. 1 must not receive
        // 2's frame even though only one tx is audible at 1 (its own tx
        // doesn't count toward its carrier).
        let a = ch.begin_tx(t_us(0), n(1), us(416));
        let b = ch.begin_tx(t_us(10), n(2), us(100));
        let eb = ch.end_tx(t_us(110), b.id);
        assert!(
            !eb.clean_receivers.contains(&n(1)),
            "transmitting node must not receive"
        );
        // 3 hears only 2's tx -> clean there.
        assert!(eb.clean_receivers.contains(&n(3)));
        let ea = ch.end_tx(t_us(416), a.id);
        // 1's frame is corrupted at 2 (2 was transmitting during it).
        assert!(ea.corrupted_receivers.contains(&n(2)));
        // ...and clean at 0 (0 heard only 1's frame).
        assert!(ea.clean_receivers.contains(&n(0)));
    }

    #[test]
    fn late_starter_corrupts_frame_already_in_flight() {
        let mut ch = line4();
        let a = ch.begin_tx(t_us(0), n(0), us(416)); // 1 hears
                                                     // 2 starts mid-flight; at node 1 carrier goes 1 -> 2.
        let _b = ch.begin_tx(t_us(200), n(2), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert_eq!(ea.corrupted_receivers, vec![n(1)]);
        assert!(ea.clean_receivers.is_empty());
    }

    #[test]
    fn carrier_counts_track_busy_idle() {
        let mut ch = line4();
        assert!(!ch.carrier_busy(n(1)));
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        assert!(ch.carrier_busy(n(1)));
        assert!(!ch.carrier_busy(n(3)));
        let b = ch.begin_tx(t_us(10), n(2), us(416));
        assert!(ch.carrier_busy(n(3)));
        let ea = ch.end_tx(t_us(416), a.id);
        assert!(!ea.now_idle.contains(&n(1)), "1 still hears 2's tx");
        assert!(ch.carrier_busy(n(1)));
        let eb = ch.end_tx(t_us(426), b.id);
        assert!(eb.now_idle.contains(&n(1)));
        assert!(!ch.carrier_busy(n(1)));
        assert!(!ch.carrier_busy(n(3)));
    }

    #[test]
    fn is_transmitting_lifecycle() {
        let mut ch = line4();
        assert!(!ch.is_transmitting(n(0)));
        let a = ch.begin_tx(t_us(0), n(0), us(10));
        assert!(ch.is_transmitting(n(0)));
        ch.end_tx(t_us(10), a.id);
        assert!(!ch.is_transmitting(n(0)));
    }

    #[test]
    #[should_panic(expected = "second concurrent transmission")]
    fn double_tx_rejected() {
        let mut ch = line4();
        let _ = ch.begin_tx(t_us(0), n(0), us(10));
        let _ = ch.begin_tx(t_us(1), n(0), us(10));
    }

    #[test]
    #[should_panic(expected = "unknown transmission")]
    fn stale_tx_id_rejected() {
        let mut ch = line4();
        let a = ch.begin_tx(t_us(0), n(0), us(10));
        ch.end_tx(t_us(10), a.id);
        // The slot is reused by a new transmission; the stale id must
        // not end it.
        let _b = ch.begin_tx(t_us(20), n(2), us(10));
        ch.end_tx(t_us(30), a.id);
    }

    #[test]
    fn slab_reuse_many_sequential_txs() {
        let mut ch = line4();
        for i in 0..1_000u64 {
            let t0 = t_us(i * 1_000);
            let tx = ch.begin_tx(t0, n((i % 4) as u32), us(416));
            let end = ch.end_tx(t0 + us(416), tx.id);
            ch.recycle_nodes(tx.now_busy);
            ch.recycle_nodes(end.clean_receivers);
            ch.recycle_nodes(end.corrupted_receivers);
            ch.recycle_nodes(end.now_idle);
        }
        assert_eq!(ch.stats().transmissions, 1_000);
        assert_eq!(ch.stats().collisions, 0);
        for i in 0..4 {
            assert!(!ch.carrier_busy(n(i)));
            assert!(!ch.is_transmitting(n(i)));
        }
    }

    #[test]
    fn loss_injection_drops_roughly_p() {
        let topo = Topology::line(2, 10.0, 12.0);
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(7));
        ch.set_drop_probability(0.3);
        let mut dropped = 0;
        let trials = 2000;
        for i in 0..trials {
            let t0 = SimTime::from_micros(i * 1000);
            let tx = ch.begin_tx(t0, n(0), us(416));
            let end = ch.end_tx(t0 + us(416), tx.id);
            if end.corrupted_receivers.contains(&n(1)) {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.05, "drop fraction {frac}");
        assert_eq!(ch.stats().injected_drops, dropped);
        assert_eq!(ch.stats().collisions, 0);
    }

    /// Drops every copy at one chosen receiver, nothing else.
    #[derive(Debug)]
    struct DropAt(NodeId);

    impl LossModel for DropAt {
        fn dropped(&mut self, _now: SimTime, _sender: NodeId, receiver: NodeId) -> bool {
            receiver == self.0
        }
    }

    #[test]
    fn loss_model_composes_with_static_probability() {
        // Model alone: only its chosen receiver loses copies.
        let mut ch = line4();
        ch.set_loss_model(Box::new(DropAt(n(0))));
        let tx = ch.begin_tx(t_us(0), n(1), us(416));
        let end = ch.end_tx(t_us(416), tx.id);
        assert_eq!(end.clean_receivers, vec![n(2)]);
        assert_eq!(end.corrupted_receivers, vec![n(0)]);
        assert_eq!(ch.stats().injected_drops, 1);
        // Baseline composes on top of the model instead of being
        // silently overridden (the PR 3 review bug): with p = 1 every
        // copy the model spared is still dropped by the baseline.
        ch.set_drop_probability(1.0);
        let tx = ch.begin_tx(t_us(1_000), n(1), us(416));
        let end = ch.end_tx(t_us(1_416), tx.id);
        assert!(end.clean_receivers.is_empty(), "baseline must still fire");
        assert_eq!(end.corrupted_receivers, vec![n(0), n(2)]);
        assert_eq!(ch.stats().injected_drops, 3);
        // Removing the model keeps the static path.
        ch.clear_loss_model();
        let tx = ch.begin_tx(t_us(2_000), n(1), us(416));
        let end = ch.end_tx(t_us(2_416), tx.id);
        assert!(end.clean_receivers.is_empty(), "p = 1 drops every copy");
        assert_eq!(end.corrupted_receivers, vec![n(0), n(2)]);
    }

    #[test]
    fn loss_model_sees_frame_end_time_and_endpoints() {
        #[derive(Debug, Default)]
        struct Recorder(std::sync::Arc<std::sync::Mutex<Vec<(SimTime, NodeId, NodeId)>>>);
        impl LossModel for Recorder {
            fn dropped(&mut self, now: SimTime, sender: NodeId, receiver: NodeId) -> bool {
                self.0.lock().unwrap().push((now, sender, receiver));
                false
            }
        }
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut ch = line4();
        ch.set_loss_model(Box::new(Recorder(log.clone())));
        let tx = ch.begin_tx(t_us(100), n(1), us(416));
        let _ = ch.end_tx(t_us(516), tx.id);
        assert_eq!(
            *log.lock().unwrap(),
            vec![(t_us(516), n(1), n(0)), (t_us(516), n(1), n(2))]
        );
    }

    #[test]
    fn isolated_node_transmission_reaches_nobody() {
        let topo = Topology::line(2, 100.0, 10.0); // out of range
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(1));
        let tx = ch.begin_tx(t_us(0), n(0), us(416));
        assert!(tx.now_busy.is_empty());
        let end = ch.end_tx(t_us(416), tx.id);
        assert!(end.clean_receivers.is_empty());
        assert!(end.corrupted_receivers.is_empty());
    }

    #[test]
    fn tx_end_reports_start_time() {
        let mut ch = line4();
        let tx = ch.begin_tx(t_us(123), n(0), us(10));
        let end = ch.end_tx(t_us(133), tx.id);
        assert_eq!(end.started, t_us(123));
        assert_eq!(end.sender, n(0));
    }
}

#[cfg(test)]
mod interference_tests {
    use super::*;
    use crate::topology::Topology;
    use essat_sim::rng::SimRng;
    use essat_sim::time::{SimDuration, SimTime};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn t_us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Line 0-1-2-3 spaced 10 m apart: communication 12 m (adjacent
    /// only), interference 22 m (two hops).
    fn two_range() -> Channel {
        let topo = Topology::line(4, 10.0, 12.0).with_interference_range(22.0);
        Channel::new(&topo, SimRng::seed_from_u64(5))
    }

    #[test]
    fn interference_is_sensed_but_not_decoded() {
        let mut ch = two_range();
        let tx = ch.begin_tx(t_us(0), n(0), us(416));
        // Node 2 senses node 0 (22 m reach) but cannot decode it.
        assert!(
            ch.carrier_busy(n(2)),
            "carrier sensed at interference range"
        );
        assert!(tx.now_busy.contains(&n(2)));
        assert!(!ch.carrier_busy(n(3)), "three hops is beyond interference");
        let end = ch.end_tx(t_us(416), tx.id);
        assert_eq!(end.clean_receivers, vec![n(1)], "only comm-range decodes");
        assert!(!end.corrupted_receivers.contains(&n(2)));
        assert!(end.now_idle.contains(&n(2)));
        assert!(!ch.carrier_busy(n(2)));
    }

    #[test]
    fn hidden_interferer_corrupts_reception() {
        let mut ch = two_range();
        // 0 transmits to 1; 3 transmits concurrently. 3 is outside 1's
        // communication range but inside its interference range — the
        // classic hidden-terminal corruption the one-range model misses.
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let _b = ch.begin_tx(t_us(100), n(3), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert!(
            ea.corrupted_receivers.contains(&n(1)),
            "interference-range overlap must corrupt"
        );
        assert!(ea.clean_receivers.is_empty());
    }

    #[test]
    fn one_range_default_unchanged() {
        // Without an explicit interference range the two lists coincide,
        // so 3's transmission cannot affect 1.
        let topo = Topology::line(4, 10.0, 12.0);
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(5));
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let _b = ch.begin_tx(t_us(100), n(3), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert_eq!(ea.clean_receivers, vec![n(1)]);
    }
}
