//! The shared wireless medium: unit-disk propagation with collisions.
//!
//! The channel answers three questions the MAC layer needs:
//!
//! 1. **Who hears a transmission?** Every node within communication range
//!    of the sender (the unit-disk model at the paper's 125 m range).
//! 2. **Is the medium busy at a node?** — carrier sense: true while any
//!    in-flight transmission is audible there.
//! 3. **Did a frame survive?** A copy at receiver `r` is *corrupted* if
//!    any other transmission overlapped it at `r` (no capture effect), if
//!    `r` was itself transmitting (half-duplex), or if the configurable
//!    random loss injection fires (used for the paper's §4.3 transient
//!    packet-loss experiments).
//!
//! The channel is payload-agnostic: it tracks in-flight transmissions by
//! opaque [`TxId`]; the simulator keeps the frame body alongside the
//! transmission-end event it schedules.
//!
//! # Examples
//!
//! ```
//! use essat_net::channel::Channel;
//! use essat_net::ids::NodeId;
//! use essat_net::topology::Topology;
//! use essat_sim::rng::SimRng;
//! use essat_sim::time::{SimDuration, SimTime};
//!
//! let topo = Topology::line(3, 10.0, 12.0); // 0 - 1 - 2
//! let mut ch = Channel::new(&topo, SimRng::seed_from_u64(1));
//! let t0 = SimTime::ZERO;
//! let tx = ch.begin_tx(t0, NodeId::new(0), SimDuration::from_micros(416));
//! assert!(ch.carrier_busy(NodeId::new(1)));
//! assert!(!ch.carrier_busy(NodeId::new(2)), "node 2 is out of range of 0");
//! let end = ch.end_tx(t0 + SimDuration::from_micros(416), tx.id);
//! assert_eq!(end.clean_receivers, vec![NodeId::new(1)]);
//! ```

use std::collections::HashMap;

use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

use crate::ids::NodeId;
use crate::topology::Topology;

/// Identifier of an in-flight transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(u64);

impl TxId {
    /// Raw counter value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct ActiveTx {
    sender: NodeId,
    start: SimTime,
    /// Nodes that can decode the frame (communication range).
    hearers: Vec<NodeId>,
    corrupted: Vec<bool>, // parallel to hearers
    /// Nodes that merely sense the energy (interference range ⊇ hearers).
    sensers: Vec<NodeId>,
}

/// Outcome of starting a transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct TxStart {
    /// Handle to pass to [`Channel::end_tx`].
    pub id: TxId,
    /// Nodes at which the medium just became busy (carrier 0 → 1);
    /// their MACs must be notified.
    pub now_busy: Vec<NodeId>,
}

/// Outcome of finishing a transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct TxEnd {
    /// The transmitting node.
    pub sender: NodeId,
    /// When the transmission started.
    pub started: SimTime,
    /// Hearers whose copy survived collisions and loss injection.
    /// The caller must still verify each receiver's radio was active for
    /// the whole airtime before delivering to its MAC.
    pub clean_receivers: Vec<NodeId>,
    /// Hearers whose copy was corrupted (collision, half-duplex, or
    /// injected loss).
    pub corrupted_receivers: Vec<NodeId>,
    /// Nodes at which the medium just became idle (carrier 1 → 0);
    /// their MACs must be notified.
    pub now_idle: Vec<NodeId>,
}

/// Counters the channel keeps for the run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Transmissions started.
    pub transmissions: u64,
    /// (transmission, receiver) pairs corrupted by overlap or half-duplex.
    pub collisions: u64,
    /// (transmission, receiver) pairs dropped by loss injection.
    pub injected_drops: u64,
}

/// The shared medium. One instance per simulation.
#[derive(Debug)]
pub struct Channel {
    neighbors: Vec<Vec<NodeId>>,
    interference: Vec<Vec<NodeId>>,
    carrier_count: Vec<u32>,
    transmitting: Vec<bool>,
    active: HashMap<u64, ActiveTx>,
    next_tx: u64,
    drop_prob: f64,
    rng: SimRng,
    stats: ChannelStats,
}

impl Channel {
    /// Creates a channel over the given topology with no loss injection.
    pub fn new(topology: &Topology, rng: SimRng) -> Self {
        let n = topology.node_count();
        Channel {
            neighbors: topology.nodes().map(|id| topology.neighbors(id).to_vec()).collect(),
            interference: topology
                .nodes()
                .map(|id| topology.interference_neighbors(id).to_vec())
                .collect(),
            carrier_count: vec![0; n],
            transmitting: vec![false; n],
            active: HashMap::new(),
            next_tx: 0,
            drop_prob: 0.0,
            rng,
            stats: ChannelStats::default(),
        }
    }

    /// Sets the per-(frame, receiver) random drop probability used for
    /// transient-loss experiments.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.drop_prob = p;
    }

    /// Current loss-injection probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_prob
    }

    /// True if any in-flight transmission is audible at `node`.
    pub fn carrier_busy(&self, node: NodeId) -> bool {
        self.carrier_count[node.index()] > 0
    }

    /// True if `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.transmitting[node.index()]
    }

    /// Run counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Starts a transmission from `sender` lasting `airtime`.
    ///
    /// The caller must schedule a call to [`Channel::end_tx`] exactly
    /// `airtime` later and must ensure the sender's radio is active.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is already transmitting (the MAC must never do
    /// this).
    pub fn begin_tx(&mut self, now: SimTime, sender: NodeId, airtime: SimDuration) -> TxStart {
        let _ = airtime; // airtime is enforced by the caller's end event
        assert!(
            !self.transmitting[sender.index()],
            "{sender} started a second concurrent transmission"
        );
        self.stats.transmissions += 1;
        self.transmitting[sender.index()] = true;

        // The sender cannot receive while transmitting: corrupt every
        // in-flight copy addressed at it.
        for tx in self.active.values_mut() {
            if let Some(pos) = tx.hearers.iter().position(|&h| h == sender) {
                if !tx.corrupted[pos] {
                    tx.corrupted[pos] = true;
                    self.stats.collisions += 1;
                }
            }
        }

        let hearers = self.neighbors[sender.index()].clone();
        let sensers = self.interference[sender.index()].clone();
        let mut corrupted = vec![false; hearers.len()];
        let mut now_busy = Vec::new();
        // Energy is sensed — and corrupts concurrent receptions — out to
        // the interference range; only communication-range hearers can
        // decode the frame itself.
        for &h in &sensers {
            let cc = &mut self.carrier_count[h.index()];
            *cc += 1;
            if *cc == 1 {
                now_busy.push(h);
            }
            // Overlap: any second audible transmission at h destroys
            // every decodable copy there (no capture).
            if *cc >= 2 {
                for tx in self.active.values_mut() {
                    if let Some(pos) = tx.hearers.iter().position(|&x| x == h) {
                        if !tx.corrupted[pos] {
                            tx.corrupted[pos] = true;
                            self.stats.collisions += 1;
                        }
                    }
                }
            }
        }
        for (i, &h) in hearers.iter().enumerate() {
            // Half-duplex: a transmitting hearer cannot receive.
            if self.transmitting[h.index()] {
                corrupted[i] = true;
                self.stats.collisions += 1;
            }
            // The new copy is corrupted wherever other energy overlaps.
            if self.carrier_count[h.index()] >= 2 && !corrupted[i] {
                corrupted[i] = true;
                self.stats.collisions += 1;
            }
        }

        let id = self.next_tx;
        self.next_tx += 1;
        self.active.insert(
            id,
            ActiveTx {
                sender,
                start: now,
                hearers,
                corrupted,
                sensers,
            },
        );
        TxStart {
            id: TxId(id),
            now_busy,
        }
    }

    /// Finishes a transmission, returning delivery outcomes and carrier
    /// transitions.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not correspond to an in-flight transmission.
    pub fn end_tx(&mut self, now: SimTime, id: TxId) -> TxEnd {
        let _ = now;
        let tx = self
            .active
            .remove(&id.0)
            .expect("end_tx for unknown transmission");
        self.transmitting[tx.sender.index()] = false;

        let mut clean = Vec::new();
        let mut corrupted_rx = Vec::new();
        let mut now_idle = Vec::new();
        for &h in &tx.sensers {
            let cc = &mut self.carrier_count[h.index()];
            debug_assert!(*cc > 0, "carrier count underflow at {h}");
            *cc -= 1;
            if *cc == 0 {
                now_idle.push(h);
            }
        }
        for (i, &h) in tx.hearers.iter().enumerate() {
            let mut bad = tx.corrupted[i];
            if !bad && self.drop_prob > 0.0 && self.rng.chance(self.drop_prob) {
                bad = true;
                self.stats.injected_drops += 1;
            }
            if bad {
                corrupted_rx.push(h);
            } else {
                clean.push(h);
            }
        }
        TxEnd {
            sender: tx.sender,
            started: tx.start,
            clean_receivers: clean,
            corrupted_receivers: corrupted_rx,
            now_idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn t_us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0 - 1 - 2 - 3 line, only adjacent nodes hear each other.
    fn line4() -> Channel {
        let topo = Topology::line(4, 10.0, 12.0);
        Channel::new(&topo, SimRng::seed_from_u64(42))
    }

    #[test]
    fn clean_delivery_to_neighbors_only() {
        let mut ch = line4();
        let tx = ch.begin_tx(t_us(0), n(1), us(416));
        assert_eq!(tx.now_busy, vec![n(0), n(2)]);
        let end = ch.end_tx(t_us(416), tx.id);
        assert_eq!(end.clean_receivers, vec![n(0), n(2)]);
        assert!(end.corrupted_receivers.is_empty());
        assert_eq!(end.now_idle, vec![n(0), n(2)]);
        assert_eq!(ch.stats().transmissions, 1);
        assert_eq!(ch.stats().collisions, 0);
    }

    #[test]
    fn overlapping_transmissions_collide_at_common_hearer() {
        let mut ch = line4();
        // 0 and 2 both transmit; node 1 hears both -> both corrupt at 1.
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let b = ch.begin_tx(t_us(100), n(2), us(416));
        let end_a = ch.end_tx(t_us(416), a.id);
        assert!(end_a.clean_receivers.is_empty());
        assert_eq!(end_a.corrupted_receivers, vec![n(1)]);
        let end_b = ch.end_tx(t_us(516), b.id);
        // Node 3 only hears 2, so its copy survives; node 1's copy died.
        assert_eq!(end_b.clean_receivers, vec![n(3)]);
        assert_eq!(end_b.corrupted_receivers, vec![n(1)]);
        assert!(ch.stats().collisions >= 2);
    }

    #[test]
    fn non_overlapping_sequential_txs_are_clean() {
        let mut ch = line4();
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert_eq!(ea.clean_receivers, vec![n(1)]);
        let b = ch.begin_tx(t_us(500), n(2), us(416));
        let eb = ch.end_tx(t_us(916), b.id);
        assert_eq!(eb.clean_receivers, vec![n(1), n(3)]);
        assert_eq!(ch.stats().collisions, 0);
    }

    #[test]
    fn half_duplex_sender_cannot_receive() {
        let mut ch = line4();
        // 1 transmits; while it does, 2 transmits too. 1 must not receive
        // 2's frame even though only one tx is audible at 1 (its own tx
        // doesn't count toward its carrier).
        let a = ch.begin_tx(t_us(0), n(1), us(416));
        let b = ch.begin_tx(t_us(10), n(2), us(100));
        let eb = ch.end_tx(t_us(110), b.id);
        assert!(
            !eb.clean_receivers.contains(&n(1)),
            "transmitting node must not receive"
        );
        // 3 hears only 2's tx -> clean there.
        assert!(eb.clean_receivers.contains(&n(3)));
        let ea = ch.end_tx(t_us(416), a.id);
        // 1's frame is corrupted at 2 (2 was transmitting during it).
        assert!(ea.corrupted_receivers.contains(&n(2)));
        // ...and clean at 0 (0 heard only 1's frame).
        assert!(ea.clean_receivers.contains(&n(0)));
    }

    #[test]
    fn late_starter_corrupts_frame_already_in_flight() {
        let mut ch = line4();
        let a = ch.begin_tx(t_us(0), n(0), us(416)); // 1 hears
        // 2 starts mid-flight; at node 1 carrier goes 1 -> 2.
        let _b = ch.begin_tx(t_us(200), n(2), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert_eq!(ea.corrupted_receivers, vec![n(1)]);
        assert!(ea.clean_receivers.is_empty());
    }

    #[test]
    fn carrier_counts_track_busy_idle() {
        let mut ch = line4();
        assert!(!ch.carrier_busy(n(1)));
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        assert!(ch.carrier_busy(n(1)));
        assert!(!ch.carrier_busy(n(3)));
        let b = ch.begin_tx(t_us(10), n(2), us(416));
        assert!(ch.carrier_busy(n(3)));
        let ea = ch.end_tx(t_us(416), a.id);
        assert!(!ea.now_idle.contains(&n(1)), "1 still hears 2's tx");
        assert!(ch.carrier_busy(n(1)));
        let eb = ch.end_tx(t_us(426), b.id);
        assert!(eb.now_idle.contains(&n(1)));
        assert!(!ch.carrier_busy(n(1)));
        assert!(!ch.carrier_busy(n(3)));
    }

    #[test]
    fn is_transmitting_lifecycle() {
        let mut ch = line4();
        assert!(!ch.is_transmitting(n(0)));
        let a = ch.begin_tx(t_us(0), n(0), us(10));
        assert!(ch.is_transmitting(n(0)));
        ch.end_tx(t_us(10), a.id);
        assert!(!ch.is_transmitting(n(0)));
    }

    #[test]
    #[should_panic(expected = "second concurrent transmission")]
    fn double_tx_rejected() {
        let mut ch = line4();
        let _ = ch.begin_tx(t_us(0), n(0), us(10));
        let _ = ch.begin_tx(t_us(1), n(0), us(10));
    }

    #[test]
    fn loss_injection_drops_roughly_p() {
        let topo = Topology::line(2, 10.0, 12.0);
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(7));
        ch.set_drop_probability(0.3);
        let mut dropped = 0;
        let trials = 2000;
        for i in 0..trials {
            let t0 = SimTime::from_micros(i * 1000);
            let tx = ch.begin_tx(t0, n(0), us(416));
            let end = ch.end_tx(t0 + us(416), tx.id);
            if end.corrupted_receivers.contains(&n(1)) {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.05, "drop fraction {frac}");
        assert_eq!(ch.stats().injected_drops, dropped);
        assert_eq!(ch.stats().collisions, 0);
    }

    #[test]
    fn isolated_node_transmission_reaches_nobody() {
        let topo = Topology::line(2, 100.0, 10.0); // out of range
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(1));
        let tx = ch.begin_tx(t_us(0), n(0), us(416));
        assert!(tx.now_busy.is_empty());
        let end = ch.end_tx(t_us(416), tx.id);
        assert!(end.clean_receivers.is_empty());
        assert!(end.corrupted_receivers.is_empty());
    }

    #[test]
    fn tx_end_reports_start_time() {
        let mut ch = line4();
        let tx = ch.begin_tx(t_us(123), n(0), us(10));
        let end = ch.end_tx(t_us(133), tx.id);
        assert_eq!(end.started, t_us(123));
        assert_eq!(end.sender, n(0));
    }
}

#[cfg(test)]
mod interference_tests {
    use super::*;
    use crate::topology::Topology;
    use essat_sim::rng::SimRng;
    use essat_sim::time::{SimDuration, SimTime};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn t_us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Line 0-1-2-3 spaced 10 m apart: communication 12 m (adjacent
    /// only), interference 22 m (two hops).
    fn two_range() -> Channel {
        let topo = Topology::line(4, 10.0, 12.0).with_interference_range(22.0);
        Channel::new(&topo, SimRng::seed_from_u64(5))
    }

    #[test]
    fn interference_is_sensed_but_not_decoded() {
        let mut ch = two_range();
        let tx = ch.begin_tx(t_us(0), n(0), us(416));
        // Node 2 senses node 0 (22 m reach) but cannot decode it.
        assert!(ch.carrier_busy(n(2)), "carrier sensed at interference range");
        assert!(tx.now_busy.contains(&n(2)));
        assert!(!ch.carrier_busy(n(3)), "three hops is beyond interference");
        let end = ch.end_tx(t_us(416), tx.id);
        assert_eq!(end.clean_receivers, vec![n(1)], "only comm-range decodes");
        assert!(!end.corrupted_receivers.contains(&n(2)));
        assert!(end.now_idle.contains(&n(2)));
        assert!(!ch.carrier_busy(n(2)));
    }

    #[test]
    fn hidden_interferer_corrupts_reception() {
        let mut ch = two_range();
        // 0 transmits to 1; 3 transmits concurrently. 3 is outside 1's
        // communication range but inside its interference range — the
        // classic hidden-terminal corruption the one-range model misses.
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let _b = ch.begin_tx(t_us(100), n(3), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert!(
            ea.corrupted_receivers.contains(&n(1)),
            "interference-range overlap must corrupt"
        );
        assert!(ea.clean_receivers.is_empty());
    }

    #[test]
    fn one_range_default_unchanged() {
        // Without an explicit interference range the two lists coincide,
        // so 3's transmission cannot affect 1.
        let topo = Topology::line(4, 10.0, 12.0);
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(5));
        let a = ch.begin_tx(t_us(0), n(0), us(416));
        let _b = ch.begin_tx(t_us(100), n(3), us(416));
        let ea = ch.end_tx(t_us(416), a.id);
        assert_eq!(ea.clean_receivers, vec![n(1)]);
    }
}
