//! Network topology: node placement plus the unit-disk connectivity graph.
//!
//! A [`Topology`] fixes node positions and a communication range and
//! precomputes the neighbour lists used by the channel (who hears whom)
//! and by routing-tree construction (BFS levels from the root).
//!
//! # Examples
//!
//! ```
//! use essat_net::topology::Topology;
//! use essat_sim::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let topo = Topology::random_paper(&mut rng);
//! assert_eq!(topo.node_count(), 80);
//! let root = topo.closest_to_center();
//! let levels = topo.bfs_levels(root);
//! assert_eq!(levels[root.index()], Some(0));
//! ```

use essat_sim::rng::SimRng;

use crate::geometry::{Area, Position};
use crate::ids::NodeId;

/// The paper's communication range in metres.
pub const PAPER_RANGE_M: f64 = 125.0;
/// The paper's node count.
pub const PAPER_NODE_COUNT: u32 = 80;
/// Only nodes within this distance of the root join the routing tree in
/// the paper's setup.
pub const PAPER_TREE_RADIUS_M: f64 = 300.0;

/// Uniform spatial grid over the nodes' bounding box, used to answer
/// disk queries (adjacency construction, [`Topology::closest_to`],
/// [`Topology::nodes_within`]) without scanning every node.
///
/// Buckets are stored CSR-style; node ids are ascending within a cell,
/// and query results are re-sorted so callers see the same ascending
/// order the old linear scans produced.
#[derive(Debug, Clone)]
struct SpatialGrid {
    min_x: f64,
    min_y: f64,
    cell_w: f64,
    cell_h: f64,
    cols: usize,
    rows: usize,
    /// `items[starts[c]..starts[c+1]]` are the node indices in cell `c`.
    starts: Vec<u32>,
    items: Vec<u32>,
}

impl SpatialGrid {
    /// Builds a grid with cells of roughly `target_cell` metres (clamped
    /// so pathological ranges cannot explode the cell count).
    fn build(positions: &[Position], target_cell: f64) -> SpatialGrid {
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let w = (max_x - min_x).max(1e-9);
        let h = (max_y - min_y).max(1e-9);
        let target = target_cell.max(1e-9);
        let cols = ((w / target).ceil() as usize).clamp(1, 256);
        let rows = ((h / target).ceil() as usize).clamp(1, 256);
        let cell_w = w / cols as f64;
        let cell_h = h / rows as f64;
        // Counting sort of nodes into CSR buckets (stable, so ids stay
        // ascending within each cell).
        let mut counts = vec![0u32; cols * rows + 1];
        let cell_of = |p: Position| -> usize {
            let cx = (((p.x - min_x) / cell_w) as usize).min(cols - 1);
            let cy = (((p.y - min_y) / cell_h) as usize).min(rows - 1);
            cy * cols + cx
        };
        for p in positions {
            counts[cell_of(*p) + 1] += 1;
        }
        for c in 1..counts.len() {
            counts[c] += counts[c - 1];
        }
        let starts = counts.clone();
        let mut fill = counts;
        let mut items = vec![0u32; positions.len()];
        for (i, p) in positions.iter().enumerate() {
            let c = cell_of(*p);
            items[fill[c] as usize] = i as u32;
            fill[c] += 1;
        }
        SpatialGrid {
            min_x,
            min_y,
            cell_w,
            cell_h,
            cols,
            rows,
            starts,
            items,
        }
    }

    fn cell(&self, cx: usize, cy: usize) -> &[u32] {
        let c = cy * self.cols + cx;
        &self.items[self.starts[c] as usize..self.starts[c + 1] as usize]
    }

    /// Calls `f` with every node index whose cell intersects the square
    /// of half-width `radius` around `p` (a superset of the disk).
    fn for_each_candidate(&self, p: Position, radius: f64, mut f: impl FnMut(u32)) {
        let cx0 = (((p.x - radius - self.min_x) / self.cell_w).floor().max(0.0) as usize)
            .min(self.cols - 1);
        let cx1 = (((p.x + radius - self.min_x) / self.cell_w).floor().max(0.0) as usize)
            .min(self.cols - 1);
        let cy0 = (((p.y - radius - self.min_y) / self.cell_h).floor().max(0.0) as usize)
            .min(self.rows - 1);
        let cy1 = (((p.y + radius - self.min_y) / self.cell_h).floor().max(0.0) as usize)
            .min(self.rows - 1);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &i in self.cell(cx, cy) {
                    f(i);
                }
            }
        }
    }

    /// The node index closest to `p`, ties broken towards the lowest
    /// index (matching a first-wins linear scan). Expands cell rings
    /// outward until no unscanned cell can hold a closer node.
    fn closest(&self, positions: &[Position], p: Position) -> u32 {
        // Clamp p into the grid; projection onto the bounding box is
        // non-expansive, so ring lower bounds computed from the clamped
        // cell remain valid lower bounds for the true distances.
        let ccx = (((p.x - self.min_x) / self.cell_w).floor().max(0.0) as usize).min(self.cols - 1);
        let ccy = (((p.y - self.min_y) / self.cell_h).floor().max(0.0) as usize).min(self.rows - 1);
        let min_cell = self.cell_w.min(self.cell_h);
        let mut best: Option<(f64, u32)> = None;
        let max_ring = self.cols.max(self.rows);
        for k in 0..=max_ring {
            if let Some((bd, _)) = best {
                // Cells at Chebyshev ring k are at least (k-1) cells
                // away from p's cell: nothing closer can appear there.
                if ((k as f64) - 1.0) * min_cell > bd.sqrt() {
                    break;
                }
            }
            let lo_x = ccx.saturating_sub(k);
            let hi_x = (ccx + k).min(self.cols - 1);
            let lo_y = ccy.saturating_sub(k);
            let hi_y = (ccy + k).min(self.rows - 1);
            for cy in lo_y..=hi_y {
                for cx in lo_x..=hi_x {
                    let on_ring = cy == lo_y || cy == hi_y || cx == lo_x || cx == hi_x;
                    let is_new = k == 0
                        || cx < ccx.saturating_sub(k - 1)
                        || cx > (ccx + k - 1).min(self.cols - 1)
                        || cy < ccy.saturating_sub(k - 1)
                        || cy > (ccy + k - 1).min(self.rows - 1);
                    if !(on_ring && is_new) {
                        continue;
                    }
                    for &i in self.cell(cx, cy) {
                        let d = positions[i as usize].distance_sq(p);
                        let better = match best {
                            None => true,
                            Some((bd, bi)) => d < bd || (d == bd && i < bi),
                        };
                        if better {
                            best = Some((d, i));
                        }
                    }
                }
            }
        }
        best.expect("grid holds at least one node").1
    }
}

/// Immutable node placement + unit-disk adjacency.
///
/// Two radii are tracked: the **communication range** (frames decode)
/// and an optional larger **interference range** (transmissions are
/// sensed as energy and can corrupt concurrent receptions, but carry no
/// decodable frame) — the classic two-range model of ns-2.
///
/// Construction and the point queries ([`Topology::closest_to`],
/// [`Topology::nodes_within`]) run over a uniform spatial grid index
/// rather than scanning all `n` nodes (or all `n²` pairs).
#[derive(Debug, Clone)]
pub struct Topology {
    area: Area,
    range: f64,
    interference_range: f64,
    positions: Vec<Position>,
    neighbors: Vec<Vec<NodeId>>,
    interference_neighbors: Vec<Vec<NodeId>>,
    grid: SpatialGrid,
}

/// Builds per-node disk adjacency (excluding self) via the grid; lists
/// come out ascending, matching what the old pairwise scan produced.
fn disk_adjacency(grid: &SpatialGrid, positions: &[Position], radius: f64) -> Vec<Vec<NodeId>> {
    let r_sq = radius * radius;
    positions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let mut list: Vec<NodeId> = Vec::new();
            grid.for_each_candidate(p, radius, |j| {
                if j as usize != i && positions[j as usize].distance_sq(p) <= r_sq {
                    list.push(NodeId::new(j));
                }
            });
            list.sort_unstable();
            list
        })
        .collect()
}

impl Topology {
    /// Builds a topology from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `range` is not strictly positive.
    pub fn from_positions(area: Area, range: f64, positions: Vec<Position>) -> Self {
        assert!(!positions.is_empty(), "topology needs at least one node");
        assert!(
            range.is_finite() && range > 0.0,
            "communication range must be positive, got {range}"
        );
        let grid = SpatialGrid::build(&positions, range);
        let neighbors = disk_adjacency(&grid, &positions, range);
        let interference_neighbors = neighbors.clone();
        Topology {
            area,
            range,
            interference_range: range,
            positions,
            neighbors,
            interference_neighbors,
            grid,
        }
    }

    /// Sets an interference range larger than the communication range:
    /// transmissions are *sensed* (and corrupt concurrent receptions)
    /// out to this distance, but only decode within the communication
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `r` is smaller than the communication range.
    pub fn with_interference_range(mut self, r: f64) -> Self {
        assert!(
            r >= self.range,
            "interference range {r} below communication range {}",
            self.range
        );
        self.interference_range = r;
        self.interference_neighbors = disk_adjacency(&self.grid, &self.positions, r);
        self
    }

    /// Uniform-random placement of `n` nodes.
    pub fn random(n: u32, area: Area, range: f64, rng: &mut SimRng) -> Self {
        assert!(n > 0, "topology needs at least one node");
        let positions = (0..n).map(|_| area.random_position(rng)).collect();
        Topology::from_positions(area, range, positions)
    }

    /// The paper's deployment: 80 nodes in 500 × 500 m², 125 m range.
    pub fn random_paper(rng: &mut SimRng) -> Self {
        Topology::random(PAPER_NODE_COUNT, Area::paper(), PAPER_RANGE_M, rng)
    }

    /// A straight line of `n` nodes with the given spacing — handy for
    /// tests where ranks must be exact.
    pub fn line(n: u32, spacing: f64, range: f64) -> Self {
        assert!(n > 0);
        let width = (spacing * n as f64).max(1.0);
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * spacing, 0.5))
            .collect();
        Topology::from_positions(Area::new(width, 1.0), range, positions)
    }

    /// A `cols × rows` grid with the given spacing.
    pub fn grid(cols: u32, rows: u32, spacing: f64, range: f64) -> Self {
        assert!(cols > 0 && rows > 0);
        let mut positions = Vec::with_capacity((cols * rows) as usize);
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Position::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        let w = (spacing * cols as f64).max(1.0);
        let h = (spacing * rows as f64).max(1.0);
        Topology::from_positions(Area::new(w, h), range, positions)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        NodeId::all(self.positions.len() as u32)
    }

    /// The deployment area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The communication range in metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The interference range in metres (equals the communication range
    /// unless overridden).
    pub fn interference_range(&self) -> f64 {
        self.interference_range
    }

    /// Nodes that *sense* transmissions from `node` (within the
    /// interference range, excluding itself). A superset of
    /// [`Topology::neighbors`].
    pub fn interference_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.interference_neighbors[node.index()]
    }

    /// Position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// All positions, indexed by node id.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Nodes within communication range of `node` (excluding itself).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// True if `a` and `b` are within communication range of each other.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        a != b
            && self.positions[a.index()].distance_sq(self.positions[b.index()])
                <= self.range * self.range
    }

    /// The node closest to the centre of the area — the paper's root.
    pub fn closest_to_center(&self) -> NodeId {
        self.closest_to(self.area.center())
    }

    /// The node closest to an arbitrary point (grid ring search; ties
    /// resolve to the lowest node id, as a linear scan would).
    pub fn closest_to(&self, p: Position) -> NodeId {
        NodeId::new(self.grid.closest(&self.positions, p))
    }

    /// Nodes within `radius` of `center`'s position (including `center`),
    /// in ascending id order.
    pub fn nodes_within(&self, center: NodeId, radius: f64) -> Vec<NodeId> {
        let c = self.positions[center.index()];
        let r_sq = radius * radius;
        let mut out = Vec::new();
        self.grid.for_each_candidate(c, radius, |i| {
            if self.positions[i as usize].distance_sq(c) <= r_sq {
                out.push(NodeId::new(i));
            }
        });
        out.sort_unstable();
        out
    }

    /// BFS hop distance from `root` over the connectivity graph;
    /// `None` for unreachable nodes.
    pub fn bfs_levels(&self, root: NodeId) -> Vec<Option<u32>> {
        let mut levels = vec![None; self.node_count()];
        levels[root.index()] = Some(0);
        let mut frontier = vec![root];
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &self.neighbors[u.index()] {
                    if levels[v.index()].is_none() {
                        levels[v.index()] = Some(depth);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        levels
    }

    /// True if every node in `subset` can reach `root` using only edges
    /// between subset members.
    pub fn is_connected_subset(&self, root: NodeId, subset: &[NodeId]) -> bool {
        let in_subset: Vec<bool> = {
            let mut v = vec![false; self.node_count()];
            for &n in subset {
                v[n.index()] = true;
            }
            v
        };
        if !in_subset[root.index()] {
            return false;
        }
        let mut seen = vec![false; self.node_count()];
        seen[root.index()] = true;
        let mut stack = vec![root];
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.neighbors[u.index()] {
                if in_subset[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == subset.iter().filter(|n| in_subset[n.index()]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_adjacency() {
        let t = Topology::line(5, 10.0, 12.0);
        assert_eq!(t.node_count(), 5);
        // Each interior node hears exactly its two neighbours.
        assert_eq!(
            t.neighbors(NodeId::new(2)),
            &[NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(t.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert!(t.are_neighbors(NodeId::new(0), NodeId::new(1)));
        assert!(!t.are_neighbors(NodeId::new(0), NodeId::new(2)));
        assert!(!t.are_neighbors(NodeId::new(3), NodeId::new(3)));
    }

    #[test]
    fn grid_dimensions() {
        let t = Topology::grid(4, 3, 10.0, 10.5);
        assert_eq!(t.node_count(), 12);
        // Corner node has 2 neighbours, interior has 4.
        assert_eq!(t.neighbors(NodeId::new(0)).len(), 2);
        assert_eq!(t.neighbors(NodeId::new(5)).len(), 4);
    }

    #[test]
    fn bfs_levels_on_line() {
        let t = Topology::line(4, 10.0, 11.0);
        let levels = t.bfs_levels(NodeId::new(0));
        assert_eq!(levels, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        // Two nodes too far apart to hear each other.
        let t = Topology::line(2, 100.0, 10.0);
        let levels = t.bfs_levels(NodeId::new(0));
        assert_eq!(levels, vec![Some(0), None]);
    }

    #[test]
    fn closest_to_center_paper_setup() {
        let mut rng = SimRng::seed_from_u64(77);
        let t = Topology::random_paper(&mut rng);
        let root = t.closest_to_center();
        let c = t.area().center();
        let d_root = t.position(root).distance_to(c);
        for n in t.nodes() {
            assert!(t.position(n).distance_to(c) >= d_root);
        }
    }

    #[test]
    fn nodes_within_radius() {
        let t = Topology::line(5, 10.0, 100.0);
        let near = t.nodes_within(NodeId::new(0), 25.0);
        assert_eq!(near, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn adjacency_is_symmetric_random() {
        let mut rng = SimRng::seed_from_u64(9);
        let t = Topology::random(40, Area::new(200.0, 200.0), 60.0, &mut rng);
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a), "{a} -> {b} not symmetric");
            }
        }
    }

    #[test]
    fn connected_subset() {
        let t = Topology::line(5, 10.0, 11.0);
        let all: Vec<NodeId> = t.nodes().collect();
        assert!(t.is_connected_subset(NodeId::new(0), &all));
        // Removing the middle node disconnects the ends.
        let broken: Vec<NodeId> = [0u32, 1, 3, 4].iter().map(|&i| NodeId::new(i)).collect();
        assert!(!t.is_connected_subset(NodeId::new(0), &broken));
    }

    #[test]
    fn random_topology_positions_inside_area() {
        let mut rng = SimRng::seed_from_u64(123);
        let t = Topology::random(30, Area::new(50.0, 80.0), 20.0, &mut rng);
        for n in t.nodes() {
            assert!(t.area().contains(t.position(n)));
        }
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;

    /// Grid adjacency must equal the brute-force pairwise scan.
    #[test]
    fn grid_adjacency_matches_bruteforce() {
        for seed in [1u64, 7, 42] {
            let mut rng = SimRng::seed_from_u64(seed);
            let t = Topology::random(60, Area::new(300.0, 200.0), 70.0, &mut rng);
            let r_sq = t.range() * t.range();
            for a in t.nodes() {
                let expect: Vec<NodeId> = t
                    .nodes()
                    .filter(|&b| b != a && t.position(a).distance_sq(t.position(b)) <= r_sq)
                    .collect();
                assert_eq!(t.neighbors(a), expect.as_slice(), "node {a}");
            }
        }
    }

    /// Grid closest_to must match the linear scan, including its
    /// lowest-id tie-breaking.
    #[test]
    fn grid_closest_matches_bruteforce() {
        let mut rng = SimRng::seed_from_u64(5);
        let t = Topology::random(50, Area::new(400.0, 400.0), 60.0, &mut rng);
        let mut probe_rng = SimRng::seed_from_u64(6);
        for _ in 0..200 {
            // Probe points inside and well outside the bounding box.
            let p = Position::new(
                probe_rng.range_f64(-100.0, 500.0),
                probe_rng.range_f64(-100.0, 500.0),
            );
            let mut best = NodeId::new(0);
            let mut best_d = f64::INFINITY;
            for n in t.nodes() {
                let d = t.position(n).distance_sq(p);
                if d < best_d {
                    best_d = d;
                    best = n;
                }
            }
            assert_eq!(t.closest_to(p), best, "probe {p:?}");
        }
    }

    /// Exact-tie probes resolve to the lowest id.
    #[test]
    fn grid_closest_breaks_ties_low_id() {
        let t = Topology::grid(3, 3, 10.0, 12.0);
        // The probe sits equidistant from nodes 0, 1, 3, and 4; the
        // lowest id must win the tie, as with a first-wins linear scan.
        let p = Position::new(5.0, 5.0);
        assert_eq!(t.closest_to(p), NodeId::new(0));
    }

    /// nodes_within via the grid equals the linear filter, in order.
    #[test]
    fn grid_nodes_within_matches_bruteforce() {
        let mut rng = SimRng::seed_from_u64(11);
        let t = Topology::random(60, Area::new(250.0, 250.0), 40.0, &mut rng);
        for center in t.nodes() {
            for radius in [5.0, 60.0, 400.0] {
                let c = t.position(center);
                let expect: Vec<NodeId> = t
                    .nodes()
                    .filter(|&n| t.position(n).distance_sq(c) <= radius * radius)
                    .collect();
                assert_eq!(t.nodes_within(center, radius), expect);
            }
        }
    }
}

#[cfg(test)]
mod interference_topology_tests {
    use super::*;

    #[test]
    fn interference_neighbors_are_superset() {
        let t = Topology::line(5, 10.0, 12.0).with_interference_range(25.0);
        assert_eq!(t.interference_range(), 25.0);
        for n in t.nodes() {
            for c in t.neighbors(n) {
                assert!(t.interference_neighbors(n).contains(c));
            }
        }
        // Node 0 decodes only node 1 but senses node 2 as well.
        assert_eq!(t.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            t.interference_neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn default_interference_equals_comm() {
        let t = Topology::line(4, 10.0, 12.0);
        assert_eq!(t.interference_range(), t.range());
        for n in t.nodes() {
            assert_eq!(t.neighbors(n), t.interference_neighbors(n));
        }
    }

    #[test]
    #[should_panic(expected = "below communication range")]
    fn shrinking_interference_rejected() {
        let _ = Topology::line(3, 10.0, 12.0).with_interference_range(5.0);
    }
}
