//! Network topology: node placement plus the unit-disk connectivity graph.
//!
//! A [`Topology`] fixes node positions and a communication range and
//! precomputes the neighbour lists used by the channel (who hears whom)
//! and by routing-tree construction (BFS levels from the root).
//!
//! # Examples
//!
//! ```
//! use essat_net::topology::Topology;
//! use essat_sim::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let topo = Topology::random_paper(&mut rng);
//! assert_eq!(topo.node_count(), 80);
//! let root = topo.closest_to_center();
//! let levels = topo.bfs_levels(root);
//! assert_eq!(levels[root.index()], Some(0));
//! ```

use essat_sim::rng::SimRng;

use crate::geometry::{Area, Position};
use crate::ids::NodeId;

/// The paper's communication range in metres.
pub const PAPER_RANGE_M: f64 = 125.0;
/// The paper's node count.
pub const PAPER_NODE_COUNT: u32 = 80;
/// Only nodes within this distance of the root join the routing tree in
/// the paper's setup.
pub const PAPER_TREE_RADIUS_M: f64 = 300.0;

/// Immutable node placement + unit-disk adjacency.
///
/// Two radii are tracked: the **communication range** (frames decode)
/// and an optional larger **interference range** (transmissions are
/// sensed as energy and can corrupt concurrent receptions, but carry no
/// decodable frame) — the classic two-range model of ns-2.
#[derive(Debug, Clone)]
pub struct Topology {
    area: Area,
    range: f64,
    interference_range: f64,
    positions: Vec<Position>,
    neighbors: Vec<Vec<NodeId>>,
    interference_neighbors: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from explicit positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `range` is not strictly positive.
    pub fn from_positions(area: Area, range: f64, positions: Vec<Position>) -> Self {
        assert!(!positions.is_empty(), "topology needs at least one node");
        assert!(
            range.is_finite() && range > 0.0,
            "communication range must be positive, got {range}"
        );
        let n = positions.len();
        let range_sq = range * range;
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if positions[i].distance_sq(positions[j]) <= range_sq {
                    neighbors[i].push(NodeId::new(j as u32));
                    neighbors[j].push(NodeId::new(i as u32));
                }
            }
        }
        let interference_neighbors = neighbors.clone();
        Topology {
            area,
            range,
            interference_range: range,
            positions,
            neighbors,
            interference_neighbors,
        }
    }

    /// Sets an interference range larger than the communication range:
    /// transmissions are *sensed* (and corrupt concurrent receptions)
    /// out to this distance, but only decode within the communication
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `r` is smaller than the communication range.
    pub fn with_interference_range(mut self, r: f64) -> Self {
        assert!(
            r >= self.range,
            "interference range {r} below communication range {}",
            self.range
        );
        self.interference_range = r;
        let n = self.positions.len();
        let r_sq = r * r;
        let mut nb = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if self.positions[i].distance_sq(self.positions[j]) <= r_sq {
                    nb[i].push(NodeId::new(j as u32));
                    nb[j].push(NodeId::new(i as u32));
                }
            }
        }
        self.interference_neighbors = nb;
        self
    }

    /// Uniform-random placement of `n` nodes.
    pub fn random(n: u32, area: Area, range: f64, rng: &mut SimRng) -> Self {
        assert!(n > 0, "topology needs at least one node");
        let positions = (0..n).map(|_| area.random_position(rng)).collect();
        Topology::from_positions(area, range, positions)
    }

    /// The paper's deployment: 80 nodes in 500 × 500 m², 125 m range.
    pub fn random_paper(rng: &mut SimRng) -> Self {
        Topology::random(PAPER_NODE_COUNT, Area::paper(), PAPER_RANGE_M, rng)
    }

    /// A straight line of `n` nodes with the given spacing — handy for
    /// tests where ranks must be exact.
    pub fn line(n: u32, spacing: f64, range: f64) -> Self {
        assert!(n > 0);
        let width = (spacing * n as f64).max(1.0);
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * spacing, 0.5))
            .collect();
        Topology::from_positions(Area::new(width, 1.0), range, positions)
    }

    /// A `cols × rows` grid with the given spacing.
    pub fn grid(cols: u32, rows: u32, spacing: f64, range: f64) -> Self {
        assert!(cols > 0 && rows > 0);
        let mut positions = Vec::with_capacity((cols * rows) as usize);
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Position::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        let w = (spacing * cols as f64).max(1.0);
        let h = (spacing * rows as f64).max(1.0);
        Topology::from_positions(Area::new(w, h), range, positions)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        NodeId::all(self.positions.len() as u32)
    }

    /// The deployment area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The communication range in metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The interference range in metres (equals the communication range
    /// unless overridden).
    pub fn interference_range(&self) -> f64 {
        self.interference_range
    }

    /// Nodes that *sense* transmissions from `node` (within the
    /// interference range, excluding itself). A superset of
    /// [`Topology::neighbors`].
    pub fn interference_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.interference_neighbors[node.index()]
    }

    /// Position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// All positions, indexed by node id.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Nodes within communication range of `node` (excluding itself).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// True if `a` and `b` are within communication range of each other.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.positions[a.index()].distance_sq(self.positions[b.index()])
            <= self.range * self.range
    }

    /// The node closest to the centre of the area — the paper's root.
    pub fn closest_to_center(&self) -> NodeId {
        self.closest_to(self.area.center())
    }

    /// The node closest to an arbitrary point.
    pub fn closest_to(&self, p: Position) -> NodeId {
        let mut best = NodeId::new(0);
        let mut best_d = f64::INFINITY;
        for (i, pos) in self.positions.iter().enumerate() {
            let d = pos.distance_sq(p);
            if d < best_d {
                best_d = d;
                best = NodeId::new(i as u32);
            }
        }
        best
    }

    /// Nodes within `radius` of `center`'s position (including `center`).
    pub fn nodes_within(&self, center: NodeId, radius: f64) -> Vec<NodeId> {
        let c = self.positions[center.index()];
        let r_sq = radius * radius;
        self.nodes()
            .filter(|&n| self.positions[n.index()].distance_sq(c) <= r_sq)
            .collect()
    }

    /// BFS hop distance from `root` over the connectivity graph;
    /// `None` for unreachable nodes.
    pub fn bfs_levels(&self, root: NodeId) -> Vec<Option<u32>> {
        let mut levels = vec![None; self.node_count()];
        levels[root.index()] = Some(0);
        let mut frontier = vec![root];
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &self.neighbors[u.index()] {
                    if levels[v.index()].is_none() {
                        levels[v.index()] = Some(depth);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        levels
    }

    /// True if every node in `subset` can reach `root` using only edges
    /// between subset members.
    pub fn is_connected_subset(&self, root: NodeId, subset: &[NodeId]) -> bool {
        let in_subset: Vec<bool> = {
            let mut v = vec![false; self.node_count()];
            for &n in subset {
                v[n.index()] = true;
            }
            v
        };
        if !in_subset[root.index()] {
            return false;
        }
        let mut seen = vec![false; self.node_count()];
        seen[root.index()] = true;
        let mut stack = vec![root];
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.neighbors[u.index()] {
                if in_subset[v.index()] && !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == subset.iter().filter(|n| in_subset[n.index()]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_adjacency() {
        let t = Topology::line(5, 10.0, 12.0);
        assert_eq!(t.node_count(), 5);
        // Each interior node hears exactly its two neighbours.
        assert_eq!(t.neighbors(NodeId::new(2)), &[NodeId::new(1), NodeId::new(3)]);
        assert_eq!(t.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert!(t.are_neighbors(NodeId::new(0), NodeId::new(1)));
        assert!(!t.are_neighbors(NodeId::new(0), NodeId::new(2)));
        assert!(!t.are_neighbors(NodeId::new(3), NodeId::new(3)));
    }

    #[test]
    fn grid_dimensions() {
        let t = Topology::grid(4, 3, 10.0, 10.5);
        assert_eq!(t.node_count(), 12);
        // Corner node has 2 neighbours, interior has 4.
        assert_eq!(t.neighbors(NodeId::new(0)).len(), 2);
        assert_eq!(t.neighbors(NodeId::new(5)).len(), 4);
    }

    #[test]
    fn bfs_levels_on_line() {
        let t = Topology::line(4, 10.0, 11.0);
        let levels = t.bfs_levels(NodeId::new(0));
        assert_eq!(levels, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        // Two nodes too far apart to hear each other.
        let t = Topology::line(2, 100.0, 10.0);
        let levels = t.bfs_levels(NodeId::new(0));
        assert_eq!(levels, vec![Some(0), None]);
    }

    #[test]
    fn closest_to_center_paper_setup() {
        let mut rng = SimRng::seed_from_u64(77);
        let t = Topology::random_paper(&mut rng);
        let root = t.closest_to_center();
        let c = t.area().center();
        let d_root = t.position(root).distance_to(c);
        for n in t.nodes() {
            assert!(t.position(n).distance_to(c) >= d_root);
        }
    }

    #[test]
    fn nodes_within_radius() {
        let t = Topology::line(5, 10.0, 100.0);
        let near = t.nodes_within(NodeId::new(0), 25.0);
        assert_eq!(near, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn adjacency_is_symmetric_random() {
        let mut rng = SimRng::seed_from_u64(9);
        let t = Topology::random(40, Area::new(200.0, 200.0), 60.0, &mut rng);
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a), "{a} -> {b} not symmetric");
            }
        }
    }

    #[test]
    fn connected_subset() {
        let t = Topology::line(5, 10.0, 11.0);
        let all: Vec<NodeId> = t.nodes().collect();
        assert!(t.is_connected_subset(NodeId::new(0), &all));
        // Removing the middle node disconnects the ends.
        let broken: Vec<NodeId> = [0u32, 1, 3, 4].iter().map(|&i| NodeId::new(i)).collect();
        assert!(!t.is_connected_subset(NodeId::new(0), &broken));
    }

    #[test]
    fn random_topology_positions_inside_area() {
        let mut rng = SimRng::seed_from_u64(123);
        let t = Topology::random(30, Area::new(50.0, 80.0), 20.0, &mut rng);
        for n in t.nodes() {
            assert!(t.area().contains(t.position(n)));
        }
    }
}

#[cfg(test)]
mod interference_topology_tests {
    use super::*;

    #[test]
    fn interference_neighbors_are_superset() {
        let t = Topology::line(5, 10.0, 12.0).with_interference_range(25.0);
        assert_eq!(t.interference_range(), 25.0);
        for n in t.nodes() {
            for c in t.neighbors(n) {
                assert!(t.interference_neighbors(n).contains(c));
            }
        }
        // Node 0 decodes only node 1 but senses node 2 as well.
        assert_eq!(t.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            t.interference_neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn default_interference_equals_comm() {
        let t = Topology::line(4, 10.0, 12.0);
        assert_eq!(t.interference_range(), t.range());
        for n in t.nodes() {
            assert_eq!(t.neighbors(n), t.interference_neighbors(n));
        }
    }

    #[test]
    #[should_panic(expected = "below communication range")]
    fn shrinking_interference_rejected() {
        let _ = Topology::line(3, 10.0, 12.0).with_interference_range(5.0);
    }
}
