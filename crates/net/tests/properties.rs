//! Property-based tests of the wireless substrate.

use proptest::prelude::*;

use essat_net::channel::Channel;
use essat_net::frame::airtime;
use essat_net::geometry::Area;
use essat_net::ids::NodeId;
use essat_net::radio::{Radio, RadioParams};
use essat_net::topology::Topology;
use essat_sim::rng::SimRng;
use essat_sim::time::{SimDuration, SimTime};

proptest! {
    /// Unit-disk adjacency is symmetric and irreflexive on random
    /// topologies.
    #[test]
    fn adjacency_symmetric(seed in any::<u64>(), n in 2u32..60, range in 10.0f64..200.0) {
        let mut rng = SimRng::seed_from_u64(seed);
        let topo = Topology::random(n, Area::new(300.0, 300.0), range, &mut rng);
        for a in topo.nodes() {
            prop_assert!(!topo.neighbors(a).contains(&a), "self-loop at {a}");
            for &b in topo.neighbors(a) {
                prop_assert!(topo.neighbors(b).contains(&a));
            }
        }
    }

    /// BFS levels step by exactly one along tree edges and the root is
    /// level zero.
    #[test]
    fn bfs_levels_consistent(seed in any::<u64>(), n in 2u32..60) {
        let mut rng = SimRng::seed_from_u64(seed);
        let topo = Topology::random(n, Area::new(250.0, 250.0), 80.0, &mut rng);
        let root = topo.closest_to_center();
        let levels = topo.bfs_levels(root);
        prop_assert_eq!(levels[root.index()], Some(0));
        for u in topo.nodes() {
            if let Some(lu) = levels[u.index()] {
                for &v in topo.neighbors(u) {
                    if let Some(lv) = levels[v.index()] {
                        prop_assert!(lu.abs_diff(lv) <= 1, "neighbour levels differ by >1");
                    }
                }
            }
        }
    }

    /// Every transmission's receivers partition into clean + corrupted =
    /// hearers, and carrier counts return to zero when the air clears.
    #[test]
    fn channel_conserves_receivers(
        seed in any::<u64>(),
        n in 3u32..40,
        txs in proptest::collection::vec((0u32..40, 0u64..5_000), 1..30),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let topo = Topology::random(n, Area::new(200.0, 200.0), 70.0, &mut rng);
        let mut ch = Channel::new(&topo, SimRng::seed_from_u64(seed ^ 1));
        let air = SimDuration::from_micros(416);
        // Start transmissions (skipping busy senders), then end them all.
        let mut live: Vec<(NodeId, essat_net::channel::TxId, usize)> = Vec::new();
        for &(s, t_us) in &txs {
            let sender = NodeId::new(s % n);
            if ch.is_transmitting(sender) {
                continue;
            }
            let t = SimTime::from_micros(5_000 + t_us);
            let start = ch.begin_tx(t, sender, air);
            let hearers = topo.neighbors(sender).len();
            live.push((sender, start.id, hearers));
        }
        for (i, (sender, id, hearers)) in live.iter().enumerate() {
            let end = ch.end_tx(SimTime::from_micros(20_000 + i as u64), *id);
            prop_assert_eq!(end.sender, *sender);
            prop_assert_eq!(
                end.clean_receivers.len() + end.corrupted_receivers.len(),
                *hearers,
                "receiver partition broken"
            );
        }
        for node in topo.nodes() {
            prop_assert!(!ch.carrier_busy(node), "carrier stuck busy at {node}");
            prop_assert!(!ch.is_transmitting(node));
        }
    }

    /// Airtime is linear in bytes and inversely proportional to bitrate.
    #[test]
    fn airtime_scaling(bytes in 1u32..10_000, rate_kbps in 1u64..100_000) {
        let rate = rate_kbps * 1000;
        let t1 = airtime(bytes, rate);
        let t2 = airtime(bytes * 2, rate);
        // Doubling bytes doubles airtime (within integer rounding).
        let diff = t2.as_nanos() as i128 - 2 * t1.as_nanos() as i128;
        prop_assert!(diff.abs() <= 2, "airtime not linear: {t1} vs {t2}");
    }

    /// Radio accounting: active + off + transition always equals elapsed
    /// time, for any legal sleep/wake schedule.
    #[test]
    fn radio_accounting_conserves_time(
        gaps_ms in proptest::collection::vec(1u64..200, 1..20),
    ) {
        let mut r = Radio::new(RadioParams::mica2());
        let mut now = SimTime::ZERO;
        for (i, &g) in gaps_ms.iter().enumerate() {
            now += SimDuration::from_millis(g);
            if i % 2 == 0 {
                let d = r.begin_sleep(now).expect("active");
                now += d;
                r.finish_transition(now);
            } else {
                let d = r.begin_wake(now).expect("off");
                now += d;
                r.finish_transition(now);
            }
        }
        now += SimDuration::from_millis(5);
        r.settle(now);
        prop_assert_eq!(
            r.active_ns() + r.off_ns() + r.transition_ns(),
            now.as_nanos(),
            "accounting must cover the whole run"
        );
        // Duty cycle well-formed.
        let duty = r.duty_cycle();
        prop_assert!((0.0..=1.0).contains(&duty));
        // Sleep intervals are non-overlapping and positive.
        let si = r.sleep_intervals();
        for w in si.windows(2) {
            prop_assert!(w[0].ended <= w[1].started);
        }
        for s in si {
            prop_assert!(s.ended > s.started);
        }
    }

    /// Break-even override and computed break-even are both
    /// non-negative, and the computed value is at least the transition
    /// total when transitions are not more power-hungry than active.
    #[test]
    fn break_even_lower_bound(off_us in 0u64..50_000, on_us in 0u64..50_000) {
        let p = RadioParams {
            turn_off: SimDuration::from_micros(off_us),
            turn_on: SimDuration::from_micros(on_us),
            ..RadioParams::mica2()
        };
        prop_assert_eq!(p.break_even(), SimDuration::from_micros(off_us + on_us));
    }
}
