//! Streaming statistics used by the experiment harness.
//!
//! * [`OnlineStats`] — Welford's single-pass mean/variance, with Student-t
//!   confidence intervals matching the paper's reporting style (90% CIs
//!   over 5 runs).
//! * [`Histogram`] — fixed-width binning, used for the paper's Figure 8
//!   sleep-interval histogram (25 ms bins).
//!
//! # Examples
//!
//! ```
//! use essat_sim::stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
//!     s.add(x);
//! }
//! assert_eq!(s.mean(), 5.0);
//! assert!((s.population_variance() - 4.0).abs() < 1e-12);
//! ```

use std::fmt;

/// Single-pass mean / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN observation would silently poison every
    /// downstream summary).
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True if no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample variance (n−1 denominator; 0.0 for fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (n denominator; 0.0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the confidence interval around the mean at the given
    /// [`Confidence`] level, using the Student-t distribution with `n−1`
    /// degrees of freedom (0.0 for fewer than 2 samples).
    pub fn ci_halfwidth(&self, level: Confidence) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        level.t_value((self.n - 1) as usize) * self.std_error()
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} ±{:.4} (90% CI, n={})",
            self.mean(),
            self.ci_halfwidth(Confidence::P90),
            self.n
        )
    }
}

/// Confidence level for [`OnlineStats::ci_halfwidth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// 90% two-sided confidence (the paper's level).
    P90,
    /// 95% two-sided confidence.
    P95,
}

impl Confidence {
    /// Two-sided Student-t critical value for `dof` degrees of freedom.
    /// Values for dof ≥ 31 use the normal approximation.
    pub fn t_value(self, dof: usize) -> f64 {
        const T90: [f64; 30] = [
            6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782,
            1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
            1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
        ];
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let table = match self {
            Confidence::P90 => &T90,
            Confidence::P95 => &T95,
        };
        if dof == 0 {
            f64::INFINITY
        } else if dof <= 30 {
            table[dof - 1]
        } else {
            match self {
                Confidence::P90 => 1.645,
                Confidence::P95 => 1.960,
            }
        }
    }
}

/// Fixed-width histogram over `[0, bin_width × bins)` with explicit
/// overflow counting.
///
/// # Examples
///
/// ```
/// use essat_sim::stats::Histogram;
///
/// // Paper Figure 8: sleep intervals in 25 ms bins up to 200 ms.
/// let mut h = Histogram::new(0.025, 8);
/// h.add(0.010); // -> bin 0 [0, 25ms)
/// h.add(0.030); // -> bin 1 [25ms, 50ms)
/// h.add(0.500); // -> overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive and finite, or
    /// `bins` is zero.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin width must be positive, got {bin_width}"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Adds an observation (negative values clamp into bin 0).
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        let idx = if x <= 0.0 {
            0
        } else {
            (x / self.bin_width) as usize
        };
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += x.max(0.0);
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Number of in-range bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `idx` (covering `[idx·w, (idx+1)·w)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Fraction of observations strictly below `x` (approximated by whole
    /// bins plus linear interpolation in the partial bin).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 || x <= 0.0 {
            return 0.0;
        }
        let mut below = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = i as f64 * self.bin_width;
            let hi = lo + self.bin_width;
            if x >= hi {
                below += c as f64;
            } else if x > lo {
                below += c as f64 * (x - lo) / self.bin_width;
                break;
            } else {
                break;
            }
        }
        below / self.total as f64
    }

    /// Iterates over `(bin_upper_edge, count)` pairs, paper-figure style.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| ((i + 1) as f64 * self.bin_width, c))
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if bin width or bin count differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Relative change of `new` versus `baseline`, as the paper phrases its
/// headline claims ("X% lower than"): a positive result means `new` is
/// lower than `baseline` by that fraction.
///
/// Returns 0.0 when `baseline` is zero.
///
/// # Examples
///
/// ```
/// use essat_sim::stats::percent_lower;
/// assert_eq!(percent_lower(2.0, 8.0), 75.0); // 2 is 75% lower than 8
/// ```
pub fn percent_lower(new: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (1.0 - new / baseline) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.5, -3.0, 7.25, 0.0, 2.0, 2.0];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 7);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 7.25);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..13].iter().copied().collect();
        let right: OnlineStats = xs[13..].iter().copied().collect();
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        let b: OnlineStats = [1.0, 2.0].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 1.5);
        let mut c: OnlineStats = [5.0].iter().copied().collect();
        c.merge(&OnlineStats::new());
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn ci_for_five_runs_uses_t4() {
        // Paper setting: 5 runs, 90% CI -> t(4) = 2.132.
        let s: OnlineStats = [10.0, 11.0, 9.0, 10.5, 9.5].iter().copied().collect();
        let expected = 2.132 * s.std_error();
        assert!((s.ci_halfwidth(Confidence::P90) - expected).abs() < 1e-12);
        assert!(s.ci_halfwidth(Confidence::P90) > 0.0);
    }

    #[test]
    fn ci_degenerate_cases() {
        let empty = OnlineStats::new();
        assert_eq!(empty.ci_halfwidth(Confidence::P90), 0.0);
        let one: OnlineStats = [3.0].iter().copied().collect();
        assert_eq!(one.ci_halfwidth(Confidence::P95), 0.0);
    }

    #[test]
    fn t_values_monotone_in_dof() {
        for dof in 1..40 {
            assert!(
                Confidence::P90.t_value(dof) >= Confidence::P90.t_value(dof + 1) - 1e-9,
                "t must not increase with dof"
            );
            assert!(Confidence::P95.t_value(dof) > Confidence::P90.t_value(dof));
        }
        assert_eq!(Confidence::P90.t_value(100), 1.645);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        OnlineStats::new().add(f64::NAN);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.025, 8);
        h.add(0.0);
        h.add(0.0249);
        h.add(0.025);
        h.add(0.19);
        h.add(0.2);
        h.add(1.0);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(7), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_negative_clamps_to_first_bin() {
        let mut h = Histogram::new(1.0, 2);
        h.add(-3.0);
        assert_eq!(h.bin_count(0), 1);
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = Histogram::new(10.0, 4);
        for x in [1.0, 2.0, 3.0, 15.0, 25.0, 35.0] {
            h.add(x);
        }
        assert!((h.fraction_below(10.0) - 3.0 / 6.0).abs() < 1e-12);
        assert!((h.fraction_below(20.0) - 4.0 / 6.0).abs() < 1e-12);
        // Interpolation inside bin 0: half the bin -> half its mass.
        assert!((h.fraction_below(5.0) - 0.5 * 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.fraction_below(0.0), 0.0);
        assert_eq!(h.fraction_below(1e9), 1.0);
    }

    #[test]
    fn histogram_iter_edges() {
        let h = Histogram::new(0.5, 3);
        let edges: Vec<f64> = h.iter().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(1.0, 3);
        let mut b = Histogram::new(1.0, 3);
        a.add(0.5);
        b.add(0.7);
        b.add(2.5);
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_count(2), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn histogram_merge_geometry_checked() {
        let mut a = Histogram::new(1.0, 3);
        let b = Histogram::new(2.0, 3);
        a.merge(&b);
    }

    #[test]
    fn percent_lower_matches_paper_phrasing() {
        assert!((percent_lower(13.0, 100.0) - 87.0).abs() < 1e-12);
        assert!((percent_lower(62.0, 100.0) - 38.0).abs() < 1e-12);
        assert_eq!(percent_lower(5.0, 0.0), 0.0);
        assert!(percent_lower(8.0, 2.0) < 0.0, "higher value -> negative");
    }

    #[test]
    fn display_is_nonempty() {
        let s: OnlineStats = [1.0, 2.0, 3.0].iter().copied().collect();
        assert!(!s.to_string().is_empty());
    }
}
