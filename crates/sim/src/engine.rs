//! The discrete-event simulation engine.
//!
//! A simulation is a [`Model`] (the entire mutable world state) driven by
//! an [`Engine`] that owns the clock and the pending-event set. The model
//! handles one event at a time and may schedule or cancel future events
//! through the [`Context`] passed to its handler.
//!
//! This mirrors the classic sequential DES loop of ns-2 but with two
//! guarantees ns-2 does not give:
//!
//! 1. **Determinism** — same model, same seed, same event sequence, every
//!    run (see [`crate::queue`] for the ordering rule).
//! 2. **Monotonic clock** — scheduling an event strictly in the past
//!    panics immediately rather than silently reordering history.
//!
//! # Examples
//!
//! ```
//! use essat_sim::engine::{Context, Engine, Model};
//! use essat_sim::time::{SimDuration, SimTime};
//!
//! /// Counts ticks of a periodic timer.
//! struct Clock {
//!     ticks: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl Model for Clock {
//!     type Event = Ev;
//!     fn handle(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
//!         match event {
//!             Ev::Tick => {
//!                 self.ticks += 1;
//!                 if self.ticks < 5 {
//!                     ctx.schedule_after(SimDuration::from_millis(10), Ev::Tick);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Clock { ticks: 0 });
//! engine.schedule_at(SimTime::ZERO, Ev::Tick);
//! engine.run_until_idle();
//! assert_eq!(engine.model().ticks, 5);
//! assert_eq!(engine.now(), SimTime::from_millis(40));
//! ```

use crate::queue::{BatchEntry, EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// World state driven by the engine.
///
/// The single `handle` method receives each event in deterministic order
/// together with a [`Context`] for scheduling follow-up events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Processes one event at the context's current time.
    fn handle(&mut self, event: Self::Event, ctx: &mut Context<'_, Self::Event>);
}

/// Scheduling interface handed to [`Model::handle`].
///
/// All mutation of the future-event set during a handler goes through this
/// type, which keeps the clock and the queue consistent.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    id: EventId,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Context<'a, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the event currently being dispatched.
    ///
    /// Handle-owning state machines (the MAC timers, Safe-Sleep
    /// wake-ups, collection timeouts) keep the [`EventId`] returned
    /// when they armed a timer and cancel it on disarm; this accessor
    /// lets them cross-check, at dispatch, that a firing event is the
    /// one they still expect (the `sanitize` feature's "no stale event
    /// ever dispatches" invariant).
    pub fn event_id(&self) -> EventId {
        self.id
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`Context::now`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        let at = self.now + delay;
        self.queue.push(at, event)
    }

    /// Schedules `event` to run after every event already scheduled for
    /// the current instant ("end of this time step").
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.push(self.now, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if it was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// True if the event is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.is_pending(id)
    }
}

/// Sequential discrete-event engine: owns the clock, the queue, and the
/// model.
#[derive(Debug)]
pub struct Engine<M: Model> {
    now: SimTime,
    queue: EventQueue<M::Event>,
    model: M,
    processed: u64,
    /// Reusable batch-drain buffer for the bounded-run loops: one wheel
    /// bucket's worth of ordering handles at a time.
    batch: Vec<BatchEntry>,
}

impl<M: Model> Engine<M> {
    /// Creates an engine at time zero with an empty event set.
    pub fn new(model: M) -> Self {
        Self::with_queue(model, EventQueue::new())
    }

    /// Creates an engine at time zero reusing a recycled queue's
    /// allocations (the caller obtained it from [`Engine::into_parts`]
    /// of a previous run and must have [`EventQueue::clear`]ed it, or it
    /// must otherwise be empty).
    ///
    /// # Panics
    ///
    /// Panics if the queue still holds pending events.
    pub fn with_queue(model: M, queue: EventQueue<M::Event>) -> Self {
        assert!(queue.is_empty(), "recycled queue must be empty");
        Engine {
            now: SimTime::ZERO,
            queue,
            model,
            processed: 0,
            batch: Vec::new(),
        }
    }

    /// Consumes the engine, returning the model and the queue (whose
    /// slab/bucket allocations a pool can recycle into the next run via
    /// [`Engine::with_queue`] after clearing it).
    pub fn into_parts(self) -> (M, EventQueue<M::Event>) {
        (self.model, self.queue)
    }

    /// Current simulation time (the time of the last processed event, or
    /// zero before any event has run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event set over the whole run.
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (for setup and inspection between
    /// runs; event handling itself must go through the queue).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules an event from outside a handler (setup code).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules an event after a relative delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: M::Event) -> EventId {
        let at = self.now + delay;
        self.queue.push(at, event)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Advances the clock to `time` and hands `event` to the model —
    /// the single dispatch path shared by [`Engine::step`] and
    /// [`Engine::run_until`].
    fn dispatch(&mut self, time: SimTime, id: EventId, event: M::Event) {
        debug_assert!(time >= self.now, "event queue violated monotonicity");
        self.now = time;
        self.processed += 1;
        let mut ctx = Context {
            now: time,
            id,
            queue: &mut self.queue,
        };
        self.model.handle(event, &mut ctx);
    }

    /// Processes the single earliest pending event. Returns `false` if the
    /// queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((time, id, event)) => {
                self.dispatch(time, id, event);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty.
    ///
    /// Returns the number of events processed by this call.
    pub fn run_until_idle(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// Merges any events that sorted ahead of the unclaimed batch entry
    /// `e` (pushed into the current bucket after the batch was drained)
    /// back into the dispatch order, then claims and dispatches `e` itself
    /// if it is still live.
    #[inline]
    fn dispatch_batch_entry(&mut self, e: BatchEntry) {
        if self.queue.batch_dirty() {
            while let Some((time, id, event)) = self.queue.pop_before_entry(e) {
                self.dispatch(time, id, event);
            }
        }
        if let Some(event) = self.queue.claim(e) {
            self.dispatch(e.time(), e.id(), event);
        }
    }

    /// Runs events with fire time `<= deadline`, then advances the clock
    /// to exactly `deadline` (even if the queue still holds later events).
    ///
    /// Drains the queue one sorted wheel bucket at a time instead of one
    /// cursor pass per event; liveness is re-validated per entry at
    /// dispatch, so a handler cancelling a later event in the same
    /// drained bucket still suppresses it.
    ///
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.processed;
        let mut buf = std::mem::take(&mut self.batch);
        while self.queue.pop_batch_before(deadline, &mut buf) != 0 {
            for &e in &buf {
                self.dispatch_batch_entry(e);
            }
        }
        self.batch = buf;
        if self.now < deadline {
            self.now = deadline;
        }
        self.processed - before
    }

    /// Runs at most `budget` events; returns how many actually ran. Useful
    /// as a watchdog against runaway models in tests.
    pub fn run_with_budget(&mut self, budget: u64) -> u64 {
        let mut ran = 0;
        while ran < budget && self.step() {
            ran += 1;
        }
        ran
    }

    /// [`Engine::run_until`] with an event budget: runs events with fire
    /// time `<= deadline`, but at most `budget` of them. Returns `true`
    /// when the deadline was reached (the clock then rests at exactly
    /// `deadline`), `false` when the budget ran out first (the clock
    /// stays at the last processed event). The deterministic runaway
    /// guard for sweep jobs: the same `(model, seed, budget)` either
    /// always completes or always trips, independent of wall clock.
    /// Budget accounting stays per-event under batch draining: when the
    /// budget runs out mid-bucket, the unclaimed remainder of the batch
    /// is re-filed with original sequence numbers, so those events stay
    /// pending in their exact total-order positions.
    pub fn run_until_capped(&mut self, deadline: SimTime, budget: u64) -> bool {
        let mut ran = 0u64;
        let mut buf = std::mem::take(&mut self.batch);
        while self.queue.pop_batch_before(deadline, &mut buf) != 0 {
            for i in 0..buf.len() {
                let e = buf[i];
                if self.queue.batch_dirty() {
                    while ran < budget {
                        match self.queue.pop_before_entry(e) {
                            Some((time, id, event)) => {
                                self.dispatch(time, id, event);
                                ran += 1;
                            }
                            None => break,
                        }
                    }
                }
                if ran >= budget {
                    // Give the unclaimed tail back (stale entries are
                    // dropped), then report exhaustion only if a live
                    // event at or before the deadline actually remains —
                    // the tail may have been entirely cancelled.
                    self.queue.requeue_batch(&buf[i..]);
                    self.batch = buf;
                    match self.queue.peek_time() {
                        Some(t) if t <= deadline => return false,
                        _ => {
                            if self.now < deadline {
                                self.now = deadline;
                            }
                            return true;
                        }
                    }
                }
                if let Some(event) = self.queue.claim(e) {
                    self.dispatch(e.time(), e.id(), event);
                    ran += 1;
                }
            }
        }
        self.batch = buf;
        if self.now < deadline {
            self.now = deadline;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(SimTime, u32)>,
        cancel_targets: Vec<EventId>,
    }

    enum Ev {
        Mark(u32),
        Spawn,
        CancelOther,
        /// The cancel-on-disarm shape: disarm (cancel) every stored
        /// handle and immediately re-arm a replacement `delay` later.
        DisarmRearm {
            delay: SimDuration,
            mark: u32,
        },
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, event: Ev, ctx: &mut Context<'_, Ev>) {
            match event {
                Ev::Mark(n) => self.log.push((ctx.now(), n)),
                Ev::Spawn => {
                    ctx.schedule_after(SimDuration::from_millis(1), Ev::Mark(100));
                    ctx.schedule_now(Ev::Mark(99));
                }
                Ev::CancelOther => {
                    for id in self.cancel_targets.drain(..) {
                        assert!(ctx.cancel(id));
                        assert!(!ctx.is_pending(id));
                    }
                }
                Ev::DisarmRearm { delay, mark } => {
                    for id in self.cancel_targets.drain(..) {
                        ctx.cancel(id);
                    }
                    let id = ctx.schedule_after(delay, Ev::Mark(mark));
                    self.cancel_targets.push(id);
                }
            }
        }
    }

    #[test]
    fn processes_in_order_and_advances_clock() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_millis(20), Ev::Mark(2));
        e.schedule_at(SimTime::from_millis(10), Ev::Mark(1));
        assert_eq!(e.pending(), 2);
        let ran = e.run_until_idle();
        assert_eq!(ran, 2);
        assert_eq!(
            e.model().log,
            vec![(SimTime::from_millis(10), 1), (SimTime::from_millis(20), 2)]
        );
        assert_eq!(e.now(), SimTime::from_millis(20));
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_millis(5), Ev::Spawn);
        e.run_until_idle();
        // schedule_now event runs at the same instant, after already-queued
        // same-time events; the delayed one runs 1ms later.
        assert_eq!(
            e.model().log,
            vec![
                (SimTime::from_millis(5), 99),
                (SimTime::from_millis(6), 100)
            ]
        );
    }

    #[test]
    fn cancellation_from_handler() {
        let mut e = Engine::new(Recorder::default());
        let victim = e.schedule_at(SimTime::from_millis(10), Ev::Mark(1));
        e.model_mut().cancel_targets = vec![victim];
        e.schedule_at(SimTime::from_millis(5), Ev::CancelOther);
        e.run_until_idle();
        assert!(e.model().log.is_empty());
    }

    /// A wheel-bucket-aligned instant: events within `WIDTH_NS` of it
    /// land in the same drained batch.
    fn bucket_start() -> SimTime {
        // 611 × the 2^14 ns bucket width ≈ 10 ms.
        SimTime::from_nanos(611 << 14)
    }

    #[test]
    fn cancel_later_same_bucket_event_from_drained_batch() {
        // Regression: batch draining hands the engine a whole sorted
        // bucket at once, but liveness must be re-validated per entry —
        // an event dispatched from the batch that cancels a later entry
        // of the *same* bucket (even at the very same instant) still
        // suppresses it.
        let mut e = Engine::new(Recorder::default());
        let t = bucket_start();
        e.schedule_at(t, Ev::CancelOther);
        // Same instant, later seq — drained into the same batch.
        let v1 = e.schedule_at(t, Ev::Mark(1));
        // Same bucket, strictly later time.
        let v2 = e.schedule_at(t + SimDuration::from_nanos(8_192), Ev::Mark(2));
        e.model_mut().cancel_targets = vec![v1, v2];
        let ran = e.run_until(SimTime::from_millis(20));
        assert_eq!(ran, 1, "only the cancelling event runs");
        assert!(e.model().log.is_empty());
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn disarm_rearm_against_drained_batch_suppresses_and_replaces() {
        // Regression for the cancel-on-disarm timer path: a handler
        // cancels a pending timer that was *already drained into the
        // current batch* (same bucket, later seq) and immediately
        // re-arms a replacement. The cancelled entry must not fire and
        // the replacement must fire at its own (time, seq) position —
        // the exact shape a MAC disarm/re-arm produces.
        let mut e = Engine::new(Recorder::default());
        let t = bucket_start();
        // The "armed timer", drained into the same batch as the disarm.
        let armed = e.schedule_at(t + SimDuration::from_nanos(200), Ev::Mark(1));
        e.model_mut().cancel_targets = vec![armed];
        e.schedule_at(
            t,
            Ev::DisarmRearm {
                delay: SimDuration::from_nanos(500),
                mark: 2,
            },
        );
        // A bystander between the cancelled slot and the replacement
        // keeps FIFO order observable.
        e.schedule_at(t + SimDuration::from_nanos(300), Ev::Mark(3));
        let ran = e.run_until(t + SimDuration::from_millis(1));
        assert_eq!(ran, 3, "disarm + bystander + replacement");
        let marks: Vec<u32> = e.model().log.iter().map(|&(_, n)| n).collect();
        assert_eq!(
            marks,
            vec![3, 2],
            "cancelled timer never fires; order holds"
        );
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn rearm_into_currently_draining_bucket_fires_in_order() {
        // A replacement timer pushed into the wheel bucket that is being
        // drained right now must be merged into dispatch order via the
        // dirty-batch path, while a pre-drain cancel stays suppressed.
        let mut e = Engine::new(Recorder::default());
        let t = bucket_start();
        let seed = e.schedule_at(
            t,
            Ev::DisarmRearm {
                delay: SimDuration::from_nanos(100),
                mark: 0,
            },
        );
        assert!(e.cancel(seed));
        e.schedule_at(
            t,
            Ev::DisarmRearm {
                delay: SimDuration::from_nanos(100),
                mark: 7,
            },
        );
        e.run_until(t + SimDuration::from_millis(1));
        let marks: Vec<u32> = e.model().log.iter().map(|&(_, n)| n).collect();
        assert_eq!(marks, vec![7], "only the live re-arm's replacement fires");
    }

    #[test]
    fn budget_exhaustion_mid_bucket_leaves_tail_pending() {
        // Regression: `run_until_capped` accounting stays per-event
        // under batch draining. Exhaustion midway through a drained
        // bucket re-files the unclaimed tail, which then runs — in
        // order — on the next call.
        let mut e = Engine::new(Recorder::default());
        let t = bucket_start();
        for i in 0..5u64 {
            e.schedule_at(t + SimDuration::from_nanos(i * 100), Ev::Mark(i as u32));
        }
        assert!(!e.run_until_capped(SimTime::from_secs(1), 2));
        assert_eq!(e.model().log.len(), 2);
        assert_eq!(e.pending(), 3, "mid-bucket tail stays queued");
        assert!(e.run_until_capped(SimTime::from_secs(1), 100));
        let marks: Vec<u32> = e.model().log.iter().map(|&(_, n)| n).collect();
        assert_eq!(marks, vec![0, 1, 2, 3, 4]);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_millis(10), Ev::Mark(1));
        e.schedule_at(SimTime::from_millis(30), Ev::Mark(3));
        let ran = e.run_until(SimTime::from_millis(20));
        assert_eq!(ran, 1);
        assert_eq!(e.now(), SimTime::from_millis(20));
        assert_eq!(e.pending(), 1);
        e.run_until_idle();
        assert_eq!(e.model().log.len(), 2);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut e = Engine::new(Recorder::default());
        e.run_until(SimTime::from_secs(7));
        assert_eq!(e.now(), SimTime::from_secs(7));
    }

    #[test]
    fn budget_limits_work() {
        let mut e = Engine::new(Recorder::default());
        for i in 0..10 {
            e.schedule_at(SimTime::from_millis(i), Ev::Mark(i as u32));
        }
        assert_eq!(e.run_with_budget(3), 3);
        assert_eq!(e.model().log.len(), 3);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn capped_run_reports_budget_exhaustion() {
        let mut e = Engine::new(Recorder::default());
        for i in 0..10 {
            e.schedule_at(SimTime::from_millis(i), Ev::Mark(i as u32));
        }
        // Budget trips first: the clock stays at the last event.
        assert!(!e.run_until_capped(SimTime::from_secs(1), 4));
        assert_eq!(e.processed(), 4);
        assert_eq!(e.now(), SimTime::from_millis(3));
        assert_eq!(e.pending(), 6, "unprocessed events stay queued");
        // Enough budget: completes and lands exactly on the deadline.
        assert!(e.run_until_capped(SimTime::from_secs(1), 1_000));
        assert_eq!(e.processed(), 10);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::from_millis(10), Ev::Mark(1));
        e.run_until_idle();
        e.schedule_at(SimTime::from_millis(5), Ev::Mark(2));
    }

    #[test]
    fn into_model_returns_state() {
        let mut e = Engine::new(Recorder::default());
        e.schedule_at(SimTime::ZERO, Ev::Mark(7));
        e.run_until_idle();
        let m = e.into_model();
        assert_eq!(m.log, vec![(SimTime::ZERO, 7)]);
    }
}
