//! Deterministic random numbers for simulations.
//!
//! [`SimRng`] wraps a seeded PRNG behind a small, simulation-oriented API
//! and adds **stream derivation**: [`SimRng::derive`] produces an
//! independent child generator from a parent seed and a stream label, so
//! each node/component gets its own reproducible randomness regardless of
//! the order in which other components draw. This is what makes runs
//! bit-for-bit repeatable even as the code evolves.
//!
//! # Examples
//!
//! ```
//! use essat_sim::rng::SimRng;
//!
//! let root = SimRng::seed_from_u64(42);
//! let mut a = root.derive(1);
//! let mut b = root.derive(2);
//! // Independent streams: interleaving draws does not couple them.
//! let x = a.next_u64();
//! let _ = b.next_u64();
//! let mut a2 = SimRng::seed_from_u64(42).derive(1);
//! assert_eq!(x, a2.next_u64());
//! ```

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A deterministic, derivable random-number generator.
///
/// Cloning a `SimRng` clones its state; the clone continues the same
/// stream. Use [`SimRng::derive`] to obtain statistically independent
/// sub-streams instead.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

/// SplitMix64 step — used to decorrelate derived stream seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator for stream `stream`.
    ///
    /// Derivation depends only on `(seed, stream)` — not on how many
    /// values have been drawn from `self` — so components can be created
    /// in any order without perturbing each other's randomness.
    pub fn derive(&self, stream: u64) -> SimRng {
        let child_seed = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)));
        SimRng::seed_from_u64(child_seed)
    }

    /// Derives a child generator from two stream labels (e.g. node id and
    /// component id).
    pub fn derive2(&self, a: u64, b: u64) -> SimRng {
        self.derive(splitmix64(a).wrapping_add(b))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        if lo == hi {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        self.inner.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick from empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ, {same}/64 collisions");
    }

    #[test]
    fn derive_is_order_independent() {
        let root = SimRng::seed_from_u64(99);
        let mut c1 = root.derive(5);
        let first = c1.next_u64();
        // Derive again after drawing from an unrelated child.
        let mut other = root.derive(6);
        let _ = other.next_u64();
        let mut c2 = root.derive(5);
        assert_eq!(c2.next_u64(), first);
    }

    #[test]
    fn derive2_distinguishes_pairs() {
        let root = SimRng::seed_from_u64(3);
        let mut a = root.derive2(1, 2);
        let mut b = root.derive2(2, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x = r.range_f64(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&x));
            let n = r.range_u64(10, 20);
            assert!((10..20).contains(&n));
            let m = r.below(3);
            assert!(m < 3);
        }
        assert_eq!(r.range_f64(1.0, 1.0), 1.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "empirical {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = SimRng::seed_from_u64(29);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exp(2.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "empirical mean {mean}");
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SimRng::seed_from_u64(31);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&items)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed_from_u64(0).below(0);
    }
}
