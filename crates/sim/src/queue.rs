//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! Determinism requirement: two events scheduled for the same instant must
//! always execute in the order they were scheduled, on every run. The queue
//! therefore orders entries by the pair *(fire time, insertion sequence)* —
//! a strict total order with FIFO tie-breaking.
//!
//! # Implementation
//!
//! Event payloads live in a **slab** (a vector of reusable slots with a
//! free list); the ordering structure holds only small `Copy` entries
//! `(time, seq, slot)`. The insertion sequence number doubles as a
//! **generation tag**: a slot is live for exactly one sequence number, so
//! an entry is stale iff its sequence no longer matches its slot.
//! Cancellation ([`EventQueue::cancel`]) is O(1): drop the payload, free
//! the slot, and leave the ordering entry to be skipped at pop time by
//! the sequence check — no hashing anywhere on the push/pop/cancel paths.
//!
//! The ordering structure is a **timer wheel** rather than a binary
//! heap: the dominant simulation workload is timers at MAC-slot
//! granularity (backoffs, DIFS/SIFS, airtimes, radio transitions), for
//! which a comparison heap pays `O(log n)` pointer-chasing per event. The
//! wheel is a ring of `BUCKET_COUNT` (4096) buckets of `2^BUCKET_SHIFT`
//! ns each (65.536 µs ≈ a handful of 802.11 20 µs slots), covering a
//! ≈268 ms near-future window:
//!
//! * **push** within the window appends to the target bucket — O(1);
//! * **pop** drains the *current* bucket, which is sorted by
//!   `(time, seq)` once when the cursor reaches it (so the exact global
//!   order is preserved, including FIFO among same-instant events);
//! * an occupancy **bitmap** (one bit per bucket) finds the next
//!   non-empty bucket with a couple of word scans, so sparse stretches
//!   cost nothing;
//! * events beyond the window go to a small **overflow heap** and
//!   migrate into the wheel as the cursor advances past their horizon.
//!
//! Pushes at or before the cursor's bucket (e.g. `schedule_now` chains)
//! insert into the current bucket at their sorted position, which keeps
//! the total order exact even while the bucket is being drained.
//!
//! # Batch drain
//!
//! [`EventQueue::pop_batch_before`] hands out the current bucket's sorted
//! run of entries up to a deadline in one pass, for callers (the engine's
//! hot loop) that would otherwise pay one cursor pass per event. Batched
//! entries are *ordering handles only*: the payload stays in the slab
//! until [`EventQueue::claim`], which re-validates liveness — a handler
//! dispatched from the batch may cancel a later entry of the same batch,
//! and the claim then returns `None` instead of double-dispatching.
//! Pushes that land in the current bucket while a batch is outstanding
//! set a dirty flag ([`EventQueue::batch_dirty`]); the caller merges such
//! intruders back into the total order via
//! [`EventQueue::pop_before_entry`], and un-claimed entries can be
//! re-filed with [`EventQueue::requeue_batch`] (budget exhaustion).
//!
//! # Examples
//!
//! ```
//! use essat_sim::queue::EventQueue;
//! use essat_sim::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! let t = SimTime::from_millis(5);
//! q.push(t, "b");
//! let id = q.push(SimTime::from_millis(1), "a");
//! q.push(t, "c");
//! assert!(q.cancel(id));
//! let (t1, _, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (t, "b")); // FIFO among same-time events
//! assert_eq!(q.pop().unwrap().2, "c");
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the bucket width in nanoseconds: 2^16 ns = 65.536 µs, a few
/// 802.11 20 µs slots. Wide enough that a batch drain hands the engine
/// several events at a time (a 16.384 µs bucket held ~1 event, paying a
/// cursor advance per event); narrow enough that the sorted insert for
/// pushes into the current bucket stays cheap.
const BUCKET_SHIFT: u32 = 16;
/// Number of buckets in the ring (must be a power of two). With
/// [`BUCKET_SHIFT`] this spans ≈268 ms of near future — wide enough
/// that collection timeouts, radio wake-ups and most round-period
/// chains land in the wheel directly; only second-scale schedules take
/// the overflow heap.
const BUCKET_COUNT: usize = 4096;
const BUCKET_MASK: u64 = (BUCKET_COUNT as u64) - 1;
/// Occupancy bitmap words.
const OCC_WORDS: usize = BUCKET_COUNT / 64;

/// Opaque handle to a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    /// Insertion sequence (unique per queue, monotonically increasing);
    /// doubles as the slot generation tag.
    seq: u64,
    /// Slab slot the event occupies (or occupied).
    slot: u32,
}

impl EventId {
    /// The raw sequence number (unique per queue, monotonically increasing).
    pub fn as_u64(self) -> u64 {
        self.seq
    }
}

/// One slab slot. `event` is `None` while the slot sits on the free
/// list; `seq` records the generation that last occupied it.
#[derive(Debug)]
struct Slot<E> {
    seq: u64,
    event: Option<E>,
}

/// One ordering entry: everything needed for ordering and staleness
/// detection, but not the event payload itself (which stays in the
/// slab). Used both in wheel buckets and in the overflow heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// An ordering handle drained by [`EventQueue::pop_batch_before`].
///
/// Holds no payload: the event stays in the slab until
/// [`EventQueue::claim`]s it, so cancellations issued between drain and
/// dispatch are still honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl BatchEntry {
    /// The fire time of the drained entry.
    #[inline]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The cancellation handle of the drained entry.
    #[inline]
    pub fn id(&self) -> EventId {
        EventId {
            seq: self.seq,
            slot: self.slot,
        }
    }
}

/// Deterministic future-event set.
///
/// See the [module documentation](self) for ordering and cancellation
/// semantics.
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    next_seq: u64,
    /// The bucket ring; `wheel[abs & BUCKET_MASK]` holds entries whose
    /// absolute bucket number is `abs ∈ (cur_abs, cur_abs + BUCKET_COUNT)`,
    /// plus — at ring position `cur_abs & BUCKET_MASK` — the current
    /// bucket being drained (which may also hold earlier-time entries
    /// pushed after the cursor passed their nominal bucket).
    wheel: Vec<Vec<Entry>>,
    /// One bit per ring position: set iff a non-current bucket holds
    /// entries (possibly stale).
    occ: [u64; OCC_WORDS],
    /// Absolute bucket number (`time >> BUCKET_SHIFT`) of the cursor.
    cur_abs: u64,
    /// Drained prefix of the current bucket.
    drain: usize,
    /// Whether the current bucket's `[drain..]` suffix is sorted by
    /// `(time, seq)`.
    sorted: bool,
    /// Events at or beyond the wheel horizon, ordered by `(time, seq)`.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Set when a push lands in (or before) the current bucket while a
    /// drained batch may be outstanding — the new entry could sort ahead
    /// of batch entries not yet claimed. Cleared by
    /// [`EventQueue::pop_batch_before`].
    batch_dirty: bool,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            next_seq: 0,
            wheel: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            cur_abs: 0,
            drain: 0,
            sorted: false,
            overflow: BinaryHeap::new(),
            batch_dirty: false,
        }
    }

    #[inline]
    fn occ_set(&mut self, ring: usize) {
        self.occ[ring >> 6] |= 1u64 << (ring & 63);
    }

    #[inline]
    fn occ_clear(&mut self, ring: usize) {
        self.occ[ring >> 6] &= !(1u64 << (ring & 63));
    }

    /// The smallest absolute bucket number `> cur_abs` (within one ring
    /// revolution) whose bucket is marked occupied.
    fn next_occupied(&self) -> Option<u64> {
        let start = ((self.cur_abs + 1) & BUCKET_MASK) as usize;
        let mut w = start >> 6;
        let mut word = self.occ[w] & (!0u64 << (start & 63));
        for _ in 0..=OCC_WORDS {
            if word != 0 {
                let ring = (w << 6) + word.trailing_zeros() as usize;
                let delta = (ring + BUCKET_COUNT - start) as u64 & BUCKET_MASK;
                return Some(self.cur_abs + 1 + delta);
            }
            w = (w + 1) % OCC_WORDS;
            word = self.occ[w];
        }
        None
    }

    /// Files an ordering entry into the wheel or the overflow heap.
    #[inline]
    fn insert_entry(&mut self, e: Entry) {
        let abs = e.time.as_nanos() >> BUCKET_SHIFT;
        if self.live == 1 && abs > self.cur_abs {
            // The queue was empty: jump the cursor straight to the new
            // event's bucket so an idle stretch never routes the next
            // event through the overflow heap. Any leftover entries in
            // the old current bucket are stale (live was 0) and can mix
            // harmlessly with future occupants of the reused ring slot.
            let ring = (self.cur_abs & BUCKET_MASK) as usize;
            self.wheel[ring].clear();
            self.drain = 0;
            self.sorted = false;
            self.cur_abs = abs;
            self.occ_clear((abs & BUCKET_MASK) as usize);
        }
        if abs <= self.cur_abs {
            // Current bucket (or the past — the engine forbids that, but
            // the queue keeps exact order regardless): keep the drained
            // suffix sorted. The new entry may sort ahead of an
            // outstanding batch's unclaimed tail, so flag the batch
            // dirty for the caller's merge check.
            self.batch_dirty = true;
            let ring = (self.cur_abs & BUCKET_MASK) as usize;
            if self.sorted {
                let tail = &self.wheel[ring][self.drain..];
                let pos = tail.partition_point(|x| (x.time, x.seq) <= (e.time, e.seq));
                self.wheel[ring].insert(self.drain + pos, e);
            } else {
                self.wheel[ring].push(e);
            }
        } else if abs - self.cur_abs < BUCKET_COUNT as u64 {
            let ring = (abs & BUCKET_MASK) as usize;
            self.wheel[ring].push(e);
            self.occ_set(ring);
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// Schedules `event` to fire at `time` and returns its cancellation
    /// handle.
    ///
    /// Scheduling into the past (before the last popped event) is allowed
    /// by the queue itself; the [`engine`](crate::engine) enforces clock
    /// monotonicity at a higher level.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.seq = seq;
                sl.event = Some(event);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    seq,
                    event: Some(event),
                });
                s
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.insert_entry(Entry { time, seq, slot });
        EventId { seq, slot }
    }

    /// True if `id` still identifies the live occupant of its slot.
    fn is_live(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|sl| sl.seq == id.seq && sl.event.is_some())
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it had
    /// already fired or been cancelled.
    #[inline]
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(sl) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if sl.seq != id.seq || sl.event.take().is_none() {
            return false;
        }
        self.free.push(id.slot);
        self.live -= 1;
        true
    }

    /// Returns `true` if the event is still pending.
    #[inline]
    pub fn is_pending(&self, id: EventId) -> bool {
        self.is_live(id)
    }

    /// Migrates overflow entries that now fall inside the wheel window.
    fn migrate_overflow(&mut self) {
        let horizon = self.cur_abs + BUCKET_COUNT as u64;
        while let Some(Reverse(e)) = self.overflow.peek() {
            if e.time.as_nanos() >> BUCKET_SHIFT >= horizon {
                break;
            }
            let Some(Reverse(e)) = self.overflow.pop() else {
                unreachable!()
            };
            let abs = e.time.as_nanos() >> BUCKET_SHIFT;
            let ring = (abs & BUCKET_MASK) as usize;
            self.wheel[ring].push(e);
            if abs != self.cur_abs {
                self.occ_set(ring);
            }
        }
    }

    /// Advances the cursor to the next bucket holding entries (wheel or
    /// overflow). The current bucket must be fully drained. Returns
    /// `false` when nothing is pending anywhere.
    fn advance(&mut self) -> bool {
        debug_assert!(self.drain >= self.wheel[(self.cur_abs & BUCKET_MASK) as usize].len());
        let ring = (self.cur_abs & BUCKET_MASK) as usize;
        self.wheel[ring].clear();
        self.drain = 0;
        self.sorted = false;
        // Wheel entries always precede overflow entries (the overflow
        // holds only times at or beyond the horizon), so a non-empty
        // wheel decides the next cursor position by itself.
        let target = match self.next_occupied() {
            Some(abs) => abs,
            None => match self.overflow.peek() {
                Some(Reverse(e)) => e.time.as_nanos() >> BUCKET_SHIFT,
                None => return false,
            },
        };
        self.cur_abs = target;
        self.occ_clear((target & BUCKET_MASK) as usize);
        self.migrate_overflow();
        true
    }

    /// Positions `drain` at the earliest live entry, advancing buckets
    /// as needed, and returns it (without consuming).
    fn settle_head(&mut self) -> Option<Entry> {
        loop {
            let ring = (self.cur_abs & BUCKET_MASK) as usize;
            if !self.sorted {
                self.drain = 0;
                self.wheel[ring].sort_unstable();
                self.sorted = true;
            }
            while self.drain < self.wheel[ring].len() {
                let e = self.wheel[ring][self.drain];
                let sl = &self.slots[e.slot as usize];
                if sl.seq == e.seq && sl.event.is_some() {
                    return Some(e);
                }
                self.drain += 1; // stale: cancelled (slot possibly reused)
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Consumes the entry [`EventQueue::settle_head`] just positioned.
    fn consume_head(&mut self, e: Entry) -> (SimTime, EventId, E) {
        self.drain += 1;
        let sl = &mut self.slots[e.slot as usize];
        let event = sl.event.take().expect("settled head is live");
        self.free.push(e.slot);
        self.live -= 1;
        (
            e.time,
            EventId {
                seq: e.seq,
                slot: e.slot,
            },
            event,
        )
    }

    /// Removes and returns the earliest pending event as
    /// `(time, id, event)`, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let e = self.settle_head()?;
        Some(self.consume_head(e))
    }

    /// The fire time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle_head().map(|e| e.time)
    }

    /// [`EventQueue::pop`], but only if the earliest pending event fires
    /// at or before `deadline` — the engine's bounded-run loop in one
    /// cursor pass instead of a peek followed by a pop.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, EventId, E)> {
        let e = self.settle_head()?;
        if e.time > deadline {
            return None;
        }
        Some(self.consume_head(e))
    }

    /// Copies the current bucket's remaining live entries with fire time
    /// `<= deadline` into `buf`, advancing the drained prefix past them.
    /// The bucket is already settled (sorted, `drain` on a live entry).
    fn drain_bucket_into(&mut self, deadline: SimTime, buf: &mut Vec<BatchEntry>) {
        let ring = (self.cur_abs & BUCKET_MASK) as usize;
        let bucket = &self.wheel[ring];
        let mut i = self.drain;
        while i < bucket.len() {
            let e = bucket[i];
            if e.time > deadline {
                break;
            }
            i += 1;
            let sl = &self.slots[e.slot as usize];
            if sl.seq == e.seq && sl.event.is_some() {
                buf.push(BatchEntry {
                    time: e.time,
                    seq: e.seq,
                    slot: e.slot,
                });
            }
        }
        self.drain = i;
    }

    /// Drains the current bucket's sorted run of live entries with fire
    /// time `<= deadline` into `buf` (cleared first) in exact
    /// `(time, seq)` order, and returns how many were drained — zero when
    /// nothing is pending at or before the deadline.
    ///
    /// The drained entries are ordering handles only: the caller must
    /// [`EventQueue::claim`] each one at dispatch, which re-validates
    /// liveness (a handler may cancel a later entry of the same batch).
    /// While the batch is outstanding, [`EventQueue::batch_dirty`] tells
    /// the caller whether a push may have landed ahead of the unclaimed
    /// tail; entries that will not be claimed must be given back via
    /// [`EventQueue::requeue_batch`].
    pub fn pop_batch_before(&mut self, deadline: SimTime, buf: &mut Vec<BatchEntry>) -> usize {
        buf.clear();
        let Some(first) = self.settle_head() else {
            return 0;
        };
        if first.time > deadline {
            return 0;
        }
        self.drain_bucket_into(deadline, buf);
        self.batch_dirty = false;
        buf.len()
    }

    /// True if a push landed in (or before) the current bucket since the
    /// last [`EventQueue::pop_batch_before`] — i.e. an event may now sort
    /// ahead of batch entries not yet claimed, and the caller must merge
    /// via [`EventQueue::pop_before_entry`] before claiming each one.
    #[inline]
    pub fn batch_dirty(&self) -> bool {
        self.batch_dirty
    }

    /// Pops the earliest pending event only if it sorts strictly before
    /// the batch entry `e` — the merge point for events pushed into the
    /// current bucket while a drained batch is outstanding.
    pub fn pop_before_entry(&mut self, e: BatchEntry) -> Option<(SimTime, EventId, E)> {
        let head = self.settle_head()?;
        if (head.time, head.seq) >= (e.time, e.seq) {
            return None;
        }
        Some(self.consume_head(head))
    }

    /// Takes the payload of a drained batch entry if it is still live.
    /// Returns `None` when the entry was cancelled between drain and
    /// claim — the liveness re-validation that makes cancel-during-batch
    /// exact (no double dispatch, no ghost dispatch).
    #[inline]
    pub fn claim(&mut self, e: BatchEntry) -> Option<E> {
        let sl = &mut self.slots[e.slot as usize];
        if sl.seq != e.seq {
            return None;
        }
        let event = sl.event.take()?;
        self.free.push(e.slot);
        self.live -= 1;
        Some(event)
    }

    /// Re-files drained batch entries that will not be claimed (e.g. an
    /// event budget ran out mid-batch). The payloads never left the slab,
    /// so only the ordering entries are restored — with their original
    /// sequence numbers, keeping the total order exact. Entries cancelled
    /// while the batch was outstanding are dropped.
    pub fn requeue_batch(&mut self, entries: &[BatchEntry]) {
        for &e in entries {
            let sl = &self.slots[e.slot as usize];
            if sl.seq == e.seq && sl.event.is_some() {
                self.insert_entry(Entry {
                    time: e.time,
                    seq: e.seq,
                    slot: e.slot,
                });
            }
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// The largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Removes all pending events and resets the high-water mark and the
    /// cursor (the next push may be at any time, including before
    /// previously popped events). Bucket, slab and overflow capacity is
    /// retained, so a recycled queue reaches steady state without
    /// reallocating.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.peak_live = 0;
        for b in &mut self.wheel {
            b.clear();
        }
        self.occ = [0; OCC_WORDS];
        self.cur_abs = 0;
        self.drain = 0;
        self.sorted = false;
        self.overflow.clear();
        self.batch_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_is_exact() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        let (_, id, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert_eq!(id, b);
        assert!(!q.cancel(b), "cancel after pop reports false");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn is_pending_tracks_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), ());
        assert!(q.is_pending(a));
        q.pop();
        assert!(!q.is_pending(a));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(t(i), i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.scheduled_total(), 10);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        // Sequence numbers keep increasing after clear.
        let id = q.push(t(1), 99);
        assert_eq!(id.as_u64(), 10);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(30), 30);
        assert_eq!(q.pop().unwrap().2, 10);
        q.push(t(20), 20);
        assert_eq!(q.pop().unwrap().2, 20);
        assert_eq!(q.pop().unwrap().2, 30);
    }

    #[test]
    fn same_time_ids_are_distinct() {
        let mut q = EventQueue::new();
        let a = q.push(t(0) + SimDuration::ZERO, 0);
        let b = q.push(t(0), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn slot_reuse_does_not_confuse_handles() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        // The slot freed by `a` is reused by `b`.
        let b = q.push(t(2), "b");
        assert!(!q.is_pending(a), "stale handle must not see the new event");
        assert!(!q.cancel(a), "stale handle must not cancel the new event");
        assert!(q.is_pending(b));
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_then_reuse_preserves_order() {
        let mut q = EventQueue::new();
        // Fill, cancel the middle, refill the hole with a later event.
        let ids: Vec<_> = (0..10u64).map(|i| q.push(t(i), i)).collect();
        for id in &ids[3..7] {
            assert!(q.cancel(*id));
        }
        for i in 20..24u64 {
            q.push(t(i), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 7, 8, 9, 20, 21, 22, 23]);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.push(t(i), i);
        }
        q.pop();
        q.pop();
        q.push(t(9), 9);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peak_len(), 5);
        q.clear();
        assert_eq!(q.peak_len(), 0, "clear resets the high-water mark");
        q.push(t(1), 1);
        assert_eq!(q.peak_len(), 1);
    }

    /// Events far beyond the wheel horizon (≈67 ms) take the overflow
    /// path and must still interleave exactly with near-future events.
    #[test]
    fn far_future_overflow_keeps_order() {
        let mut q = EventQueue::new();
        // Seconds apart: every push lands in the overflow heap relative
        // to the first bucket, then migrates as the cursor advances.
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_micros(10), 0);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    /// Same-instant FIFO survives the overflow → wheel migration.
    #[test]
    fn overflow_migration_preserves_fifo() {
        let mut q = EventQueue::new();
        let far = SimTime::from_secs(5);
        for i in 0..50 {
            q.push(far, i);
        }
        q.push(SimTime::from_micros(1), -1);
        assert_eq!(q.pop().unwrap().2, -1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    /// A push earlier than the cursor's bucket (the engine never does
    /// this, but the queue's contract allows it) still pops first.
    #[test]
    fn past_push_pops_first() {
        let mut q = EventQueue::new();
        q.push(t(100), 100);
        assert_eq!(q.pop().unwrap().2, 100); // cursor now at 100 ms
        q.push(t(50), 50);
        q.push(t(200), 200);
        q.push(t(40), 40);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![40, 50, 200]);
    }

    /// Pushes into the bucket currently being drained keep exact order
    /// relative to its remaining entries.
    #[test]
    fn push_into_draining_bucket_keeps_order() {
        let mut q = EventQueue::new();
        let base = SimTime::from_micros(100);
        q.push(base, 0);
        q.push(base + SimDuration::from_micros(4), 2);
        assert_eq!(q.pop().unwrap().2, 0);
        // Same bucket (16.384 µs wide), between the popped head and the
        // remaining entry.
        q.push(base + SimDuration::from_micros(2), 1);
        q.push(base + SimDuration::from_micros(4), 3); // FIFO after 2
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    /// The cancel-on-disarm contract against an outstanding batch:
    /// cancelling an entry already drained into the batch makes its
    /// `claim` return `None`, `requeue_batch` drops it, and the freed
    /// slot's reuse never resurrects the stale handle.
    #[test]
    fn cancel_of_batch_drained_entry_suppresses_claim_and_requeue() {
        let mut q = EventQueue::new();
        let base = SimTime::from_micros(100);
        q.push(base, 0);
        let armed = q.push(base + SimDuration::from_micros(2), 1);
        q.push(base + SimDuration::from_micros(4), 2);
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch_before(SimTime::from_millis(1), &mut buf), 3);
        // Disarm between drain and dispatch (what a handler does when it
        // cancels a later same-bucket timer).
        assert!(q.cancel(armed));
        assert_eq!(q.claim(buf[0]), Some(0));
        assert_eq!(q.claim(buf[1]), None, "cancelled entry must not dispatch");
        // The freed slot may be reused immediately; the stale batch entry
        // still must not claim the new occupant.
        let reused = q.push(base + SimDuration::from_micros(3), 9);
        assert_eq!(q.claim(buf[1]), None, "slot reuse must not resurrect");
        // Requeue the unclaimed tail: the live entry survives, and the
        // re-armed replacement pops in exact order with it.
        q.requeue_batch(&buf[2..]);
        assert!(q.is_pending(reused));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![9, 2]);
    }

    /// Pushing after an idle (empty) stretch jumps the cursor instead of
    /// walking every intermediate bucket.
    #[test]
    fn empty_queue_jump_then_earlier_push() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        assert_eq!(q.pop().unwrap().2, 1);
        assert!(q.is_empty());
        // Jump far ahead, then schedule something earlier than the jump
        // target (but after everything already popped).
        q.push(SimTime::from_secs(40), 40);
        q.push(SimTime::from_secs(20), 20);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(20)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![20, 40]);
    }
}
