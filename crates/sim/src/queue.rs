//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! Determinism requirement: two events scheduled for the same instant must
//! always execute in the order they were scheduled, on every run. The queue
//! therefore orders entries by the pair *(fire time, insertion sequence)* —
//! a strict total order with FIFO tie-breaking.
//!
//! # Implementation
//!
//! Events live in a **slab** (a vector of reusable slots with a free
//! list); the heap holds only small `Copy` entries `(time, seq, slot)`.
//! The insertion sequence number doubles as a **generation tag**: a slot
//! is live for exactly one sequence number, so a heap entry is stale iff
//! its sequence no longer matches its slot. Cancellation
//! ([`EventQueue::cancel`]) is O(1): drop the payload, free the slot,
//! and leave the heap entry to be skipped at pop time by the sequence
//! check — no hashing anywhere on the push/pop/cancel paths (the
//! previous implementation consulted a `HashSet` on every pop).
//!
//! # Examples
//!
//! ```
//! use essat_sim::queue::EventQueue;
//! use essat_sim::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! let t = SimTime::from_millis(5);
//! q.push(t, "b");
//! let id = q.push(SimTime::from_millis(1), "a");
//! q.push(t, "c");
//! assert!(q.cancel(id));
//! let (t1, _, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (t, "b")); // FIFO among same-time events
//! assert_eq!(q.pop().unwrap().2, "c");
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    /// Insertion sequence (unique per queue, monotonically increasing);
    /// doubles as the slot generation tag.
    seq: u64,
    /// Slab slot the event occupies (or occupied).
    slot: u32,
}

impl EventId {
    /// The raw sequence number (unique per queue, monotonically increasing).
    pub fn as_u64(self) -> u64 {
        self.seq
    }
}

/// One slab slot. `event` is `None` while the slot sits on the free
/// list; `seq` records the generation that last occupied it.
#[derive(Debug)]
struct Slot<E> {
    seq: u64,
    time: SimTime,
    event: Option<E>,
}

/// A heap entry: everything needed for ordering and staleness detection,
/// but not the event payload itself (which stays in the slab).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic future-event set.
///
/// See the [module documentation](self) for ordering and cancellation
/// semantics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time` and returns its cancellation
    /// handle.
    ///
    /// Scheduling into the past (before the last popped event) is allowed
    /// by the queue itself; the [`engine`](crate::engine) enforces clock
    /// monotonicity at a higher level.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.seq = seq;
                sl.time = time;
                sl.event = Some(event);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    seq,
                    time,
                    event: Some(event),
                });
                s
            }
        };
        self.heap.push(Reverse(HeapEntry { time, seq, slot }));
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        EventId { seq, slot }
    }

    /// True if `id` still identifies the live occupant of its slot.
    fn is_live(&self, id: EventId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|sl| sl.seq == id.seq && sl.event.is_some())
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        let sl = &mut self.slots[id.slot as usize];
        sl.event = None;
        self.free.push(id.slot);
        self.live -= 1;
        true
    }

    /// Returns `true` if the event is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.is_live(id)
    }

    /// Removes and returns the earliest pending event as
    /// `(time, id, event)`, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let sl = &mut self.slots[entry.slot as usize];
            if sl.seq != entry.seq {
                continue; // stale: cancelled and possibly reused
            }
            let Some(event) = sl.event.take() else {
                continue; // stale: cancelled, slot not yet reused
            };
            self.free.push(entry.slot);
            self.live -= 1;
            return Some((
                entry.time,
                EventId {
                    seq: entry.seq,
                    slot: entry.slot,
                },
                event,
            ));
        }
        None
    }

    /// The fire time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the answer reflects a live event.
        while let Some(Reverse(entry)) = self.heap.peek() {
            let sl = &self.slots[entry.slot as usize];
            if sl.seq == entry.seq && sl.event.is_some() {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// The largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Removes all pending events and resets the high-water mark.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.peak_live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_is_exact() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        let (_, id, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert_eq!(id, b);
        assert!(!q.cancel(b), "cancel after pop reports false");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn is_pending_tracks_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), ());
        assert!(q.is_pending(a));
        q.pop();
        assert!(!q.is_pending(a));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(t(i), i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.scheduled_total(), 10);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        // Sequence numbers keep increasing after clear.
        let id = q.push(t(1), 99);
        assert_eq!(id.as_u64(), 10);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(30), 30);
        assert_eq!(q.pop().unwrap().2, 10);
        q.push(t(20), 20);
        assert_eq!(q.pop().unwrap().2, 20);
        assert_eq!(q.pop().unwrap().2, 30);
    }

    #[test]
    fn same_time_ids_are_distinct() {
        let mut q = EventQueue::new();
        let a = q.push(t(0) + SimDuration::ZERO, 0);
        let b = q.push(t(0), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn slot_reuse_does_not_confuse_handles() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        // The slot freed by `a` is reused by `b`.
        let b = q.push(t(2), "b");
        assert!(!q.is_pending(a), "stale handle must not see the new event");
        assert!(!q.cancel(a), "stale handle must not cancel the new event");
        assert!(q.is_pending(b));
        assert_eq!(q.pop().unwrap().2, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_then_reuse_preserves_order() {
        let mut q = EventQueue::new();
        // Fill, cancel the middle, refill the hole with a later event.
        let ids: Vec<_> = (0..10u64).map(|i| q.push(t(i), i)).collect();
        for id in &ids[3..7] {
            assert!(q.cancel(*id));
        }
        for i in 20..24u64 {
            q.push(t(i), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 7, 8, 9, 20, 21, 22, 23]);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.push(t(i), i);
        }
        q.pop();
        q.pop();
        q.push(t(9), 9);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peak_len(), 5);
        q.clear();
        assert_eq!(q.peak_len(), 0, "clear resets the high-water mark");
        q.push(t(1), 1);
        assert_eq!(q.peak_len(), 1);
    }
}
