//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! Determinism requirement: two events scheduled for the same instant must
//! always execute in the order they were scheduled, on every run. The queue
//! therefore orders entries by the pair *(fire time, insertion sequence)* —
//! a strict total order with FIFO tie-breaking.
//!
//! Cancellation is exact: [`EventQueue::cancel`] removes a pending event by
//! its [`EventId`] and reports whether the event was actually still
//! pending. Internally this uses lazy deletion (the heap entry is skipped
//! at pop time), which keeps `cancel` O(1).
//!
//! # Examples
//!
//! ```
//! use essat_sim::queue::EventQueue;
//! use essat_sim::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! let t = SimTime::from_millis(5);
//! q.push(t, "b");
//! let id = q.push(SimTime::from_millis(1), "a");
//! q.push(t, "c");
//! assert!(q.cancel(id));
//! let (t1, _, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (t, "b")); // FIFO among same-time events
//! assert_eq!(q.pop().unwrap().2, "c");
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (unique per queue, monotonically increasing).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic future-event set.
///
/// See the [module documentation](self) for ordering and cancellation
/// semantics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    pending: HashSet<u64>,
    next_seq: u64,
    last_popped: Option<SimTime>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            last_popped: None,
        }
    }

    /// Schedules `event` to fire at `time` and returns its cancellation
    /// handle.
    ///
    /// Scheduling into the past (before the last popped event) is allowed
    /// by the queue itself; the [`engine`](crate::engine) enforces clock
    /// monotonicity at a higher level.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Reverse(Entry { time, seq, event }));
        EventId(seq)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Returns `true` if the event is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.pending.contains(&id.0)
    }

    /// Removes and returns the earliest pending event as
    /// `(time, id, event)`, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                self.last_popped = Some(entry.time);
                return Some((entry.time, EventId(entry.seq), entry.event));
            }
        }
        None
    }

    /// The fire time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the answer reflects a live event.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_is_exact() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        let (_, id, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert_eq!(id, b);
        assert!(!q.cancel(b), "cancel after pop reports false");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn is_pending_tracks_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), ());
        assert!(q.is_pending(a));
        q.pop();
        assert!(!q.is_pending(a));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(t(i), i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.scheduled_total(), 10);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        // Sequence numbers keep increasing after clear.
        let id = q.push(t(1), 99);
        assert_eq!(id.as_u64(), 10);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(30), 30);
        assert_eq!(q.pop().unwrap().2, 10);
        q.push(t(20), 20);
        assert_eq!(q.pop().unwrap().2, 20);
        assert_eq!(q.pop().unwrap().2, 30);
    }

    #[test]
    fn same_time_ids_are_distinct() {
        let mut q = EventQueue::new();
        let a = q.push(t(0) + SimDuration::ZERO, 0);
        let b = q.push(t(0), 1);
        assert_ne!(a, b);
    }
}
