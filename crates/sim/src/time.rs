//! Simulation clock types.
//!
//! The simulator measures time as a number of **nanoseconds** since the
//! start of the run, stored in a `u64`. That gives ~584 years of range —
//! far beyond any experiment — while keeping arithmetic exact and the
//! event order fully deterministic (no floating-point comparison ties).
//!
//! Two newtypes are provided, mirroring `std::time`:
//!
//! * [`SimTime`] — an absolute instant on the simulation clock.
//! * [`SimDuration`] — a span between two instants.
//!
//! # Examples
//!
//! ```
//! use essat_sim::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let period = SimDuration::from_millis(200);
//! let third_round = start + 3 * period;
//! assert_eq!(third_round.as_secs_f64(), 0.6);
//! assert_eq!(third_round - start, SimDuration::from_millis(600));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is ordered, hashable and cheap to copy; it is the key type of
/// the event queue. Subtracting two instants yields a [`SimDuration`];
/// subtracting a duration that would underflow panics (use
/// [`SimTime::saturating_sub`] or [`SimTime::checked_sub`] when the
/// operand may be in the past).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// Durations are unsigned: operations that would produce a negative span
/// panic in the checked forms and clamp to zero in the `saturating_*`
/// forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel when computing a minimum over wake-up candidates.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from a floating-point number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_f64_to_nanos(secs))
    }

    /// Nanoseconds since the simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds since the simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Seconds since the simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        self.checked_duration_since(earlier)
            .unwrap_or_else(|| panic!("duration_since: {earlier} is later than {self}"))
    }

    /// The duration elapsed since `earlier`, or `None` if `earlier` is
    /// later than `self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The duration elapsed since `earlier`, clamped to zero.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, or `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// `self - d`, or `None` on underflow.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }

    /// `self - d`, clamped to [`SimTime::ZERO`].
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from a floating-point number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_f64_to_nanos(secs))
    }

    /// The period of a periodic process running at `hz` events per second.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_rate_hz(hz: f64) -> Self {
        assert!(
            hz.is_finite() && hz > 0.0,
            "rate must be positive and finite, got {hz}"
        );
        SimDuration::from_secs_f64(1.0 / hz)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, clamped to zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// `self + other`, or `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// `self * k`, or `None` on overflow.
    pub fn checked_mul(self, k: u64) -> Option<SimDuration> {
        self.0.checked_mul(k).map(SimDuration)
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

fn secs_f64_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "seconds must be finite and non-negative, got {secs}"
    );
    let nanos = secs * NANOS_PER_SEC as f64;
    assert!(
        nanos <= u64::MAX as f64,
        "seconds value {secs} overflows the simulation clock"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        self.checked_sub(rhs)
            .expect("simulation clock underflow: subtracting duration before t=0")
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration underflow: result would be negative"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        rhs * self
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.0 as f64 / NANOS_PER_MILLI as f64)
        } else if self.0 >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.0 as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimTime::from_secs_f64(1.25).as_millis(), 1_250);
    }

    #[test]
    fn rate_to_period() {
        assert_eq!(
            SimDuration::from_rate_hz(5.0),
            SimDuration::from_millis(200)
        );
        assert_eq!(SimDuration::from_rate_hz(0.2), SimDuration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = SimDuration::from_rate_hz(0.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(40);
        assert_eq!(t + d, SimTime::from_millis(140));
        assert_eq!(t - d, SimTime::from_millis(60));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_sub(SimDuration::from_secs(10)), SimTime::ZERO);
        assert_eq!(t.checked_sub(SimDuration::from_secs(10)), None);
        assert_eq!(
            t.saturating_duration_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_millis(1).duration_since(SimTime::from_millis(2));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_micros(300);
        assert_eq!(d * 4, SimDuration::from_micros(1200));
        assert_eq!(4 * d, SimDuration::from_micros(1200));
        assert_eq!(d / 3, SimDuration::from_micros(100));
        assert_eq!(d - d, SimDuration::ZERO);
        assert!(d.saturating_sub(SimDuration::from_secs(1)).is_zero());
        let total: SimDuration = (0..5).map(|_| d).sum();
        assert_eq!(total, d * 5);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_millis(1);
        let y = SimDuration::from_millis(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
    }

    #[test]
    fn sentinels() {
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
        assert!(SimDuration::MAX > SimDuration::from_secs(1_000_000));
    }
}
