//! # essat-sim — deterministic discrete-event simulation engine
//!
//! The substrate underneath the ESSAT reproduction: a sequential
//! discrete-event engine with a nanosecond clock, a deterministic
//! `(time, sequence)`-ordered event queue with exact cancellation,
//! derivable seeded randomness, and the streaming statistics the paper's
//! evaluation needs (Welford accumulators with Student-t confidence
//! intervals, fixed-width histograms).
//!
//! The engine replaces ns-2 in the original evaluation. It is
//! intentionally minimal: models are plain structs implementing
//! [`engine::Model`], events are plain enums, and all randomness flows
//! from a single seed through [`rng::SimRng::derive`] so that every run is
//! bit-for-bit reproducible.
//!
//! ## Quick tour
//!
//! ```
//! use essat_sim::prelude::*;
//!
//! struct Pinger {
//!     sent: u32,
//! }
//! enum Ev {
//!     Ping,
//! }
//! impl Model for Pinger {
//!     type Event = Ev;
//!     fn handle(&mut self, _ev: Ev, ctx: &mut Context<'_, Ev>) {
//!         self.sent += 1;
//!         if self.sent < 3 {
//!             ctx.schedule_after(SimDuration::from_millis(100), Ev::Ping);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Pinger { sent: 0 });
//! engine.schedule_at(SimTime::ZERO, Ev::Ping);
//! engine.run_until_idle();
//! assert_eq!(engine.model().sent, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenience re-exports of the types almost every consumer needs.
pub mod prelude {
    pub use crate::engine::{Context, Engine, Model};
    pub use crate::queue::{EventId, EventQueue};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Confidence, Histogram, OnlineStats};
    pub use crate::time::{SimDuration, SimTime};
}
