//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use essat_sim::queue::EventQueue;
use essat_sim::rng::SimRng;
use essat_sim::stats::{Histogram, OnlineStats};
use essat_sim::time::{SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, and same-time
    /// events pop in insertion order.
    #[test]
    fn queue_pop_order_is_total(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated among equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Cancellation removes exactly the chosen events.
    #[test]
    fn queue_cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_nanos(t), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        prop_assert_eq!(q.len(), expect.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, _, v)) = q.pop() {
            popped.push(v);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, expect);
    }

    /// FIFO among same-instant events survives random cancellations and
    /// slab-slot reuse: after cancelling an arbitrary subset and pushing
    /// a second wave of events (which recycles freed slots), the
    /// survivors still pop in exact `(time, insertion sequence)` order.
    #[test]
    fn queue_fifo_under_random_cancellations(
        first_wave in proptest::collection::vec(0u64..50, 1..150),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..150),
        second_wave in proptest::collection::vec(0u64..50, 0..150),
    ) {
        let mut q = EventQueue::new();
        // Expected survivors as (time, seq, payload), later sorted the
        // way the queue contract orders them.
        let mut expected: Vec<(u64, u64, usize)> = Vec::new();
        let ids: Vec<_> = first_wave
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_nanos(t), i))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push((first_wave[i], id.as_u64(), i));
            }
        }
        // Second wave reuses the cancelled slots.
        for (j, &t) in second_wave.iter().enumerate() {
            let id = q.push(SimTime::from_nanos(t), first_wave.len() + j);
            expected.push((t, id.as_u64(), first_wave.len() + j));
        }
        expected.sort_unstable();
        let mut popped: Vec<usize> = Vec::new();
        let mut last: Option<(SimTime, u64)> = None;
        while let Some((t, id, v)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                prop_assert!(id.as_u64() > lseq || t > lt, "FIFO violated among equal times");
            }
            last = Some((t, id.as_u64()));
            popped.push(v);
        }
        let expect_payloads: Vec<usize> = expected.iter().map(|&(_, _, v)| v).collect();
        prop_assert_eq!(popped, expect_payloads);
        prop_assert!(q.is_empty());
    }

    /// Time arithmetic round-trips: (t + d) − d == t and
    /// (t + d) − t == d.
    #[test]
    fn time_addition_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(t);
        let d = SimDuration::from_nanos(d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!(t + d >= t);
    }

    /// Saturating operations never panic and clamp correctly.
    #[test]
    fn time_saturating_ops(a in any::<u64>(), b in any::<u64>()) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        let sub = t.saturating_sub(d);
        prop_assert!(sub <= t);
        if b > a {
            prop_assert_eq!(sub, SimTime::ZERO);
        }
        let dur = t.saturating_duration_since(SimTime::from_nanos(b));
        if a >= b {
            prop_assert_eq!(dur.as_nanos(), a - b);
        } else {
            prop_assert_eq!(dur, SimDuration::ZERO);
        }
    }

    /// Welford accumulation matches the naive two-pass computation.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let s: OnlineStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.sample_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Merging partitions equals accumulating the whole.
    #[test]
    fn welford_merge_is_partition_invariant(
        xs in proptest::collection::vec(-1e4f64..1e4, 2..100),
        split in 0usize..100,
    ) {
        let k = split % xs.len();
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..k].iter().copied().collect();
        let right: OnlineStats = xs[k..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-7 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.sample_variance() - whole.sample_variance()).abs()
                < 1e-5 * (1.0 + whole.sample_variance().abs())
        );
    }

    /// Histogram mass is conserved and fraction_below is monotone.
    #[test]
    fn histogram_mass_and_monotonicity(xs in proptest::collection::vec(0.0f64..10.0, 1..300)) {
        let mut h = Histogram::new(0.5, 10); // covers [0, 5); rest overflow
        for &x in &xs {
            h.add(x);
        }
        let binned: u64 = (0..h.bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let mut last = 0.0;
        for q in [0.5, 1.0, 2.0, 3.0, 5.0, 100.0] {
            let f = h.fraction_below(q);
            prop_assert!(f >= last - 1e-12, "fraction_below not monotone");
            prop_assert!((0.0..=1.0).contains(&f));
            last = f;
        }
    }

    /// Derived RNG streams are reproducible and independent of sibling
    /// draw order.
    #[test]
    fn rng_derivation_reproducible(seed in any::<u64>(), a in 0u64..64, b in 0u64..64) {
        let root = SimRng::seed_from_u64(seed);
        let mut c1 = root.derive(a);
        let v1 = c1.next_u64();
        // Interleave unrelated draws.
        let mut other = root.derive(b.wrapping_add(17));
        let _ = other.next_u64();
        let mut c2 = root.derive(a);
        prop_assert_eq!(c2.next_u64(), v1);
    }

    /// Uniform range draws respect their bounds.
    #[test]
    fn rng_ranges_in_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, width in 1e-3f64..1e6) {
        let mut rng = SimRng::seed_from_u64(seed);
        let hi = lo + width;
        for _ in 0..32 {
            let x = rng.range_f64(lo, hi);
            prop_assert!((lo..hi).contains(&x));
        }
    }
}

/// Deterministic stress: 50k randomly-timed events pop in a stable
/// order across two identical queues.
#[test]
fn queue_stress_is_stable() {
    use essat_sim::queue::EventQueue;
    use essat_sim::rng::SimRng;
    use essat_sim::time::SimTime;

    let build = || {
        let mut q = EventQueue::new();
        let mut rng = SimRng::seed_from_u64(99);
        for i in 0..50_000u64 {
            q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
        }
        let mut order = Vec::with_capacity(50_000);
        while let Some((_, _, e)) = q.pop() {
            order.push(e);
        }
        order
    };
    assert_eq!(build(), build());
}

/// Differential test of the timer-wheel queue against a reference
/// binary-heap model over random interleaved push / pop / cancel
/// workloads. Times span three regimes relative to the wheel's ≈67 ms
/// near-future window — current-bucket inserts, in-window buckets, and
/// far-future overflow (which must migrate back into the wheel as the
/// cursor advances) — and pops interleave with pushes so earlier-than-
/// cursor pushes are exercised too.
mod wheel_vs_reference {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use essat_sim::queue::EventQueue;
    use essat_sim::time::SimTime;
    use proptest::prelude::*;

    /// Reference model: a plain `(time, seq)` min-heap plus a cancelled
    /// set, with the exact contract the wheel must honour.
    #[derive(Default)]
    struct RefQueue {
        heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
        cancelled: Vec<bool>,
        next_seq: u64,
        live: usize,
    }

    impl RefQueue {
        fn push(&mut self, t: u64, payload: usize) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Reverse((t, seq, payload)));
            self.cancelled.push(false);
            self.live += 1;
            seq
        }
        fn cancel(&mut self, seq: u64) -> bool {
            let c = &mut self.cancelled[seq as usize];
            if *c {
                return false;
            }
            *c = true;
            self.live -= 1;
            true
        }
        fn pop(&mut self) -> Option<(u64, usize)> {
            while let Some(Reverse((t, seq, p))) = self.heap.pop() {
                if std::mem::replace(&mut self.cancelled[seq as usize], true) {
                    continue;
                }
                self.live -= 1;
                return Some((t, p));
            }
            None
        }
    }

    /// Timer kinds the differential arm/disarm owners juggle (the MAC
    /// has four: DIFS, backoff, ACK timeout, ACK delay).
    const TIMER_KINDS: usize = 4;

    /// True-cancellation owner: one live [`EventId`] handle per timer
    /// kind; disarm and re-arm cancel the superseded event on the
    /// queue, so every pop is a live firing.
    #[derive(Default)]
    struct CancelOwner {
        q: EventQueue<usize>,
        handle: [Option<essat_sim::queue::EventId>; TIMER_KINDS],
    }

    impl CancelOwner {
        fn arm(&mut self, kind: usize, at: SimTime) {
            if let Some(old) = self.handle[kind].take() {
                assert!(self.q.cancel(old), "displaced handle was not live");
            }
            self.handle[kind] = Some(self.q.push(at, kind));
        }
        fn disarm(&mut self, kind: usize) {
            if let Some(old) = self.handle[kind].take() {
                assert!(self.q.cancel(old), "disarmed handle was not live");
            }
        }
        fn fire_next(&mut self) -> Option<(u64, usize)> {
            let (t, id, kind) = self.q.pop()?;
            assert_eq!(self.handle[kind], Some(id), "popped a superseded timer");
            self.handle[kind] = None;
            Some((t.as_nanos(), kind))
        }
    }

    /// Fire-and-filter owner (the retired protocol): arm and disarm
    /// bump a per-kind generation; superseded events stay queued and
    /// are filtered out at dispatch.
    #[derive(Default)]
    struct FilterOwner {
        q: EventQueue<(usize, u64)>,
        gen: [u64; TIMER_KINDS],
        armed: [bool; TIMER_KINDS],
    }

    impl FilterOwner {
        fn arm(&mut self, kind: usize, at: SimTime) {
            self.gen[kind] += 1;
            self.armed[kind] = true;
            self.q.push(at, (kind, self.gen[kind]));
        }
        fn disarm(&mut self, kind: usize) {
            self.gen[kind] += 1;
            self.armed[kind] = false;
        }
        fn fire_next(&mut self) -> Option<(u64, usize)> {
            while let Some((t, _, (kind, gen))) = self.q.pop() {
                if self.armed[kind] && gen == self.gen[kind] {
                    self.armed[kind] = false;
                    return Some((t.as_nanos(), kind));
                }
            }
            None
        }
    }

    /// One scripted operation: 0 = push, 1 = pop, 2 = cancel.
    fn op_strategy() -> impl Strategy<Value = (u8, u64, u16)> {
        (
            0u8..3,
            // Mix µs-scale (current bucket), ms-scale (in-window) and
            // 100 ms-scale (overflow) times.
            prop_oneof![0u64..20_000, 0u64..5_000_000, 0u64..150_000_000],
            any::<u16>(),
        )
    }

    proptest! {
        #[test]
        fn wheel_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
            let mut q = EventQueue::new();
            let mut r = RefQueue::default();
            let mut ids = Vec::new(); // wheel ids by ref seq
            let mut payload = 0usize;
            for (op, t, pick) in ops {
                match op {
                    0 => {
                        let id = q.push(SimTime::from_nanos(t), payload);
                        let seq = r.push(t, payload);
                        prop_assert_eq!(id.as_u64(), seq, "seq numbering agrees");
                        ids.push(id);
                        payload += 1;
                    }
                    1 => {
                        let got = q.pop().map(|(t, _, p)| (t.as_nanos(), p));
                        prop_assert_eq!(got, r.pop(), "pop order diverged");
                    }
                    _ if !ids.is_empty() => {
                        let id = ids[pick as usize % ids.len()];
                        prop_assert_eq!(q.cancel(id), r.cancel(id.as_u64()), "cancel outcome diverged");
                    }
                    _ => {}
                }
                prop_assert_eq!(q.len(), r.live, "live count diverged");
            }
            // Drain: the survivors must agree exactly, in order.
            loop {
                let got = q.pop().map(|(t, _, p)| (t.as_nanos(), p));
                let want = r.pop();
                prop_assert_eq!(got, want, "drain order diverged");
                if got.is_none() {
                    break;
                }
            }
        }

        /// Differential test of the batch-drain protocol (the exact
        /// consumption loop the engine runs: `pop_batch_before`, then
        /// per entry a dirty-merge via `pop_before_entry` followed by
        /// `claim`) against the reference heap, with mid-drain pushes
        /// into the current bucket, far-future pushes whose overflow
        /// entries must migrate across batch boundaries, and cancels of
        /// not-yet-claimed batch entries.
        #[test]
        fn batch_drain_matches_reference(
            initial in proptest::collection::vec(
                prop_oneof![0u64..20_000, 0u64..5_000_000, 0u64..150_000_000],
                1..150,
            ),
            script in proptest::collection::vec((0u8..3, 0u64..20_000, any::<u16>()), 0..150),
        ) {
            let mut q = EventQueue::new();
            let mut r = RefQueue::default();
            let mut ids = Vec::new();
            let mut payload = 0usize;
            for &t in &initial {
                ids.push(q.push(SimTime::from_nanos(t), payload));
                r.push(t, payload);
                payload += 1;
            }
            let mut script = script.into_iter();
            let deadline = SimTime::from_nanos(2_000_000_000);
            let mut buf = Vec::new();
            while q.pop_batch_before(deadline, &mut buf) != 0 {
                for &e in &buf {
                    // One scripted interference op per batch entry,
                    // played *between* dispatches like a handler would.
                    match script.next() {
                        Some((0, dt, _)) => {
                            // Near push: often lands in the bucket being
                            // consumed and must merge into dispatch order.
                            let t = e.time().as_nanos() + dt % 4_096;
                            ids.push(q.push(SimTime::from_nanos(t), payload));
                            r.push(t, payload);
                            payload += 1;
                        }
                        Some((1, dt, _)) => {
                            // Far push: lands in the overflow heap and
                            // must migrate back as later batches drain.
                            let t = e.time().as_nanos() + 100_000_000 + dt;
                            ids.push(q.push(SimTime::from_nanos(t), payload));
                            r.push(t, payload);
                            payload += 1;
                        }
                        Some((_, _, pick)) if !ids.is_empty() => {
                            let id = ids[pick as usize % ids.len()];
                            prop_assert_eq!(
                                q.cancel(id),
                                r.cancel(id.as_u64()),
                                "cancel outcome diverged"
                            );
                        }
                        _ => {}
                    }
                    if q.batch_dirty() {
                        while let Some((t, _, p)) = q.pop_before_entry(e) {
                            prop_assert_eq!(
                                Some((t.as_nanos(), p)),
                                r.pop(),
                                "mid-drain intruder order diverged"
                            );
                        }
                    }
                    if let Some(p) = q.claim(e) {
                        prop_assert_eq!(
                            Some((e.time().as_nanos(), p)),
                            r.pop(),
                            "batch dispatch order diverged"
                        );
                    }
                }
            }
            prop_assert!(q.is_empty(), "wheel retains events past the drain");
            prop_assert_eq!(r.pop(), None, "reference retains events the wheel dropped");
        }

        /// Differential test of the true-cancellation timer protocol
        /// against the retired fire-and-filter (generation fence)
        /// protocol, over random arm / disarm / re-arm / fire scripts.
        /// Both owners drive the same wheel implementation and push on
        /// every arm, so sequence numbers line up; the only difference
        /// is whether a superseded timer is cancelled on the queue or
        /// left to be filtered at dispatch. The observable firings —
        /// `(time, kind)`, in exact FIFO order — must be identical,
        /// which is precisely the behaviour-preservation argument for
        /// retiring the stale-dispatch path.
        #[test]
        fn cancellation_matches_fire_and_filter(
            ops in proptest::collection::vec(
                (0u8..4, 0usize..TIMER_KINDS, 0u64..500_000),
                1..300,
            ),
        ) {
            let mut live = CancelOwner::default();
            let mut reference = FilterOwner::default();
            let mut now = 0u64;
            for (op, kind, dt) in ops {
                match op {
                    // Arm (a re-arm when already armed: the cancel
                    // owner displaces the old handle).
                    0 | 1 => {
                        let at = SimTime::from_nanos(now + dt);
                        live.arm(kind, at);
                        reference.arm(kind, at);
                    }
                    2 => {
                        live.disarm(kind);
                        reference.disarm(kind);
                    }
                    _ => {
                        let got = live.fire_next();
                        prop_assert_eq!(got, reference.fire_next(), "firing diverged");
                        if let Some((t, _)) = got {
                            now = now.max(t);
                        }
                    }
                }
            }
            // Drain: every remaining armed timer fires, in the same
            // order, and nothing else does.
            loop {
                let got = live.fire_next();
                prop_assert_eq!(got, reference.fire_next(), "drain firing diverged");
                if got.is_none() {
                    break;
                }
            }
        }

        /// Same-instant FIFO across the overflow → wheel migration: a
        /// burst scheduled far in the future pops in insertion order
        /// even though it reaches the wheel via the overflow heap.
        #[test]
        fn far_future_fifo_survives_migration(
            far in 67_000_000u64..1_000_000_000,
            burst in 2usize..60,
        ) {
            let mut q = EventQueue::new();
            q.push(SimTime::from_nanos(1), usize::MAX);
            for i in 0..burst {
                q.push(SimTime::from_nanos(far), i);
            }
            assert_eq!(q.pop().unwrap().2, usize::MAX);
            for i in 0..burst {
                prop_assert_eq!(q.pop().unwrap().2, i, "FIFO broken after migration");
            }
            prop_assert!(q.pop().is_none());
        }
    }
}
