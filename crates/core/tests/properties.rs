//! Property-based tests of the ESSAT protocol invariants.

use proptest::prelude::*;

use essat_core::dts::Dts;
use essat_core::maintenance::{LossDetector, LossObservation};
use essat_core::nts::Nts;
use essat_core::safe_sleep::{SafeSleep, SleepDecision};
use essat_core::shaper::{TrafficShaper, TreeInfo};
use essat_core::sts::Sts;
use essat_net::ids::NodeId;
use essat_query::aggregate::AggregateOp;
use essat_query::model::{Query, QueryId};
use essat_sim::time::{SimDuration, SimTime};

fn query(period_ms: u64, phase_ms: u64) -> Query {
    Query::periodic(
        QueryId::new(0),
        SimDuration::from_millis(period_ms),
        SimTime::from_millis(phase_ms),
        AggregateOp::Avg,
    )
}

proptest! {
    /// Safe Sleep never schedules the wake-up after the earliest
    /// expectation, and only sleeps when the gap strictly exceeds the
    /// break-even time.
    #[test]
    fn safe_sleep_wake_is_never_late(
        t_be_us in 0u64..50_000,
        t_on_us in 0u64..20_000,
        now_ms in 0u64..1_000,
        exps in proptest::collection::vec((0u32..4, 0u32..8, 0u64..2_000), 1..20),
    ) {
        let mut ss = SafeSleep::new(
            SimDuration::from_micros(t_be_us),
            SimDuration::from_micros(t_on_us),
        );
        for &(q, c, at_ms) in &exps {
            ss.update_next_receive(QueryId::new(q), NodeId::new(c), SimTime::from_millis(at_ms));
        }
        let earliest = ss.earliest().expect("non-empty");
        let now = SimTime::from_millis(now_ms);
        match ss.decide(now) {
            SleepDecision::Sleep { start_wake_at, wakeup_due } => {
                prop_assert_eq!(wakeup_due, earliest);
                prop_assert!(earliest > now, "must not sleep when busy");
                // Wake completes by the expectation.
                prop_assert!(
                    start_wake_at + SimDuration::from_micros(t_on_us) <= earliest
                        || start_wake_at == SimTime::ZERO
                );
                // Gap strictly exceeds t_BE.
                prop_assert!(earliest - now > SimDuration::from_micros(t_be_us));
            }
            SleepDecision::Busy => prop_assert!(earliest <= now),
            SleepDecision::StayAwake { until } => {
                prop_assert_eq!(until, earliest);
                prop_assert!(earliest > now);
                prop_assert!(earliest - now <= SimDuration::from_micros(t_be_us));
            }
            SleepDecision::Unconstrained => prop_assert!(false, "expectations exist"),
        }
    }

    /// NTS expectations equal the closed form `φ + k·P` for every round,
    /// regardless of call order.
    #[test]
    fn nts_matches_closed_form(
        period_ms in 10u64..2_000,
        phase_ms in 0u64..10_000,
        rounds in 1u64..50,
    ) {
        let q = query(period_ms, phase_ms);
        let mut nts = Nts::new();
        let tree = TreeInfo::leaf(4);
        for k in 0..rounds {
            let s = nts.after_send(&q, k, q.round_start(k), &tree);
            prop_assert_eq!(s, q.round_start(k + 1));
            let r = nts.after_receive(&q, NodeId::new(1), k, q.round_start(k), None, &tree);
            prop_assert_eq!(r, q.round_start(k + 1));
        }
    }

    /// STS slots: reception expectation equals the child's send slot,
    /// both within the deadline window, and the whole schedule shifts by
    /// exactly one period per round.
    #[test]
    fn sts_slots_are_periodic_and_ordered(
        period_ms in 50u64..2_000,
        phase_ms in 0u64..5_000,
        own_rank in 1u32..6,
        max_rank in 1u32..8,
        child_rank in 0u32..6,
        k in 0u64..100,
    ) {
        let own_rank = own_rank.min(max_rank);
        let child_rank = child_rank.min(own_rank.saturating_sub(1));
        let q = query(period_ms, phase_ms);
        let children = [(NodeId::new(1), child_rank)];
        let tree = TreeInfo { own_rank, max_rank, own_level: max_rank.saturating_sub(own_rank), max_level: max_rank, children: &children };
        let mut sts = Sts::new();
        let rel_k = sts.release(&q, k, q.round_start(k), &tree);
        let rel_k1 = sts.release(&q, k + 1, q.round_start(k + 1), &tree);
        // Periodicity.
        prop_assert_eq!(
            rel_k1.send_at - rel_k.send_at,
            SimDuration::from_millis(period_ms)
        );
        // Send slot precedes the deadline end.
        prop_assert!(rel_k.send_at <= q.round_start(k) + q.deadline);
        // Child's slot precedes ours.
        let r = sts.after_receive(&q, NodeId::new(1), k, rel_k.send_at, None, &tree);
        let s = sts.after_send(&q, k, rel_k.send_at, &tree);
        prop_assert!(r <= s, "child slot {} after own slot {}", r, s);
    }

    /// DTS send times never regress and consecutive rounds are at least
    /// one period apart, under arbitrary readiness jitter.
    #[test]
    fn dts_phases_monotone(
        period_ms in 50u64..500,
        phase_ms in 0u64..2_000,
        jitter in proptest::collection::vec(0i64..400, 1..60),
    ) {
        let q = query(period_ms, phase_ms);
        let mut dts = Dts::new();
        let tree = TreeInfo::leaf(4);
        dts.register(&q, &tree, false);
        let mut last_send: Option<SimTime> = None;
        for (k, &j) in jitter.iter().enumerate() {
            let k = k as u64;
            // Ready somewhere around the round start, sometimes late.
            let ready = q.round_start(k) + SimDuration::from_millis(j as u64);
            let rel = dts.release(&q, k, ready, &tree);
            prop_assert!(rel.send_at >= ready.min(rel.send_at));
            if let Some(prev) = last_send {
                prop_assert!(
                    rel.send_at >= prev + SimDuration::from_millis(period_ms),
                    "round {k}: {} < {} + P",
                    rel.send_at,
                    prev
                );
            }
            // Late release ⇒ phase shift ⇒ piggyback present.
            let s_next = dts.after_send(&q, k, rel.send_at, &tree);
            prop_assert_eq!(s_next, rel.send_at + SimDuration::from_millis(period_ms));
            last_send = Some(rel.send_at);
        }
    }

    /// Parent and child DTS state agree after any loss-free exchange:
    /// the parent's next expected reception equals the child's next
    /// expected send time.
    #[test]
    fn dts_parent_child_agreement(
        period_ms in 50u64..500,
        jitter in proptest::collection::vec(0i64..300, 1..40),
    ) {
        let q = query(period_ms, 1_000);
        let child_id = NodeId::new(7);
        let mut child = Dts::new();
        let mut parent = Dts::new();
        let leaf = TreeInfo::leaf(3);
        let children = [(child_id, 0u32)];
        let ptree = TreeInfo { own_rank: 1, max_rank: 3, own_level: 2, max_level: 3, children: &children };
        child.register(&q, &leaf, false);
        parent.register(&q, &ptree, false);
        for (k, &j) in jitter.iter().enumerate() {
            let k = k as u64;
            let ready = q.round_start(k) + SimDuration::from_millis(j as u64);
            let rel = child.release(&q, k, ready, &leaf);
            let s_next = child.after_send(&q, k, rel.send_at, &leaf);
            // Loss-free: parent receives the report (with any piggyback).
            let r_next = parent.after_receive(
                &q, child_id, k, rel.send_at, rel.piggyback, &ptree,
            );
            prop_assert_eq!(
                r_next, s_next,
                "round {}: parent expects {}, child sends {}",
                k, r_next, s_next
            );
        }
    }

    /// The loss detector counts gaps exactly under arbitrary subsets of
    /// delivered rounds.
    #[test]
    fn loss_detector_counts_gaps(present in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut det = LossDetector::new();
        let q = QueryId::new(0);
        let c = NodeId::new(1);
        let mut last: Option<u64> = None;
        for (k, &p) in present.iter().enumerate() {
            let k = k as u64;
            if !p {
                continue;
            }
            let obs = det.observe(q, c, k);
            match last {
                None => prop_assert_eq!(obs, LossObservation::First),
                Some(l) if k == l + 1 => prop_assert_eq!(obs, LossObservation::InOrder),
                Some(l) => prop_assert_eq!(obs, LossObservation::Gap { missed: k - l - 1 }),
            }
            last = Some(k);
        }
    }
}
