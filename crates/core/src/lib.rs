//! # essat-core — the paper's contribution
//!
//! ESSAT (Efficient Sleep Scheduling based on Application Timing) as
//! defined in Chipara, Lu & Roman: a power-management layer that sits
//! between a CSMA/CA MAC and a tree-based query service and exploits the
//! application's timing semantics (`period P`, `phase φ`) to switch node
//! radios off *safely* — with no energy and no delay penalty.
//!
//! An ESSAT protocol is the combination of:
//!
//! * [`safe_sleep`] — the local Safe Sleep scheduler (`checkState` of the
//!   paper's Figure 1): sleeps exactly when the gap until the earliest
//!   expected send/reception exceeds the radio's break-even time, waking
//!   `t_OFF→ON` early.
//! * one [`shaper::TrafficShaper`]:
//!   [`nts::Nts`] (greedy, no shaping), [`sts::Sts`] (static rank-slot
//!   pipeline, `l = D/M`), or [`dts::Dts`] (Release-Guard-style
//!   self-tuning phases with piggybacked updates) — yielding the paper's
//!   NTS-SS, STS-SS and DTS-SS protocols.
//! * [`maintenance`] — §4.3 robustness: loss detection, DTS phase
//!   resynchronisation, and failure detection for parents/children.
//!
//! The [`policy`] module packages the combination behind the pluggable
//! [`policy::PowerPolicy`] trait — the seam between the simulator's
//! protocol-agnostic executor and any power-management protocol
//! (ESSAT variants here, baselines in `essat-baselines`, custom
//! policies out of tree).
//!
//! The crate is engine-free: every type is a deterministic state machine
//! driven by the `essat-wsn` node stack and unit-testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dts;
pub mod maintenance;
pub mod nts;
pub mod policy;
pub mod safe_sleep;
pub mod shaper;
pub mod sts;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dts::{Dts, DtsConfig};
    pub use crate::maintenance::{FailureDetector, LossDetector, LossObservation, ResyncPolicy};
    pub use crate::nts::Nts;
    pub use crate::policy::{
        EssatPolicy, NodeView, PolicyAction, PolicyTimer, PowerPolicy, SleepTrigger,
    };
    pub use crate::safe_sleep::{SafeSleep, SleepDecision};
    pub use crate::shaper::{Expectations, Release, ShaperKind, TrafficShaper, TreeInfo};
    pub use crate::sts::{Sts, StsConfig};
}
