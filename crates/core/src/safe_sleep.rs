//! Safe Sleep (SS) — the paper's local sleep-scheduling algorithm (§4.1,
//! Figure 1).
//!
//! SS keeps, for every query routed through the node, the next expected
//! send time `q.snext` and, per child `c`, the next expected reception
//! time `q.rnext(c)`. The traffic shaper updates these incrementally;
//! whenever they change SS re-evaluates:
//!
//! ```text
//! t_wakeup = min( {q.snext ∀q} ∪ {q.rnext(c) ∀q,c} )
//! t_sleep  = t_wakeup − now
//! if t_sleep > t_BE:
//!     sleep, wake the radio at t_wakeup − t_OFF→ON
//! ```
//!
//! Two properties follow by construction (the "safe" in Safe Sleep):
//!
//! 1. **No delay penalty** — the radio is awake by `t_wakeup` because the
//!    wake-up is initiated `t_OFF→ON` early.
//! 2. **No energy penalty** — the node only sleeps when the free interval
//!    exceeds the break-even time `t_BE`.
//!
//! An expectation at or before `now` means the node is **busy** (it is
//! waiting for a late report or has one to send) and must stay awake.
//!
//! # Examples
//!
//! ```
//! use essat_core::safe_sleep::{SafeSleep, SleepDecision};
//! use essat_net::ids::NodeId;
//! use essat_query::model::QueryId;
//! use essat_sim::time::{SimDuration, SimTime};
//!
//! let mut ss = SafeSleep::new(SimDuration::from_micros(2_500), SimDuration::from_micros(1_250));
//! let q = QueryId::new(0);
//! ss.update_next_send(q, SimTime::from_millis(100));
//! ss.update_next_receive(q, NodeId::new(3), SimTime::from_millis(80));
//! match ss.decide(SimTime::from_millis(10)) {
//!     SleepDecision::Sleep { start_wake_at, wakeup_due } => {
//!         assert_eq!(wakeup_due, SimTime::from_millis(80));
//!         assert_eq!(start_wake_at, SimTime::from_millis(80) - SimDuration::from_micros(1_250));
//!     }
//!     other => panic!("expected sleep, got {other:?}"),
//! }
//! ```

use std::collections::BTreeMap;

use essat_net::ids::NodeId;
use essat_query::model::QueryId;
use essat_sim::time::{SimDuration, SimTime};

/// The verdict of `checkState` at a given instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepDecision {
    /// An expectation is due now or overdue: the node is busy and must
    /// stay awake.
    Busy,
    /// The node is free, but for no longer than the break-even time;
    /// switching off would cost energy or delay, so stay awake.
    StayAwake {
        /// The earliest upcoming expectation.
        until: SimTime,
    },
    /// The free interval exceeds `t_BE`: switch the radio off.
    Sleep {
        /// When to start waking the radio (`t_wakeup − t_OFF→ON`).
        start_wake_at: SimTime,
        /// The expectation the node must be awake for.
        wakeup_due: SimTime,
    },
    /// No expectations registered at all (no queries routed through this
    /// node); the node may sleep until externally re-activated.
    Unconstrained,
}

/// The Safe Sleep scheduler state for one node.
#[derive(Debug, Clone, Default)]
pub struct SafeSleep {
    t_be: SimDuration,
    t_off_on: SimDuration,
    snext: BTreeMap<QueryId, SimTime>,
    rnext: BTreeMap<(QueryId, NodeId), SimTime>,
    /// Cached `min` over both expectation maps. `decide()` runs at every
    /// sleep checkpoint — several times per round per node — while the
    /// maps mutate only on round boundaries and topology changes, so the
    /// minimum is recomputed on mutation, not on read.
    min: Option<SimTime>,
}

impl SafeSleep {
    /// Creates a scheduler for a radio with break-even time `t_be` and
    /// wake-up transition `t_off_on`.
    pub fn new(t_be: SimDuration, t_off_on: SimDuration) -> Self {
        SafeSleep {
            t_be,
            t_off_on,
            snext: BTreeMap::new(),
            rnext: BTreeMap::new(),
            min: None,
        }
    }

    /// The configured break-even time.
    pub fn break_even(&self) -> SimDuration {
        self.t_be
    }

    /// The configured wake-up lead time.
    pub fn wake_lead(&self) -> SimDuration {
        self.t_off_on
    }

    /// Recomputes the cached minimum after a mutation.
    fn rescan(&mut self) {
        let s = self.snext.values().min().copied();
        let r = self.rnext.values().min().copied();
        self.min = match (s, r) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
    }

    /// Folds an inserted expectation into the cached minimum.
    ///
    /// O(1) unless the insert *replaced* an entry that may have been
    /// the minimum with a later time (the per-round advance case) —
    /// only then can the minimum rise, requiring a rescan.
    fn fold_min(&mut self, replaced: Option<SimTime>, at: SimTime) {
        match replaced {
            Some(old) if Some(old) == self.min && at > old => self.rescan(),
            _ => self.min = Some(self.min.map_or(at, |m| m.min(at))),
        }
    }

    /// `updateNextSend(q, s(k+1))` from Figure 1.
    pub fn update_next_send(&mut self, q: QueryId, at: SimTime) {
        let replaced = self.snext.insert(q, at);
        self.fold_min(replaced, at);
    }

    /// `updateNextReceive(q, c, r(q, k+1, c))` from Figure 1.
    pub fn update_next_receive(&mut self, q: QueryId, child: NodeId, at: SimTime) {
        let replaced = self.rnext.insert((q, child), at);
        self.fold_min(replaced, at);
    }

    /// Removes the send expectation for `q` (e.g. the root never sends).
    pub fn clear_send(&mut self, q: QueryId) {
        self.snext.remove(&q);
        self.rescan();
    }

    /// Removes a child's reception expectation (child failed or was
    /// re-parented away, §4.3).
    pub fn clear_receive(&mut self, q: QueryId, child: NodeId) {
        self.rnext.remove(&(q, child));
        self.rescan();
    }

    /// Drops every expectation related to `q` (query deregistered).
    pub fn remove_query(&mut self, q: QueryId) {
        self.snext.remove(&q);
        self.rnext.retain(|&(qq, _), _| qq != q);
        self.rescan();
    }

    /// Drops every expectation involving `child` across all queries
    /// (the child failed, §4.3).
    pub fn remove_child(&mut self, child: NodeId) {
        self.rnext.retain(|&(_, c), _| c != child);
        self.rescan();
    }

    /// Keeps only the reception expectations of `q` whose child appears
    /// in `keep` (topology change: the child set was replaced).
    pub fn retain_children(&mut self, q: QueryId, keep: &[NodeId]) {
        self.rnext
            .retain(|&(qq, c), _| qq != q || keep.contains(&c));
        self.rescan();
    }

    /// The earliest registered expectation, if any (`t_wakeup`).
    /// O(1): the minimum is maintained across mutations.
    pub fn earliest(&self) -> Option<SimTime> {
        self.min
    }

    /// Number of registered expectations (the paper's storage-cost
    /// argument: proportional to the node's degree per query).
    pub fn expectation_count(&self) -> usize {
        self.snext.len() + self.rnext.len()
    }

    /// `checkState()` from Figure 1.
    pub fn decide(&self, now: SimTime) -> SleepDecision {
        let Some(t_wakeup) = self.earliest() else {
            return SleepDecision::Unconstrained;
        };
        if t_wakeup <= now {
            return SleepDecision::Busy;
        }
        let t_sleep = t_wakeup - now;
        if t_sleep > self.t_be {
            SleepDecision::Sleep {
                start_wake_at: t_wakeup.saturating_sub(self.t_off_on),
                wakeup_due: t_wakeup,
            }
        } else {
            SleepDecision::StayAwake { until: t_wakeup }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss() -> SafeSleep {
        SafeSleep::new(
            SimDuration::from_micros(2_500),
            SimDuration::from_micros(1_250),
        )
    }

    fn q(i: u32) -> QueryId {
        QueryId::new(i)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn no_expectations_is_unconstrained() {
        assert_eq!(ss().decide(ms(5)), SleepDecision::Unconstrained);
    }

    #[test]
    fn takes_min_over_sends_and_receives() {
        let mut s = ss();
        s.update_next_send(q(0), ms(100));
        s.update_next_receive(q(0), n(1), ms(70));
        s.update_next_receive(q(1), n(2), ms(90));
        assert_eq!(s.earliest(), Some(ms(70)));
        match s.decide(ms(0)) {
            SleepDecision::Sleep {
                start_wake_at,
                wakeup_due,
            } => {
                assert_eq!(wakeup_due, ms(70));
                assert_eq!(start_wake_at, ms(70) - SimDuration::from_micros(1_250));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn busy_when_expectation_due_or_past() {
        let mut s = ss();
        s.update_next_send(q(0), ms(10));
        assert_eq!(s.decide(ms(10)), SleepDecision::Busy);
        assert_eq!(s.decide(ms(11)), SleepDecision::Busy);
    }

    #[test]
    fn short_gap_stays_awake() {
        let mut s = ss();
        s.update_next_send(q(0), ms(10));
        // 2 ms gap < 2.5 ms break-even.
        assert_eq!(s.decide(ms(8)), SleepDecision::StayAwake { until: ms(10) });
        // Exactly the break-even: still not worth sleeping (strict >).
        let now = ms(10) - SimDuration::from_micros(2_500);
        assert_eq!(s.decide(now), SleepDecision::StayAwake { until: ms(10) });
        // A hair more than break-even: sleep.
        let now2 = now - SimDuration::from_nanos(1);
        assert!(matches!(s.decide(now2), SleepDecision::Sleep { .. }));
    }

    #[test]
    fn zero_break_even_sleeps_for_any_gap() {
        let mut s = SafeSleep::new(SimDuration::ZERO, SimDuration::ZERO);
        s.update_next_send(q(0), ms(1));
        match s.decide(ms(0)) {
            SleepDecision::Sleep {
                start_wake_at,
                wakeup_due,
            } => {
                assert_eq!(start_wake_at, ms(1), "no wake lead with zero transition");
                assert_eq!(wakeup_due, ms(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn updates_replace_prior_expectations() {
        let mut s = ss();
        s.update_next_send(q(0), ms(10));
        s.update_next_send(q(0), ms(50));
        assert_eq!(s.earliest(), Some(ms(50)));
        s.update_next_receive(q(0), n(1), ms(40));
        s.update_next_receive(q(0), n(1), ms(60));
        assert_eq!(s.earliest(), Some(ms(50)));
    }

    #[test]
    fn removal_operations() {
        let mut s = ss();
        s.update_next_send(q(0), ms(10));
        s.update_next_receive(q(0), n(1), ms(5));
        s.update_next_receive(q(1), n(1), ms(7));
        s.update_next_receive(q(1), n(2), ms(3));
        assert_eq!(s.expectation_count(), 4);
        s.remove_child(n(1));
        assert_eq!(s.expectation_count(), 2);
        assert_eq!(s.earliest(), Some(ms(3)));
        s.remove_query(q(1));
        assert_eq!(s.expectation_count(), 1);
        assert_eq!(s.earliest(), Some(ms(10)));
        s.clear_send(q(0));
        assert_eq!(s.decide(ms(0)), SleepDecision::Unconstrained);
    }

    #[test]
    fn clear_receive_single_child() {
        let mut s = ss();
        s.update_next_receive(q(0), n(1), ms(5));
        s.update_next_receive(q(0), n(2), ms(9));
        s.clear_receive(q(0), n(1));
        assert_eq!(s.earliest(), Some(ms(9)));
    }

    #[test]
    fn wake_lead_clamps_at_time_zero() {
        let s = {
            let mut s = SafeSleep::new(SimDuration::ZERO, SimDuration::from_secs(10));
            s.update_next_send(q(0), ms(1));
            s
        };
        match s.decide(ms(0)) {
            SleepDecision::Sleep { start_wake_at, .. } => {
                assert_eq!(start_wake_at, SimTime::ZERO);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn storage_cost_proportional_to_degree() {
        // The paper's locality argument: per query, one send slot plus one
        // reception slot per child.
        let mut s = ss();
        let children = 7;
        for qi in 0..3 {
            s.update_next_send(q(qi), ms(100));
            for c in 0..children {
                s.update_next_receive(q(qi), n(c), ms(50));
            }
        }
        assert_eq!(s.expectation_count(), 3 * (children as usize + 1));
    }
}
